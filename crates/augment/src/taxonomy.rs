//! The machine-readable taxonomy of Figure 1, plus the registry of the
//! five techniques the paper evaluates (noise_1/3/5, SMOTE, TimeGAN).

use crate::Augmenter;

/// A node of the taxonomy tree.
#[derive(Debug, Clone)]
pub struct TaxonomyNode {
    /// Branch or leaf name as printed in Figure 1.
    pub name: &'static str,
    /// Child branches/leaves (empty for techniques).
    pub children: Vec<TaxonomyNode>,
    /// For leaves: the `Augmenter::name` of the implementation in this
    /// crate, when one exists.
    pub implementation: Option<&'static str>,
}

impl TaxonomyNode {
    fn branch(name: &'static str, children: Vec<TaxonomyNode>) -> Self {
        Self { name, children, implementation: None }
    }

    fn leaf(name: &'static str, implementation: &'static str) -> Self {
        Self { name, children: Vec::new(), implementation: Some(implementation) }
    }

    /// Count of implemented techniques in this subtree.
    pub fn implemented_count(&self) -> usize {
        usize::from(self.implementation.is_some())
            + self.children.iter().map(Self::implemented_count).sum::<usize>()
    }

    /// Render the subtree as an ASCII tree (the Figure 1 reproduction).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", true);
        out
    }

    fn render_into(&self, out: &mut String, prefix: &str, is_last: bool) {
        if prefix.is_empty() {
            out.push_str(self.name);
        } else {
            out.push_str(prefix);
            out.push_str(if is_last { "└── " } else { "├── " });
            out.push_str(self.name);
        }
        if let Some(imp) = self.implementation {
            out.push_str(&format!("  [{imp}]"));
        }
        out.push('\n');
        let child_prefix = if prefix.is_empty() {
            String::new()
        } else {
            format!("{prefix}{}", if is_last { "    " } else { "│   " })
        };
        let n = self.children.len();
        for (i, c) in self.children.iter().enumerate() {
            let p = if prefix.is_empty() { "  ".to_string() } else { child_prefix.clone() };
            c.render_into(out, &p, i + 1 == n);
        }
    }

    /// Depth-first iterator over all leaf implementation names.
    pub fn implementations(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        self.collect_impls(&mut out);
        out
    }

    fn collect_impls(&self, out: &mut Vec<&'static str>) {
        if let Some(i) = self.implementation {
            out.push(i);
        }
        for c in &self.children {
            c.collect_impls(out);
        }
    }
}

/// Build the full taxonomy of the paper's Figure 1, annotated with the
/// implementations in this crate.
pub fn taxonomy() -> TaxonomyNode {
    TaxonomyNode::branch(
        "Time Series Data Augmentation",
        vec![
            TaxonomyNode::branch(
                "Basic",
                vec![
                    TaxonomyNode::branch(
                        "Time Domain",
                        vec![
                            TaxonomyNode::leaf("Noise Injection", "noise"),
                            TaxonomyNode::leaf("Scaling", "scaling"),
                            TaxonomyNode::leaf("Rotation", "rotation"),
                            TaxonomyNode::leaf("Jittering", "jitter"),
                            TaxonomyNode::leaf("Slicing", "slicing"),
                            TaxonomyNode::leaf("Permutation", "permutation"),
                            TaxonomyNode::leaf("Masking / Cropping", "masking"),
                            TaxonomyNode::leaf("Dropout", "dropout"),
                            TaxonomyNode::leaf("Pooling", "pooling"),
                            TaxonomyNode::leaf("Magnitude Warping", "magnitude_warp"),
                            TaxonomyNode::leaf("Time Warping", "time_warp"),
                            TaxonomyNode::leaf("Window Warping", "window_warp"),
                            TaxonomyNode::leaf("Guided (DTW) Warping", "guided_warp"),
                            TaxonomyNode::leaf("Weighted DBA Averaging", "wdba"),
                        ],
                    ),
                    TaxonomyNode::branch(
                        "Frequency Domain",
                        vec![
                            TaxonomyNode::leaf("Amplitude Perturbation", "amplitude_perturb"),
                            TaxonomyNode::leaf("Phase Perturbation", "phase_perturb"),
                            TaxonomyNode::leaf("SpecAugment Masking", "specaugment"),
                            TaxonomyNode::leaf("EMDA Spectral Mixing", "emda_mix"),
                        ],
                    ),
                    TaxonomyNode::branch(
                        "Oversampling",
                        vec![
                            TaxonomyNode::leaf("Interpolation", "interpolation"),
                            TaxonomyNode::leaf("SMOTE", "smote"),
                            TaxonomyNode::leaf("Borderline-SMOTE", "borderline_smote"),
                            TaxonomyNode::leaf("ADASYN", "adasyn"),
                            TaxonomyNode::leaf("SMOTEFUNA", "smotefuna"),
                        ],
                    ),
                    TaxonomyNode::branch(
                        "Decomposition",
                        vec![
                            TaxonomyNode::leaf("STL Residual Bootstrap", "stl_bootstrap"),
                            TaxonomyNode::leaf("EMD Recombination", "emd_recombine"),
                        ],
                    ),
                ],
            ),
            TaxonomyNode::branch(
                "Generative",
                vec![
                    TaxonomyNode::branch(
                        "Statistical",
                        vec![
                            TaxonomyNode::leaf("Kernel Density Sampling", "kde"),
                            TaxonomyNode::leaf("AR Residual Model", "ar_residual"),
                            TaxonomyNode::leaf("Maximum-Entropy Bootstrap", "meboot"),
                            TaxonomyNode::leaf("Block Bootstrap", "block_bootstrap"),
                        ],
                    ),
                    TaxonomyNode::branch(
                        "Neural Network",
                        vec![
                            TaxonomyNode::leaf("TimeGAN", "timegan"),
                            TaxonomyNode::leaf("VAE", "vae"),
                            TaxonomyNode::leaf("Latent-Space AE", "latent_space"),
                        ],
                    ),
                    TaxonomyNode::branch(
                        "Probabilistic",
                        vec![
                            TaxonomyNode::leaf("Gaussian HMM", "gaussian_hmm"),
                            TaxonomyNode::leaf("Autoregressive (Eq. 1)", "autoregressive"),
                            TaxonomyNode::leaf("Diffusion (Eq. 2)", "diffusion"),
                        ],
                    ),
                ],
            ),
            TaxonomyNode::branch(
                "Preserving",
                vec![
                    TaxonomyNode::branch(
                        "Label-Preserving",
                        vec![TaxonomyNode::leaf("Range Technique", "range_noise")],
                    ),
                    TaxonomyNode::branch(
                        "Structure-Preserving",
                        vec![
                            TaxonomyNode::leaf("OHIT", "ohit"),
                            TaxonomyNode::leaf("INOS / SPO", "inos"),
                        ],
                    ),
                ],
            ),
        ],
    )
}

/// The five techniques the paper's evaluation uses (§IV-C), in table
/// column order: `noise_1`, `noise_3`, `noise_5`, `smote`, `timegan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperTechnique {
    /// Noise injection at level 1 (Eq. 6).
    Noise1,
    /// Noise injection at level 3.
    Noise3,
    /// Noise injection at level 5.
    Noise5,
    /// SMOTE with `k = min(5, class − 1)`.
    Smote,
    /// TimeGAN (§IV-C hyper-parameters at paper scale).
    TimeGan,
}

impl PaperTechnique {
    /// All five, in the paper's table column order.
    pub const ALL: [PaperTechnique; 5] = [
        PaperTechnique::Noise1,
        PaperTechnique::Noise3,
        PaperTechnique::Noise5,
        PaperTechnique::Smote,
        PaperTechnique::TimeGan,
    ];

    /// Column label as printed in Tables IV/V.
    pub fn label(self) -> &'static str {
        match self {
            Self::Noise1 => "noise_1.0",
            Self::Noise3 => "noise_3.0",
            Self::Noise5 => "noise_5.0",
            Self::Smote => "smote",
            Self::TimeGan => "timegan",
        }
    }

    /// Instantiate the technique. `paper_scale` selects TimeGAN's §IV-C
    /// iteration budget instead of the laptop-scale default.
    pub fn build(self, paper_scale: bool) -> Box<dyn Augmenter> {
        use crate::basic::time::NoiseInjection;
        use crate::generative::timegan::{TimeGan, TimeGanConfig};
        use crate::oversample::Smote;
        match self {
            Self::Noise1 => Box::new(NoiseInjection::level(1.0)),
            Self::Noise3 => Box::new(NoiseInjection::level(3.0)),
            Self::Noise5 => Box::new(NoiseInjection::level(5.0)),
            Self::Smote => Box::new(Smote::default()),
            Self::TimeGan => Box::new(TimeGan::new(if paper_scale {
                TimeGanConfig::paper()
            } else {
                TimeGanConfig::default()
            })),
        }
    }

    /// The grouping used by Table VI (noise levels collapse to "Noise").
    pub fn table6_group(self) -> &'static str {
        match self {
            Self::Noise1 | Self::Noise3 | Self::Noise5 => "Noise",
            Self::Smote => "SMOTE",
            Self::TimeGan => "TimeGAN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_has_three_top_branches() {
        let t = taxonomy();
        let names: Vec<&str> = t.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["Basic", "Generative", "Preserving"]);
    }

    #[test]
    fn every_leaf_is_implemented() {
        let t = taxonomy();
        assert!(t.implemented_count() >= 28, "{}", t.implemented_count());
        // No empty-leaf branches.
        fn check(node: &TaxonomyNode) {
            if node.children.is_empty() {
                assert!(node.implementation.is_some(), "unimplemented leaf {}", node.name);
            }
            for c in &node.children {
                check(c);
            }
        }
        check(&t);
    }

    #[test]
    fn render_produces_a_tree() {
        let text = taxonomy().render();
        assert!(text.contains("└──"));
        assert!(text.contains("TimeGAN"));
        assert!(text.contains("[smote]"));
        assert!(text.lines().count() > 30);
    }

    #[test]
    fn implementations_are_unique() {
        let impls = taxonomy().implementations();
        let mut dedup = impls.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(impls.len(), dedup.len());
    }

    #[test]
    fn paper_techniques_build_and_label() {
        for t in PaperTechnique::ALL {
            let aug = t.build(false);
            assert!(!aug.name().is_empty());
        }
        assert_eq!(PaperTechnique::Noise3.label(), "noise_3.0");
        assert_eq!(PaperTechnique::Noise3.table6_group(), "Noise");
        assert_eq!(PaperTechnique::TimeGan.table6_group(), "TimeGAN");
    }
}
