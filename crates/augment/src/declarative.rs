//! Declarative augmentation pipelines: a config-parseable description
//! of ordered stages, each with an apply probability and a pool of
//! techniques to choose from, executed as a pure function of
//! `(seed, sample index)`.
//!
//! The paper evaluates techniques one at a time and names conjunctive
//! application as future work (§IV-F); [`crate::pipeline::Chain`] and
//! [`crate::pipeline::RandomChoice`] provide the composition
//! primitives, and this module adds the declarative, serveable layer on
//! top: a pipeline is parsed from a TOML subset (same line-based shape
//! as `analyze.toml`), every per-sample decision draws its RNG from
//! [`tsda_core::rng::derive_stream`], and batched execution runs on the
//! shared compute pool — so the output for sample `i` never depends on
//! worker count, batch boundaries, or which server replica ran it.
//!
//! # Config format
//!
//! ```toml
//! [pipeline]
//! name = "light"
//!
//! [[stage]]
//! choose = ["jitter", "scaling"]
//! prob = 0.8
//! ```
//!
//! A `[pipeline]` header starts a pipeline; each `[[stage]]` attaches
//! an ordered stage to the most recent pipeline. `choose` lists the
//! technique pool (one is picked per sample, seeded); `prob` is the
//! per-sample probability the stage applies at all (default `1.0`).
//! `#` starts a comment. All errors are typed
//! [`TsdaError::Parse`] values carrying the 1-based line — the parser
//! never panics, whatever the input bytes.

use crate::basic::frequency::{AmplitudePerturb, PhasePerturb, SpecAugmentMask};
use crate::basic::time::{
    Dropout, Jitter, MagnitudeWarp, Masking, NoiseInjection, Permutation, Pooling,
    Rotation, Scaling, Slicing, TimeWarp, WindowWarp,
};
use crate::SeriesTransform;
use rand::Rng;
use std::fmt;
use tsda_core::parallel::Pool;
use tsda_core::rng::{derive_stream, seeded};
use tsda_core::{Mts, TsdaError};

/// Stage names resolvable in a pipeline config, sorted.
///
/// `noise` is the paper's `noise_1`; the `noise_3` / `noise_5` aliases
/// select the stronger Table IV/V variants. Techniques that need the
/// whole dataset rather than one series (EMDA mixing, SMOTE, range
/// noise, guided warping, the generative models) are [`crate::Augmenter`]s, not
/// per-series transforms, so they cannot appear as pipeline stages.
pub const KNOWN_STAGES: &[&str] = &[
    "amplitude_perturb",
    "dropout",
    "jitter",
    "magnitude_warp",
    "masking",
    "noise",
    "noise_1",
    "noise_3",
    "noise_5",
    "permutation",
    "phase_perturb",
    "pooling",
    "rotation",
    "scaling",
    "slicing",
    "specaugment",
    "time_warp",
    "window_warp",
];

/// Build the transform a stage name denotes, or `None` for unknown
/// names (the parser rejects those with a line number first).
fn build_stage(name: &str) -> Option<Box<dyn SeriesTransform + Send + Sync>> {
    Some(match name {
        "amplitude_perturb" => Box::new(AmplitudePerturb::default()),
        "dropout" => Box::new(Dropout::default()),
        "jitter" => Box::new(Jitter::default()),
        "magnitude_warp" => Box::new(MagnitudeWarp::default()),
        "masking" => Box::new(Masking::default()),
        "noise" | "noise_1" => Box::new(NoiseInjection::level(1.0)),
        "noise_3" => Box::new(NoiseInjection::level(3.0)),
        "noise_5" => Box::new(NoiseInjection::level(5.0)),
        "permutation" => Box::new(Permutation::default()),
        "phase_perturb" => Box::new(PhasePerturb::default()),
        "pooling" => Box::new(Pooling::default()),
        "rotation" => Box::new(Rotation),
        "scaling" => Box::new(Scaling::default()),
        "slicing" => Box::new(Slicing::default()),
        "specaugment" => Box::new(SpecAugmentMask::default()),
        "time_warp" => Box::new(TimeWarp::default()),
        "window_warp" => Box::new(WindowWarp::default()),
        _ => return None,
    })
}

/// One declarative stage: a technique pool and an apply probability.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Technique pool; one member is picked per sample, seeded.
    pub choose: Vec<String>,
    /// Per-sample probability in `[0, 1]` that the stage applies.
    pub prob: f64,
}

/// One named pipeline: ordered stages applied front to back.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// Registry name (identifier characters only).
    pub name: String,
    /// Ordered stages.
    pub stages: Vec<StageSpec>,
}

/// A parsed pipeline config file: one or more named pipelines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PipelineConfig {
    /// Pipelines in file order.
    pub pipelines: Vec<PipelineSpec>,
}

fn perr(line: usize, message: impl Into<String>) -> TsdaError {
    TsdaError::Parse { line, message: message.into() }
}

/// Identifier charset shared by pipeline and stage names; keeps the
/// canonical [`fmt::Display`] form unambiguous (no quote or comment
/// characters can appear inside a string).
fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Parse a `"quoted"` string (no escape sequences in this subset).
fn parse_string(value: &str, line: usize) -> Result<String, TsdaError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| perr(line, format!("expected a quoted string, got `{value}`")))?;
    if inner.contains('"') || inner.contains('\\') {
        return Err(perr(line, "string escapes are not supported"));
    }
    Ok(inner.to_string())
}

/// Parse a `["a", "b"]` array of quoted strings.
fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, TsdaError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| perr(line, format!("expected a string array, got `{value}`")))?;
    if inner.trim().is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|item| parse_string(item.trim(), line))
        .collect()
}

impl PipelineConfig {
    /// Parse the TOML subset described in the module docs.
    ///
    /// Never panics: every malformed input yields a
    /// [`TsdaError::Parse`] with the offending 1-based line.
    pub fn parse(text: &str) -> Result<Self, TsdaError> {
        #[derive(PartialEq)]
        enum Ctx {
            Top,
            Pipeline,
            Stage,
        }
        let mut cfg = PipelineConfig::default();
        let mut header_lines: Vec<usize> = Vec::new();
        let mut ctx = Ctx::Top;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line == "[pipeline]" {
                cfg.pipelines
                    .push(PipelineSpec { name: String::new(), stages: Vec::new() });
                header_lines.push(line_no);
                ctx = Ctx::Pipeline;
                continue;
            }
            if line == "[[stage]]" {
                let Some(p) = cfg.pipelines.last_mut() else {
                    return Err(perr(line_no, "[[stage]] before any [pipeline] section"));
                };
                p.stages.push(StageSpec { choose: Vec::new(), prob: 1.0 });
                ctx = Ctx::Stage;
                continue;
            }
            if line.starts_with('[') {
                return Err(perr(line_no, format!("unknown section `{line}`")));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(perr(line_no, format!("expected `key = value`, got `{line}`")));
            };
            let (key, value) = (key.trim(), value.trim());
            match (&ctx, key) {
                (Ctx::Top, _) => {
                    return Err(perr(line_no, format!("key `{key}` outside any section")));
                }
                (Ctx::Pipeline, "name") => {
                    let name = parse_string(value, line_no)?;
                    if !is_ident(&name) {
                        return Err(perr(
                            line_no,
                            format!("pipeline name {name:?} is not an identifier"),
                        ));
                    }
                    let taken = cfg.pipelines[..cfg.pipelines.len() - 1]
                        .iter()
                        .any(|p| p.name == name);
                    if taken {
                        return Err(perr(line_no, format!("duplicate pipeline name {name:?}")));
                    }
                    // `last_mut` cannot fail in Ctx::Pipeline, but stay
                    // panic-free under the P1 rule regardless.
                    if let Some(p) = cfg.pipelines.last_mut() {
                        p.name = name;
                    }
                }
                (Ctx::Stage, "choose") => {
                    let names = parse_string_array(value, line_no)?;
                    if names.is_empty() {
                        return Err(perr(line_no, "stage `choose` pool is empty"));
                    }
                    for n in &names {
                        if !KNOWN_STAGES.contains(&n.as_str()) {
                            return Err(perr(line_no, format!("unknown stage name {n:?}")));
                        }
                    }
                    if let Some(s) =
                        cfg.pipelines.last_mut().and_then(|p| p.stages.last_mut())
                    {
                        s.choose = names;
                    }
                }
                (Ctx::Stage, "prob") => {
                    let prob: f64 = value.parse().map_err(|_| {
                        perr(line_no, format!("`prob` is not a number: `{value}`"))
                    })?;
                    if !prob.is_finite() || !(0.0..=1.0).contains(&prob) {
                        return Err(perr(
                            line_no,
                            format!("`prob` must be in [0, 1], got {prob}"),
                        ));
                    }
                    if let Some(s) =
                        cfg.pipelines.last_mut().and_then(|p| p.stages.last_mut())
                    {
                        s.prob = prob;
                    }
                }
                (_, key) => {
                    return Err(perr(line_no, format!("unknown key `{key}` in this section")));
                }
            }
        }
        for (p, header) in cfg.pipelines.iter().zip(&header_lines) {
            if p.name.is_empty() {
                return Err(perr(*header, "pipeline has no `name`"));
            }
            if p.stages.is_empty() {
                return Err(perr(*header, format!("pipeline {:?} has no stages", p.name)));
            }
            for s in &p.stages {
                if s.choose.is_empty() {
                    return Err(perr(
                        *header,
                        format!("pipeline {:?} has a stage with no `choose`", p.name),
                    ));
                }
            }
        }
        Ok(cfg)
    }
}

impl fmt::Display for PipelineConfig {
    /// Canonical form: parsing the output reproduces the config exactly
    /// (`{}` on an `f64` prints the shortest round-trip representation).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.pipelines.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            writeln!(f, "[pipeline]")?;
            writeln!(f, "name = \"{}\"", p.name)?;
            for s in &p.stages {
                writeln!(f)?;
                writeln!(f, "[[stage]]")?;
                let pool: Vec<String> = s.choose.iter().map(|c| format!("\"{c}\"")).collect();
                writeln!(f, "choose = [{}]", pool.join(", "))?;
                writeln!(f, "prob = {}", s.prob)?;
            }
        }
        Ok(())
    }
}

/// One built stage: resolved technique pool plus the seed-derivation
/// label (fixed at construction so the hot path allocates nothing for
/// stream derivation).
struct BuiltStage {
    label: String,
    prob: f64,
    choose: Vec<Box<dyn SeriesTransform + Send + Sync>>,
}

/// An executable pipeline: a pure function of `(seed, sample index)`.
///
/// Each stage draws its per-sample RNG from
/// [`derive_stream`]`(seed, "{name}/stage{i}", index)`, so the output
/// for a sample depends only on the master seed and the sample's index
/// — never on pool worker count, batch composition, or which process
/// runs it. This is what makes the served `augment` endpoint
/// bit-identical to offline execution.
pub struct AugPipeline {
    name: String,
    stages: Vec<BuiltStage>,
}

impl AugPipeline {
    /// Build from a validated spec.
    ///
    /// Errors on unknown stage names, an empty pool, or an apply
    /// probability outside `[0, 1]` (specs from
    /// [`PipelineConfig::parse`] are already clean; this re-validates
    /// for hand-built specs).
    pub fn from_spec(spec: &PipelineSpec) -> Result<Self, TsdaError> {
        if spec.stages.is_empty() {
            return Err(TsdaError::InvalidParameter(format!(
                "pipeline {:?} has no stages",
                spec.name
            )));
        }
        let mut stages = Vec::with_capacity(spec.stages.len());
        for (i, s) in spec.stages.iter().enumerate() {
            if !s.prob.is_finite() || !(0.0..=1.0).contains(&s.prob) {
                return Err(TsdaError::InvalidParameter(format!(
                    "pipeline {:?} stage {i}: prob {} outside [0, 1]",
                    spec.name, s.prob
                )));
            }
            let mut choose = Vec::with_capacity(s.choose.len());
            for n in &s.choose {
                choose.push(build_stage(n).ok_or_else(|| {
                    TsdaError::InvalidParameter(format!(
                        "pipeline {:?} stage {i}: unknown stage name {n:?}",
                        spec.name
                    ))
                })?);
            }
            if choose.is_empty() {
                return Err(TsdaError::InvalidParameter(format!(
                    "pipeline {:?} stage {i}: empty choose pool",
                    spec.name
                )));
            }
            stages.push(BuiltStage {
                label: format!("{}/stage{i}", spec.name),
                prob: s.prob,
                choose,
            });
        }
        Ok(Self { name: spec.name.clone(), stages })
    }

    /// Build every pipeline in a parsed config.
    pub fn from_config(cfg: &PipelineConfig) -> Result<Vec<Self>, TsdaError> {
        cfg.pipelines.iter().map(Self::from_spec).collect()
    }

    /// Registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Transform one sample: the pure function of `(seed, index)`.
    ///
    /// Per stage: one uniform draw decides whether the stage applies
    /// (`u < prob`, so `prob = 1` always fires and `prob = 0` never
    /// does), a second draw picks the technique, and the same RNG then
    /// drives the technique itself.
    pub fn apply_one(&self, series: &Mts, seed: u64, index: u64) -> Mts {
        let mut cur = series.clone();
        for stage in &self.stages {
            let mut rng = seeded(derive_stream(seed, &stage.label, index));
            let u: f64 = rng.gen();
            if u >= stage.prob {
                continue;
            }
            let pick = rng.gen_range(0..stage.choose.len());
            cur = stage.choose[pick].transform(&cur, &mut rng);
        }
        cur
    }

    /// Batched offline execution on the shared pool: sample `i` is
    /// [`Self::apply_one`]`(series[i], seed, i)`, bit-identical at any
    /// worker count.
    #[doc(alias = "tsda::hot")]
    pub fn run(&self, series: &[Mts], seed: u64) -> Vec<Mts> {
        Pool::global().par_map_indexed(series.len(), |i| {
            self.apply_one(&series[i], seed, i as u64)
        })
    }

    /// Batched execution with explicit per-item `(seed, index)` pairs —
    /// the serving path, where one batch mixes requests from different
    /// clients. Output order matches input order and each element is
    /// independent of the batch composition.
    #[doc(alias = "tsda::hot")]
    pub fn run_each(&self, items: &[(Mts, u64, u64)]) -> Vec<Mts> {
        Pool::global().par_map_indexed(items.len(), |i| {
            let (series, seed, index) = &items[i];
            self.apply_one(series, *seed, *index)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = r#"
# two pipelines sharing the file
[pipeline]
name = "light"

[[stage]]
choose = ["jitter", "scaling"]
prob = 0.8

[pipeline]
name = "heavy"

[[stage]]
choose = ["time_warp"]

[[stage]]
choose = ["noise_3", "masking"]
prob = 0.5
"#;

    #[test]
    fn parses_fixture() {
        let cfg = PipelineConfig::parse(FIXTURE).unwrap();
        assert_eq!(cfg.pipelines.len(), 2);
        assert_eq!(cfg.pipelines[0].name, "light");
        assert_eq!(cfg.pipelines[0].stages[0].prob, 0.8);
        assert_eq!(cfg.pipelines[1].stages[0].prob, 1.0);
        assert_eq!(
            cfg.pipelines[1].stages[1].choose,
            vec!["noise_3".to_string(), "masking".to_string()]
        );
    }

    #[test]
    fn display_round_trips() {
        let cfg = PipelineConfig::parse(FIXTURE).unwrap();
        let reparsed = PipelineConfig::parse(&cfg.to_string()).unwrap();
        assert_eq!(cfg, reparsed);
    }

    #[test]
    fn typed_errors_carry_line_numbers() {
        let err = PipelineConfig::parse("[pipeline]\nname = \"p\"\n\n[[stage]]\nchoose = [\"nope\"]\n")
            .unwrap_err();
        match err {
            TsdaError::Parse { line, message } => {
                assert_eq!(line, 5);
                assert!(message.contains("nope"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        assert!(PipelineConfig::parse("[[stage]]\n").is_err());
        assert!(PipelineConfig::parse("[pipeline]\nname = \"p\"\n[[stage]]\nchoose = [\"jitter\"]\nprob = 1.5\n").is_err());
        assert!(PipelineConfig::parse("[pipeline]\nname = \"p\"\n[[stage]]\nchoose = [\"jitter\"]\nprob = nan\n").is_err());
        assert!(PipelineConfig::parse("[pipeline]\nname = \"p\"\n").is_err());
        assert!(PipelineConfig::parse("[pipeline]\nname = \"p\"\n[[stage]]\n").is_err());
    }

    #[test]
    fn every_known_stage_builds() {
        for n in KNOWN_STAGES {
            assert!(build_stage(n).is_some(), "{n} does not build");
        }
        assert!(build_stage("emda_mix").is_none());
    }

    #[test]
    fn apply_is_pure_in_seed_and_index() {
        let cfg = PipelineConfig::parse(FIXTURE).unwrap();
        let pipes = AugPipeline::from_config(&cfg).unwrap();
        let s = Mts::from_dims(vec![(0..32).map(|t| (t as f64 * 0.3).sin()).collect()]);
        for p in &pipes {
            let a = p.apply_one(&s, 7, 3);
            let b = p.apply_one(&s, 7, 3);
            assert_eq!(a, b, "{} not deterministic", p.name());
            assert_ne!(p.apply_one(&s, 7, 4), a, "{} ignores index", p.name());
            assert_ne!(p.apply_one(&s, 8, 3), a, "{} ignores seed", p.name());
        }
    }

    #[test]
    fn run_matches_apply_one_per_index() {
        let cfg = PipelineConfig::parse(FIXTURE).unwrap();
        let p = &AugPipeline::from_config(&cfg).unwrap()[1];
        let series: Vec<Mts> = (0..9)
            .map(|i| Mts::from_dims(vec![(0..24).map(|t| ((t + i) as f64).cos()).collect()]))
            .collect();
        let batched = p.run(&series, 11);
        for (i, s) in series.iter().enumerate() {
            assert_eq!(batched[i], p.apply_one(s, 11, i as u64));
        }
        // Same input and same (seed, index) pair everywhere: the result
        // must not depend on the position inside the batch.
        let items: Vec<(Mts, u64, u64)> =
            (0..9).map(|_| (series[0].clone(), 11u64, 5u64)).collect();
        let each = p.run_each(&items);
        assert!(each.iter().all(|m| *m == each[0]));
        assert_eq!(each[0], p.apply_one(&series[0], 11, 5));
    }

    #[test]
    fn prob_zero_is_identity_prob_one_always_applies() {
        let spec = PipelineSpec {
            name: "p".into(),
            stages: vec![StageSpec { choose: vec!["noise_5".into()], prob: 0.0 }],
        };
        let p = AugPipeline::from_spec(&spec).unwrap();
        // Noise level scales the per-dimension std, so use a series
        // with nonzero variance.
        let s = Mts::from_dims(vec![(0..16).map(|t| (t as f64 * 0.7).sin()).collect()]);
        assert_eq!(p.apply_one(&s, 1, 0), s);
        let spec1 = PipelineSpec {
            name: "p".into(),
            stages: vec![StageSpec { choose: vec!["noise_5".into()], prob: 1.0 }],
        };
        let p1 = AugPipeline::from_spec(&spec1).unwrap();
        assert_ne!(p1.apply_one(&s, 1, 0), s);
    }

    #[test]
    fn from_spec_rejects_bad_specs() {
        let empty = PipelineSpec { name: "p".into(), stages: vec![] };
        assert!(AugPipeline::from_spec(&empty).is_err());
        let unknown = PipelineSpec {
            name: "p".into(),
            stages: vec![StageSpec { choose: vec!["nope".into()], prob: 1.0 }],
        };
        assert!(AugPipeline::from_spec(&unknown).is_err());
        let bad_prob = PipelineSpec {
            name: "p".into(),
            stages: vec![StageSpec { choose: vec!["jitter".into()], prob: 2.0 }],
        };
        assert!(AugPipeline::from_spec(&bad_prob).is_err());
    }
}
