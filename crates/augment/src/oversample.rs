//! Oversampling techniques: SMOTE and its relatives.
//!
//! These treat each (imputed, flattened) series as a point in `M·T`
//! space, exactly as the paper applies imbalanced-learn's SMOTE to
//! multivariate series. The paper's parameterisation — `k = min(5,
//! class_size − 1)` — is the default.

use crate::Augmenter;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::preprocess::impute_linear;
use tsda_core::{Dataset, Label, Mts, TsdaError};

/// Flatten every member of `class` after imputation; returns the vectors
/// and the shape to restore.
fn class_vectors(ds: &Dataset, class: Label) -> (Vec<Vec<f64>>, (usize, usize)) {
    let shape = (ds.n_dims(), ds.series_len());
    let vecs = ds
        .indices_of_class(class)
        .into_iter()
        .map(|i| impute_linear(&ds.series()[i]).into_flat())
        .collect();
    (vecs, shape)
}

/// All flattened vectors *not* in `class` (for borderline detection).
fn enemy_vectors(ds: &Dataset, class: Label) -> Vec<Vec<f64>> {
    ds.iter()
        .filter(|&(_, l)| l != class)
        .map(|(s, _)| impute_linear(s).into_flat())
        .collect()
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Indices of the `k` nearest neighbours of `vecs[i]` within `vecs`
/// (excluding `i` itself).
fn knn_indices(vecs: &[Vec<f64>], i: usize, k: usize) -> Vec<usize> {
    let mut dists: Vec<(usize, f64)> = vecs
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .map(|(j, v)| (j, sq_dist(&vecs[i], v)))
        .collect();
    dists.sort_by(|a, b| a.1.total_cmp(&b.1));
    dists.into_iter().take(k).map(|(j, _)| j).collect()
}

fn interpolate(a: &[f64], b: &[f64], gap: f64) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x + gap * (y - x)).collect()
}

fn to_mts(v: Vec<f64>, shape: (usize, usize)) -> Mts {
    Mts::from_flat(shape.0, shape.1, v)
}

/// SMOTE (Chawla et al. 2002): each synthetic sample is a random convex
/// combination of a class member and one of its `k` nearest same-class
/// neighbours.
#[derive(Debug, Clone, Copy)]
pub struct Smote {
    /// Neighbour count cap; the effective `k` is
    /// `min(k, class_size − 1)` as in the paper.
    pub k: usize,
}

impl Default for Smote {
    fn default() -> Self {
        Self { k: 5 }
    }
}

impl Augmenter for Smote {
    fn name(&self) -> &'static str {
        "smote"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let (vecs, shape) = class_vectors(ds, class);
        if vecs.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "SMOTE needs ≥2 members in class {class}, found {}",
                vecs.len()
            )));
        }
        let k = self.k.min(vecs.len() - 1);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let i = rng.gen_range(0..vecs.len());
            let nn = knn_indices(&vecs, i, k);
            let j = nn[rng.gen_range(0..nn.len())];
            let gap: f64 = rng.gen_range(0.0..1.0);
            out.push(to_mts(interpolate(&vecs[i], &vecs[j], gap), shape));
        }
        Ok(out)
    }
}

/// Borderline-SMOTE (Han et al. 2005): only class members whose
/// neighbourhood is dominated — but not overwhelmed — by other classes
/// ("danger" points) seed the interpolation.
#[derive(Debug, Clone, Copy)]
pub struct BorderlineSmote {
    /// Same-class neighbour cap for interpolation.
    pub k: usize,
    /// Neighbourhood size for the danger test.
    pub m_neighbors: usize,
}

impl Default for BorderlineSmote {
    fn default() -> Self {
        Self { k: 5, m_neighbors: 10 }
    }
}

impl Augmenter for BorderlineSmote {
    fn name(&self) -> &'static str {
        "borderline_smote"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let (vecs, shape) = class_vectors(ds, class);
        if vecs.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "Borderline-SMOTE needs ≥2 members in class {class}"
            )));
        }
        let enemies = enemy_vectors(ds, class);
        // Danger set: more than half (but not all) of the m nearest
        // points overall are enemies.
        let m = self.m_neighbors.min(vecs.len() + enemies.len() - 1).max(1);
        let mut danger: Vec<usize> = Vec::new();
        for (i, v) in vecs.iter().enumerate() {
            let mut dists: Vec<(bool, f64)> = Vec::new();
            for (j, f) in vecs.iter().enumerate() {
                if j != i {
                    dists.push((false, sq_dist(v, f)));
                }
            }
            for e in &enemies {
                dists.push((true, sq_dist(v, e)));
            }
            dists.sort_by(|a, b| a.1.total_cmp(&b.1));
            let enemy_count = dists.iter().take(m).filter(|(is_enemy, _)| *is_enemy).count();
            if 2 * enemy_count >= m && enemy_count < m {
                danger.push(i);
            }
        }
        // No borderline points (well-separated class): plain SMOTE.
        let seeds: Vec<usize> = if danger.is_empty() {
            (0..vecs.len()).collect()
        } else {
            danger
        };
        let k = self.k.min(vecs.len() - 1);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let i = seeds[rng.gen_range(0..seeds.len())];
            let nn = knn_indices(&vecs, i, k);
            let j = nn[rng.gen_range(0..nn.len())];
            let gap: f64 = rng.gen_range(0.0..1.0);
            out.push(to_mts(interpolate(&vecs[i], &vecs[j], gap), shape));
        }
        Ok(out)
    }
}

/// ADASYN (He et al. 2008): like SMOTE, but seeds are drawn proportional
/// to the fraction of enemy points in each member's neighbourhood, so
/// harder regions get more synthetic data.
#[derive(Debug, Clone, Copy)]
pub struct Adasyn {
    /// Same-class neighbour cap.
    pub k: usize,
}

impl Default for Adasyn {
    fn default() -> Self {
        Self { k: 5 }
    }
}

impl Augmenter for Adasyn {
    fn name(&self) -> &'static str {
        "adasyn"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let (vecs, shape) = class_vectors(ds, class);
        if vecs.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "ADASYN needs ≥2 members in class {class}"
            )));
        }
        let enemies = enemy_vectors(ds, class);
        let k_hard = self.k.min(vecs.len() + enemies.len() - 1).max(1);
        // Difficulty weight r_i: enemy fraction among the k nearest
        // points overall.
        let mut weights: Vec<f64> = vecs
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let mut dists: Vec<(bool, f64)> = Vec::new();
                for (j, f) in vecs.iter().enumerate() {
                    if j != i {
                        dists.push((false, sq_dist(v, f)));
                    }
                }
                for e in &enemies {
                    dists.push((true, sq_dist(v, e)));
                }
                dists.sort_by(|a, b| a.1.total_cmp(&b.1));
                dists.iter().take(k_hard).filter(|(e, _)| *e).count() as f64 / k_hard as f64
            })
            .collect();
        let total: f64 = tsda_core::math::sum_stable(weights.iter().copied());
        if total <= 0.0 {
            // Perfectly separated class: uniform seeds (plain SMOTE).
            weights = vec![1.0; vecs.len()];
        }
        let cumsum: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let total: f64 = match cumsum.last() {
            Some(&t) if t > 0.0 => t,
            _ => {
                return Err(TsdaError::InvalidParameter(format!(
                    "class {class} has no seed weights to oversample"
                )))
            }
        };
        let k = self.k.min(vecs.len() - 1);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let u: f64 = rng.gen_range(0.0..total);
            let i = cumsum.partition_point(|&c| c <= u).min(vecs.len() - 1);
            let nn = knn_indices(&vecs, i, k);
            let j = nn[rng.gen_range(0..nn.len())];
            let gap: f64 = rng.gen_range(0.0..1.0);
            out.push(to_mts(interpolate(&vecs[i], &vecs[j], gap), shape));
        }
        Ok(out)
    }
}

/// SMOTEFUNA (Tarawneh et al. 2020): interpolates between a member and
/// its *furthest* same-class neighbour, covering the class's convex hull
/// more aggressively than nearest-neighbour SMOTE.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmoteFuna;

impl Augmenter for SmoteFuna {
    fn name(&self) -> &'static str {
        "smotefuna"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let (vecs, shape) = class_vectors(ds, class);
        if vecs.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "SMOTEFUNA needs ≥2 members in class {class}"
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let i = rng.gen_range(0..vecs.len());
            // The `len() >= 2` guard above means the filter is never
            // empty; the fallback index keeps this arm panic-free.
            let j = (0..vecs.len())
                .filter(|&j| j != i)
                .max_by(|&a, &b| {
                    sq_dist(&vecs[i], &vecs[a]).total_cmp(&sq_dist(&vecs[i], &vecs[b]))
                })
                .unwrap_or((i + 1) % vecs.len());
            // Uniform sample inside the axis-aligned box spanned by the pair.
            let v: Vec<f64> = vecs[i]
                .iter()
                .zip(&vecs[j])
                .map(|(&a, &b)| {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    if hi - lo < 1e-12 {
                        a
                    } else {
                        rng.gen_range(lo..hi)
                    }
                })
                .collect();
            out.push(to_mts(v, shape));
        }
        Ok(out)
    }
}

/// Plain interpolation with the single nearest neighbour at a fixed
/// mixing weight — the simplest oversampling in the taxonomy.
#[derive(Debug, Clone, Copy)]
pub struct NearestInterpolation {
    /// Mixing weight toward the neighbour.
    pub alpha: f64,
}

impl Default for NearestInterpolation {
    fn default() -> Self {
        Self { alpha: 0.5 }
    }
}

impl Augmenter for NearestInterpolation {
    fn name(&self) -> &'static str {
        "interpolation"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let (vecs, shape) = class_vectors(ds, class);
        if vecs.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "interpolation needs ≥2 members in class {class}"
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let i = rng.gen_range(0..vecs.len());
            let nn = knn_indices(&vecs, i, 1);
            out.push(to_mts(interpolate(&vecs[i], &vecs[nn[0]], self.alpha), shape));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::seeded;

    /// Two well-separated clusters; class 1 is the minority.
    fn two_clusters() -> Dataset {
        let mut ds = Dataset::empty(2);
        for i in 0..8 {
            ds.push(Mts::constant(1, 6, 10.0 + (i as f64) * 0.1), 0);
        }
        for i in 0..4 {
            ds.push(Mts::constant(1, 6, -10.0 - (i as f64) * 0.1), 1);
        }
        ds
    }

    fn range_of(ds: &Dataset, class: usize) -> (f64, f64) {
        let vals: Vec<f64> = ds
            .iter()
            .filter(|&(_, l)| l == class)
            .map(|(s, _)| s.value(0, 0))
            .collect();
        (
            vals.iter().cloned().fold(f64::INFINITY, f64::min),
            vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        )
    }

    #[test]
    fn smote_interpolates_within_class_hull() {
        let ds = two_clusters();
        let out = Smote::default().synthesize(&ds, 1, 10, &mut seeded(1)).unwrap();
        let (lo, hi) = range_of(&ds, 1);
        for s in &out {
            let v = s.value(0, 0);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn smote_rejects_singleton_class() {
        let mut ds = Dataset::empty(2);
        ds.push(Mts::constant(1, 4, 0.0), 0);
        ds.push(Mts::constant(1, 4, 1.0), 0);
        ds.push(Mts::constant(1, 4, 9.0), 1);
        assert!(Smote::default().synthesize(&ds, 1, 2, &mut seeded(2)).is_err());
    }

    #[test]
    fn smote_k_is_capped_by_class_size() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::constant(1, 4, 0.0), 0);
        ds.push(Mts::constant(1, 4, 1.0), 0);
        // k=5 but only 1 neighbour available: must still work.
        let out = Smote { k: 5 }.synthesize(&ds, 0, 3, &mut seeded(3)).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn smote_handles_missing_values_by_imputation() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::from_dims(vec![vec![0.0, f64::NAN, 2.0]]), 0);
        ds.push(Mts::from_dims(vec![vec![2.0, 3.0, 4.0]]), 0);
        let out = Smote::default().synthesize(&ds, 0, 4, &mut seeded(4)).unwrap();
        for s in &out {
            assert!(!s.has_missing());
        }
    }

    #[test]
    fn borderline_prefers_danger_points() {
        // Minority class with a tight safe cluster far from the enemies
        // and two members at the class border. The border members have
        // mixed (enemy-majority but not all-enemy) neighbourhoods, so
        // they are the "danger" seeds; the safe cluster is not.
        let mut ds = Dataset::empty(2);
        for i in 0..20 {
            ds.push(Mts::constant(1, 2, 5.0 + i as f64 * 0.05), 0);
        }
        for i in 0..6 {
            ds.push(Mts::constant(1, 2, -10.0 - i as f64 * 0.1), 1);
        }
        ds.push(Mts::constant(1, 2, 4.7), 1);
        ds.push(Mts::constant(1, 2, 4.9), 1);
        let out = BorderlineSmote::default()
            .synthesize(&ds, 1, 30, &mut seeded(5))
            .unwrap();
        // Danger-seeded samples interpolate from ~4.8 toward the safe
        // cluster, so most outputs land between the clusters.
        let beyond = out.iter().filter(|s| s.value(0, 0) > -9.0).count();
        assert!(beyond > 15, "{beyond} of 30 samples near the border");
    }

    #[test]
    fn adasyn_weights_hard_members() {
        let ds = two_clusters();
        let out = Adasyn::default().synthesize(&ds, 1, 12, &mut seeded(6)).unwrap();
        assert_eq!(out.len(), 12);
        let (lo, hi) = range_of(&ds, 1);
        for s in &out {
            let v = s.value(0, 0);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn smotefuna_spans_the_class_box() {
        let ds = two_clusters();
        let out = SmoteFuna.synthesize(&ds, 0, 50, &mut seeded(7)).unwrap();
        let (lo, hi) = range_of(&ds, 0);
        let mut spread = f64::NEG_INFINITY;
        let mut low = f64::INFINITY;
        for s in &out {
            let v = s.value(0, 0);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            spread = spread.max(v);
            low = low.min(v);
        }
        // Furthest-neighbour interpolation covers most of the box.
        assert!(spread - low > 0.5 * (hi - lo), "spread {}", spread - low);
    }

    #[test]
    fn interpolation_is_midpoint_at_half_alpha() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::constant(1, 2, 0.0), 0);
        ds.push(Mts::constant(1, 2, 2.0), 0);
        let out = NearestInterpolation { alpha: 0.5 }
            .synthesize(&ds, 0, 4, &mut seeded(8))
            .unwrap();
        for s in &out {
            assert_eq!(s.value(0, 0), 1.0);
        }
    }

    #[test]
    fn synthesized_count_matches_request() {
        let ds = two_clusters();
        for aug in [&Smote::default() as &dyn Augmenter, &Adasyn::default(), &SmoteFuna] {
            let out = aug.synthesize(&ds, 1, 7, &mut seeded(9)).unwrap();
            assert_eq!(out.len(), 7, "{}", aug.name());
        }
    }
}
