//! Label-preserving augmentation: the "range" technique of the taxonomy
//! (paper Figure 5, Kim & Jeong 2021).
//!
//! Plain noise injection can push a sample across the decision boundary
//! — a false label. The range technique first estimates, per class, how
//! much perturbation is *safe*: a fraction of each member's distance to
//! its nearest enemy (nearest sample of any other class). Noise is then
//! scaled so the perturbed point stays inside that radius.

use crate::Augmenter;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::preprocess::impute_linear;
use tsda_core::rng::standard_normal;
use tsda_core::{Dataset, Label, Mts, TsdaError};

/// Range-limited noise injection.
#[derive(Debug, Clone, Copy)]
pub struct RangeNoise {
    /// Fraction of the nearest-enemy distance the noise may consume
    /// (the safety margin; the source work uses ~1/3).
    pub margin: f64,
}

impl Default for RangeNoise {
    fn default() -> Self {
        Self { margin: 1.0 / 3.0 }
    }
}

impl RangeNoise {
    /// Distance from each member of `class` to its nearest enemy, in the
    /// flattened `M·T` space. Returns `None` when no enemies exist.
    pub fn nearest_enemy_distances(ds: &Dataset, class: Label) -> Option<Vec<f64>> {
        let members: Vec<Vec<f64>> = ds
            .indices_of_class(class)
            .into_iter()
            .map(|i| impute_linear(&ds.series()[i]).into_flat())
            .collect();
        let enemies: Vec<Vec<f64>> = ds
            .iter()
            .filter(|&(_, l)| l != class)
            .map(|(s, _)| impute_linear(s).into_flat())
            .collect();
        if enemies.is_empty() || members.is_empty() {
            return None;
        }
        Some(
            members
                .iter()
                .map(|m| {
                    enemies
                        .iter()
                        .map(|e| {
                            tsda_core::math::sum_stable(
                                m.iter().zip(e).map(|(a, b)| (a - b) * (a - b)),
                            )
                            .sqrt()
                        })
                        .fold(f64::INFINITY, f64::min)
                })
                .collect(),
        )
    }
}

impl Augmenter for RangeNoise {
    fn name(&self) -> &'static str {
        "range_noise"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let members = ds.indices_of_class(class);
        if members.is_empty() {
            return Err(TsdaError::InvalidParameter(format!("class {class} empty")));
        }
        let distances = Self::nearest_enemy_distances(ds, class).ok_or_else(|| {
            TsdaError::InvalidParameter("range noise needs at least one enemy class".into())
        })?;
        let dims = ds.n_dims();
        let len = ds.series_len();
        let d = (dims * len) as f64;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let pick = rng.gen_range(0..members.len());
            let base = impute_linear(&ds.series()[members[pick]]);
            // Safe radius for this member; a Gaussian with per-coordinate
            // std σ has expected norm ≈ σ√d, so σ = margin·radius/√d keeps
            // the perturbed point inside the margin in expectation.
            let radius = distances[pick];
            let sigma = self.margin * radius / d.sqrt().max(1.0);
            let mut s = base.clone();
            // Draw the noise, then hard-clip its norm at margin·radius so
            // no sample ever transgresses the boundary estimate.
            let mut noise: Vec<f64> = (0..dims * len).map(|_| sigma * standard_normal(rng)).collect();
            let norm: f64 = tsda_core::math::sum_stable(noise.iter().map(|v| v * v)).sqrt();
            let cap = self.margin * radius;
            if norm > cap && norm > 0.0 {
                let scale = cap / norm;
                for v in &mut noise {
                    *v *= scale;
                }
            }
            for (v, nz) in s.as_flat_mut().iter_mut().zip(&noise) {
                *v += nz;
            }
            out.push(s);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::seeded;

    /// Two classes separated by distance 10 in flattened space.
    fn two_classes() -> Dataset {
        let mut ds = Dataset::empty(2);
        for i in 0..5 {
            ds.push(Mts::constant(1, 4, i as f64 * 0.1), 0);
        }
        for i in 0..5 {
            ds.push(Mts::constant(1, 4, 5.0 + i as f64 * 0.1), 1);
        }
        ds
    }

    #[test]
    fn nearest_enemy_distances_are_correct() {
        let ds = two_classes();
        let d = RangeNoise::nearest_enemy_distances(&ds, 0).unwrap();
        // Closest member of class 0 (0.4) to closest enemy (5.0):
        // per-position gap 4.6 over 4 positions → norm 9.2.
        let min = d.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((min - 9.2).abs() < 1e-9, "{min}");
    }

    #[test]
    fn samples_never_cross_the_margin() {
        let ds = two_classes();
        let aug = RangeNoise { margin: 1.0 / 3.0 };
        let out = aug.synthesize(&ds, 0, 50, &mut seeded(1)).unwrap();
        let dists = RangeNoise::nearest_enemy_distances(&ds, 0).unwrap();
        let max_radius = dists.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for s in &out {
            // Every synthetic point stays within margin · its base radius
            // of *some* class member; conservatively check against the
            // largest member radius.
            let min_dist_to_class: f64 = ds
                .iter()
                .filter(|&(_, l)| l == 0)
                .map(|(m, _)| m.euclidean_distance(s))
                .fold(f64::INFINITY, f64::min);
            assert!(
                min_dist_to_class <= max_radius / 3.0 + 1e-9,
                "sample strayed {min_dist_to_class}"
            );
        }
    }

    #[test]
    fn synthetic_points_keep_their_label_under_1nn() {
        let ds = two_classes();
        let out = RangeNoise::default().synthesize(&ds, 0, 30, &mut seeded(2)).unwrap();
        for s in &out {
            // 1-NN over the original data must still say class 0.
            let (label, _) = ds
                .iter()
                .map(|(m, l)| (l, m.euclidean_distance(s)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert_eq!(label, 0);
        }
    }

    #[test]
    fn wider_margin_adds_more_noise() {
        let ds = two_classes();
        let spread = |margin: f64| {
            let aug = RangeNoise { margin };
            let out = aug.synthesize(&ds, 0, 20, &mut seeded(3)).unwrap();
            out.iter()
                .map(|s| {
                    ds.iter()
                        .filter(|&(_, l)| l == 0)
                        .map(|(m, _)| m.euclidean_distance(s))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
        };
        assert!(spread(0.6) > spread(0.1));
    }

    #[test]
    fn single_class_dataset_is_rejected() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::constant(1, 4, 0.0), 0);
        assert!(RangeNoise::default().synthesize(&ds, 0, 1, &mut seeded(4)).is_err());
    }
}
