//! Structure-preserving oversampling: OHIT and INOS (paper Figure 6).
//!
//! These techniques target what SMOTE-style interpolation destroys: the
//! covariance structure of a (possibly multi-modal) minority class in
//! high-dimensional series space.
//!
//! * [`Ohit`] (Zhu, Lin & Liu 2020): DRSNN — density-based clustering on
//!   a shared-nearest-neighbour graph — finds the class's modes; each
//!   mode's covariance is estimated with shrinkage (the class is tiny
//!   relative to `M·T`), and new samples are drawn from the resulting
//!   per-mode Gaussians.
//! * [`Inos`] (Cao et al. 2011/2013): a fraction of samples comes from
//!   "protected" interpolation, the rest from a regularised estimate of
//!   the whole-class covariance — the SPO recipe with an interpolation
//!   guard.

use crate::Augmenter;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::preprocess::impute_linear;
use tsda_core::rng::standard_normal;
use tsda_core::{Dataset, Label, Mts, TsdaError};
use tsda_linalg::cholesky::cholesky_jittered;
use tsda_linalg::cov::shrinkage_covariance;
use tsda_linalg::matrix::Matrix;

/// Shared-nearest-neighbour similarity: |kNN(a) ∩ kNN(b)| for points
/// indexed into a distance matrix.
fn snn_similarity(knn: &[Vec<usize>], a: usize, b: usize) -> usize {
    knn[a].iter().filter(|i| knn[b].contains(i)).count()
}

/// DRSNN clustering (Jarvis-Patrick style density clustering on the SNN
/// graph). Returns cluster assignments; noise points get their own
/// singleton clusters so every member participates in sampling.
fn drsnn_cluster(vectors: &[Vec<f64>], k: usize) -> Vec<usize> {
    let n = vectors.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let k = k.min(n - 1).max(1);
    // kNN lists by Euclidean distance.
    let knn: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            let mut d: Vec<(usize, f64)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| {
                    (
                        j,
                        tsda_core::math::sum_stable(
                            vectors[i].iter().zip(&vectors[j]).map(|(a, b)| (a - b) * (a - b)),
                        ),
                    )
                })
                .collect();
            d.sort_by(|a, b| a.1.total_cmp(&b.1));
            d.into_iter().take(k).map(|(j, _)| j).collect()
        })
        .collect();
    // SNN density: count of neighbours sharing at least k/2 neighbours.
    let eps = (k / 2).max(1);
    let density: Vec<usize> = (0..n)
        .map(|i| {
            knn[i]
                .iter()
                .filter(|&&j| snn_similarity(&knn, i, j) >= eps)
                .count()
        })
        .collect();
    // Core points seed clusters; members join the densest core they share
    // enough neighbours with (single-pass union toward cores).
    let core_threshold = (k / 2).max(1);
    let mut assign = vec![usize::MAX; n];
    let mut next_cluster = 0;
    // Process points by decreasing density.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| density[b].cmp(&density[a]));
    for &i in &order {
        if density[i] < core_threshold {
            continue; // not a core point
        }
        // Join an existing cluster through a connected core neighbour.
        let linked = knn[i]
            .iter()
            .find(|&&j| assign[j] != usize::MAX && snn_similarity(&knn, i, j) >= eps);
        match linked {
            Some(&j) => assign[i] = assign[j],
            None => {
                assign[i] = next_cluster;
                next_cluster += 1;
            }
        }
    }
    // Non-core points attach to the cluster of their nearest assigned
    // neighbour, else become singletons.
    for i in 0..n {
        if assign[i] != usize::MAX {
            continue;
        }
        let near = knn[i].iter().find(|&&j| assign[j] != usize::MAX);
        match near {
            Some(&j) => assign[i] = assign[j],
            None => {
                assign[i] = next_cluster;
                next_cluster += 1;
            }
        }
    }
    assign
}

/// Draw from `N(mean, cov)` using a jittered Cholesky factor.
fn sample_gaussian(
    mean: &[f64],
    chol: &Matrix,
    rng: &mut StdRng,
) -> Vec<f64> {
    let d = mean.len();
    let z: Vec<f64> = (0..d).map(|_| standard_normal(rng)).collect();
    let mut out = mean.to_vec();
    for i in 0..d {
        let chol = &chol;
        let z = &z;
        out[i] += tsda_core::math::sum_stable((0..=i).map(move |j| chol[(i, j)] * z[j]));
    }
    out
}

/// OHIT: cluster the minority class with DRSNN, then sample per-cluster
/// Gaussians with shrinkage covariance.
#[derive(Debug, Clone, Copy)]
pub struct Ohit {
    /// kNN parameter of the SNN graph; clamped to the class size.
    pub k: usize,
}

impl Default for Ohit {
    fn default() -> Self {
        Self { k: 5 }
    }
}

impl Augmenter for Ohit {
    fn name(&self) -> &'static str {
        "ohit"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let members = ds.indices_of_class(class);
        if members.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "OHIT needs ≥2 members in class {class}"
            )));
        }
        let dims = ds.n_dims();
        let len = ds.series_len();
        let vectors: Vec<Vec<f64>> = members
            .iter()
            .map(|&i| impute_linear(&ds.series()[i]).into_flat())
            .collect();
        let assign = drsnn_cluster(&vectors, self.k);
        let n_clusters = assign.iter().copied().max().unwrap_or(0) + 1;
        // Per-cluster Gaussian models (skip singletons: they fall back to
        // the whole-class model).
        let build_model = |idx: &[usize]| -> Option<(Vec<f64>, Matrix)> {
            if idx.len() < 2 {
                return None;
            }
            let d = vectors[0].len();
            let mat = Matrix::from_rows(
                &idx.iter().map(|&i| vectors[i].clone()).collect::<Vec<_>>(),
            );
            let mean: Vec<f64> = (0..d)
                .map(|j| {
                    tsda_core::math::sum_stable(idx.iter().map(|&i| vectors[i][j]))
                        / idx.len() as f64
                })
                .collect();
            let shrunk = shrinkage_covariance(&mat);
            let (chol, _) = cholesky_jittered(&shrunk.covariance, 14).ok()?;
            Some((mean, chol))
        };
        let whole: Vec<usize> = (0..vectors.len()).collect();
        let fallback = build_model(&whole).ok_or_else(|| {
            TsdaError::Numerical("OHIT could not factor the class covariance".into())
        })?;
        let mut models: Vec<Option<(Vec<f64>, Matrix)>> = Vec::with_capacity(n_clusters);
        let mut weights: Vec<f64> = Vec::with_capacity(n_clusters);
        for c in 0..n_clusters {
            let idx: Vec<usize> = (0..vectors.len()).filter(|&i| assign[i] == c).collect();
            weights.push(idx.len() as f64);
            models.push(build_model(&idx));
        }
        let total: f64 = tsda_core::math::sum_stable(weights.iter().copied());
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            // Pick a cluster proportional to its size.
            let u: f64 = rng.gen::<f64>() * total;
            let mut acc = 0.0;
            let mut chosen = 0;
            for (c, w) in weights.iter().enumerate() {
                acc += w;
                if u <= acc {
                    chosen = c;
                    break;
                }
            }
            let (mean, chol) = models[chosen].as_ref().unwrap_or(&fallback);
            out.push(Mts::from_flat(dims, len, sample_gaussian(mean, chol, rng)));
        }
        Ok(out)
    }
}

/// INOS: `interp_fraction` of the samples come from protected
/// interpolation between class members; the rest are drawn from a
/// regularised whole-class Gaussian (the SPO component).
#[derive(Debug, Clone, Copy)]
pub struct Inos {
    /// Fraction generated by interpolation (the "protected" samples).
    pub interp_fraction: f64,
}

impl Default for Inos {
    fn default() -> Self {
        Self { interp_fraction: 0.7 }
    }
}

impl Augmenter for Inos {
    fn name(&self) -> &'static str {
        "inos"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let members = ds.indices_of_class(class);
        if members.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "INOS needs ≥2 members in class {class}"
            )));
        }
        let dims = ds.n_dims();
        let len = ds.series_len();
        let vectors: Vec<Vec<f64>> = members
            .iter()
            .map(|&i| impute_linear(&ds.series()[i]).into_flat())
            .collect();
        let d = vectors[0].len();
        let mat = Matrix::from_rows(&vectors);
        let mean: Vec<f64> = (0..d)
            .map(|j| {
                tsda_core::math::sum_stable(vectors.iter().map(|v| v[j])) / vectors.len() as f64
            })
            .collect();
        let shrunk = shrinkage_covariance(&mat);
        let (chol, _) = cholesky_jittered(&shrunk.covariance, 14)
            .map_err(|e| TsdaError::Numerical(format!("INOS covariance: {e}")))?;
        let n_interp = ((count as f64) * self.interp_fraction).round() as usize;
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            if i < n_interp {
                let a = rng.gen_range(0..vectors.len());
                let mut b = rng.gen_range(0..vectors.len());
                while b == a {
                    b = rng.gen_range(0..vectors.len());
                }
                let gap: f64 = rng.gen_range(0.0..1.0);
                let v: Vec<f64> = vectors[a]
                    .iter()
                    .zip(&vectors[b])
                    .map(|(x, y)| x + gap * (y - x))
                    .collect();
                out.push(Mts::from_flat(dims, len, v));
            } else {
                out.push(Mts::from_flat(dims, len, sample_gaussian(&mean, &chol, rng)));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::{normal, seeded};

    /// A bimodal class: two well-separated modes with distinct internal
    /// correlation, in 1×8.
    fn bimodal_class() -> Dataset {
        let mut ds = Dataset::empty(1);
        let mut rng = seeded(0);
        for _ in 0..8 {
            // Mode A around +5, rising.
            let base: Vec<f64> = (0..8).map(|t| 5.0 + t as f64 * 0.1).collect();
            ds.push(
                Mts::from_dims(vec![base.iter().map(|v| v + normal(&mut rng, 0.0, 0.2)).collect()]),
                0,
            );
        }
        for _ in 0..8 {
            // Mode B around −5, falling.
            let base: Vec<f64> = (0..8).map(|t| -5.0 - t as f64 * 0.1).collect();
            ds.push(
                Mts::from_dims(vec![base.iter().map(|v| v + normal(&mut rng, 0.0, 0.2)).collect()]),
                0,
            );
        }
        ds
    }

    #[test]
    fn drsnn_separates_two_modes() {
        let ds = bimodal_class();
        let vectors: Vec<Vec<f64>> = ds.series().iter().map(|s| s.as_flat().to_vec()).collect();
        let assign = drsnn_cluster(&vectors, 4);
        // Members 0..8 (mode A) and 8..16 (mode B) must not share a cluster.
        for i in 0..8 {
            for j in 8..16 {
                assert_ne!(assign[i], assign[j], "modes merged: {assign:?}");
            }
        }
    }

    #[test]
    fn ohit_samples_respect_the_modes() {
        let ds = bimodal_class();
        let out = Ohit::default().synthesize(&ds, 0, 40, &mut seeded(1)).unwrap();
        let mut near_a = 0;
        let mut near_b = 0;
        for s in &out {
            let m: f64 = s.dim(0).iter().sum::<f64>() / 8.0;
            if m > 2.0 {
                near_a += 1;
            } else if m < -2.0 {
                near_b += 1;
            }
        }
        // No samples should land in the empty middle (that is what SMOTE
        // would do); both modes must be populated.
        assert_eq!(near_a + near_b, 40, "samples fell between modes");
        assert!(near_a > 5 && near_b > 5, "a mode was ignored: {near_a}/{near_b}");
    }

    #[test]
    fn ohit_preserves_within_mode_correlation_sign() {
        // Mode A rises with t; generated samples assigned to mode A
        // should rise too (covariance structure, not white noise).
        let ds = bimodal_class();
        let out = Ohit::default().synthesize(&ds, 0, 30, &mut seeded(2)).unwrap();
        for s in &out {
            let m: f64 = s.dim(0).iter().sum::<f64>() / 8.0;
            if m > 2.0 {
                let slope = s.value(0, 7) - s.value(0, 0);
                assert!(slope > -0.8, "mode-A sample lost its rise: {slope}");
            }
        }
    }

    #[test]
    fn inos_mixes_interpolation_and_gaussian() {
        let ds = bimodal_class();
        let out = Inos { interp_fraction: 0.5 }
            .synthesize(&ds, 0, 20, &mut seeded(3))
            .unwrap();
        assert_eq!(out.len(), 20);
        for s in &out {
            assert!(s.dim(0).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn structure_methods_reject_singleton_class() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::constant(1, 4, 0.0), 0);
        assert!(Ohit::default().synthesize(&ds, 0, 1, &mut seeded(4)).is_err());
        assert!(Inos::default().synthesize(&ds, 0, 1, &mut seeded(5)).is_err());
    }

    #[test]
    fn ohit_handles_high_dimensional_small_class() {
        // 4 members in 1×32 space: covariance is singular; shrinkage +
        // jitter must still produce samples.
        let mut ds = Dataset::empty(1);
        let mut rng = seeded(6);
        for _ in 0..4 {
            ds.push(
                Mts::from_dims(vec![(0..32)
                    .map(|t| (t as f64 * 0.3).sin() + normal(&mut rng, 0.0, 0.1))
                    .collect()]),
                0,
            );
        }
        let out = Ohit::default().synthesize(&ds, 0, 6, &mut seeded(7)).unwrap();
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|s| s.as_flat().iter().all(|v| v.is_finite())));
    }
}
