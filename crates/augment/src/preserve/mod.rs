//! Preserving techniques — the taxonomy branch this paper adds over
//! earlier surveys: label-preserving range noise and structure-preserving
//! covariance-faithful oversampling.

pub mod label;
pub mod structure;
