//! Time-domain transformations: noise injection (the paper's evaluated
//! technique, Eq. 6), scaling, rotation, jitter, slicing, permutation,
//! masking, dropout, pooling, magnitude/time/window warping and DTW-guided
//! warping.
//!
//! Pointwise transforms preserve missing (`NaN`) positions; resampling
//! transforms (slicing, warping) impute first, because a warped time axis
//! has no well-defined missing positions.

use crate::{Augmenter, SeriesTransform};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use tsda_core::preprocess::impute_linear;
use tsda_core::rng::normal;
use tsda_core::{Dataset, Label, Mts, TsdaError};
use tsda_linalg::simd;
use tsda_signal::dtw::{dtw_path, DtwOptions};
use tsda_signal::interp::{lerp_at, resample_linear, CubicSpline};

/// Draw one `N(0, std²)` value per *observed* position of `dim` into a
/// dense buffer (0.0 at missing positions, which the masked add skips).
///
/// Sampling only at observed positions consumes the RNG stream exactly
/// like the former per-element `if !v.is_nan() { *v += normal(..) }`
/// loop, so seeded outputs are unchanged.
fn noise_row(rng: &mut StdRng, dim: &[f64], std: f64) -> Vec<f64> {
    dim.iter()
        .map(|v| if v.is_nan() { 0.0 } else { normal(rng, 0.0, std) })
        .collect()
}

/// The paper's noise injection (Eq. 6): adds `N(0, (l·std_j)²)` to every
/// observed value of dimension `j`, where `std_j` is the standard
/// deviation of that dimension in the *original* series and `l` the noise
/// level (1, 3, or 5 in the paper).
#[derive(Debug, Clone, Copy)]
pub struct NoiseInjection {
    /// The std multiplier `l`.
    pub level: f64,
}

impl NoiseInjection {
    /// Noise at level `l` (the paper evaluates `l ∈ {1, 3, 5}`).
    pub fn level(level: f64) -> Self {
        Self { level }
    }
}

impl SeriesTransform for NoiseInjection {
    fn name(&self) -> &'static str {
        "noise"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let mut out = series.clone();
        for m in 0..series.n_dims() {
            let std = series.dim_std(m);
            let noise = noise_row(rng, series.dim(m), self.level * std);
            simd::add_masked_f64(out.dim_mut(m), &noise);
        }
        out
    }
}

/// Global magnitude scaling: every dimension is multiplied by
/// `1 + N(0, σ²)` (one factor per dimension).
#[derive(Debug, Clone, Copy)]
pub struct Scaling {
    /// Std of the scale perturbation.
    pub sigma: f64,
}

impl Default for Scaling {
    fn default() -> Self {
        Self { sigma: 0.1 }
    }
}

impl SeriesTransform for Scaling {
    fn name(&self) -> &'static str {
        "scaling"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let mut out = series.clone();
        for m in 0..series.n_dims() {
            let factor = 1.0 + normal(rng, 0.0, self.sigma);
            simd::scale_masked_f64(out.dim_mut(m), factor);
        }
        out
    }
}

/// Rotation: mixes the dimensions through a random orthogonal matrix
/// (random Givens rotations), altering cross-channel dependencies while
/// keeping the joint energy. For univariate series this reduces to a
/// random sign flip.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rotation;

impl SeriesTransform for Rotation {
    fn name(&self) -> &'static str {
        "rotation"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let m = series.n_dims();
        if m == 1 {
            let mut out = series.clone();
            if rng.gen::<bool>() {
                for v in out.dim_mut(0) {
                    *v = -*v;
                }
            }
            return out;
        }
        let mut out = impute_linear(series);
        // A few random Givens rotations approximate a random orthogonal mix.
        for _ in 0..m {
            let i = rng.gen_range(0..m);
            let mut j = rng.gen_range(0..m - 1);
            if j >= i {
                j += 1;
            }
            let theta: f64 = rng.gen_range(-0.5..0.5);
            let (c, s) = (theta.cos(), theta.sin());
            for t in 0..out.len() {
                let a = out.value(i, t);
                let b = out.value(j, t);
                out.set(i, t, c * a - s * b);
                out.set(j, t, s * a + c * b);
            }
        }
        out
    }
}

/// Absolute additive jitter `N(0, σ²)` independent of the series scale.
#[derive(Debug, Clone, Copy)]
pub struct Jitter {
    /// Noise std in raw units.
    pub sigma: f64,
}

impl Default for Jitter {
    fn default() -> Self {
        Self { sigma: 0.03 }
    }
}

impl SeriesTransform for Jitter {
    fn name(&self) -> &'static str {
        "jitter"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let mut out = series.clone();
        for m in 0..series.n_dims() {
            let noise = noise_row(rng, series.dim(m), self.sigma);
            simd::add_masked_f64(out.dim_mut(m), &noise);
        }
        out
    }
}

/// Slicing (window slicing, Le Guennec et al. 2016): crop a random
/// window of `ratio·T` and stretch it back to the original length.
#[derive(Debug, Clone, Copy)]
pub struct Slicing {
    /// Fraction of the series the window keeps.
    pub ratio: f64,
}

impl Default for Slicing {
    fn default() -> Self {
        Self { ratio: 0.9 }
    }
}

impl SeriesTransform for Slicing {
    fn name(&self) -> &'static str {
        "slicing"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let t = series.len();
        let keep = ((t as f64 * self.ratio) as usize).clamp(2, t);
        let start = rng.gen_range(0..=t - keep);
        let imputed = impute_linear(series);
        let dims: Vec<Vec<f64>> = (0..series.n_dims())
            .map(|m| resample_linear(&imputed.dim(m)[start..start + keep], t))
            .collect();
        Mts::from_dims(dims)
    }
}

/// Permutation: split the time axis into `segments` equal chunks and
/// shuffle their order (all dimensions move together).
#[derive(Debug, Clone, Copy)]
pub struct Permutation {
    /// Number of segments to shuffle.
    pub segments: usize,
}

impl Default for Permutation {
    fn default() -> Self {
        Self { segments: 4 }
    }
}

impl SeriesTransform for Permutation {
    fn name(&self) -> &'static str {
        "permutation"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let t = series.len();
        let k = self.segments.clamp(1, t);
        let mut order: Vec<usize> = (0..k).collect();
        order.shuffle(rng);
        let bounds: Vec<usize> = (0..=k).map(|i| i * t / k).collect();
        let mut dims = Vec::with_capacity(series.n_dims());
        for m in 0..series.n_dims() {
            let src = series.dim(m);
            let mut d = Vec::with_capacity(t);
            for &seg in &order {
                d.extend_from_slice(&src[bounds[seg]..bounds[seg + 1]]);
            }
            dims.push(d);
        }
        Mts::from_dims(dims)
    }
}

/// Masking (cutout): zero a random contiguous window of `ratio·T`.
#[derive(Debug, Clone, Copy)]
pub struct Masking {
    /// Fraction of the series to mask.
    pub ratio: f64,
}

impl Default for Masking {
    fn default() -> Self {
        Self { ratio: 0.1 }
    }
}

impl SeriesTransform for Masking {
    fn name(&self) -> &'static str {
        "masking"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let t = series.len();
        let w = ((t as f64 * self.ratio) as usize).clamp(1, t);
        let start = rng.gen_range(0..=t - w);
        let mut out = series.clone();
        for m in 0..series.n_dims() {
            for v in &mut out.dim_mut(m)[start..start + w] {
                if !v.is_nan() {
                    *v = 0.0;
                }
            }
        }
        out
    }
}

/// Dropout: independently zero each observed value with probability `p`.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    /// Per-value drop probability.
    pub p: f64,
}

impl Default for Dropout {
    fn default() -> Self {
        Self { p: 0.05 }
    }
}

impl SeriesTransform for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let mut out = series.clone();
        for m in 0..series.n_dims() {
            for v in out.dim_mut(m) {
                if !v.is_nan() && rng.gen::<f64>() < self.p {
                    *v = 0.0;
                }
            }
        }
        out
    }
}

/// Pooling (smoothing): replace each value with the average of a centred
/// window, damping high-frequency detail.
#[derive(Debug, Clone, Copy)]
pub struct Pooling {
    /// Window width (odd).
    pub window: usize,
}

impl Default for Pooling {
    fn default() -> Self {
        Self { window: 3 }
    }
}

impl SeriesTransform for Pooling {
    fn name(&self) -> &'static str {
        "pooling"
    }

    fn transform(&self, series: &Mts, _rng: &mut StdRng) -> Mts {
        let imputed = impute_linear(series);
        let dims: Vec<Vec<f64>> = (0..series.n_dims())
            .map(|m| tsda_signal::decompose::moving_average(imputed.dim(m), self.window.max(1)))
            .collect();
        Mts::from_dims(dims)
    }
}

/// Smooth random multiplicative envelope through `knots` spline knots:
/// `x'(t) = x(t) · s(t)` with `s` a cubic spline of `N(1, σ²)` values.
#[derive(Debug, Clone, Copy)]
pub struct MagnitudeWarp {
    /// Number of spline knots.
    pub knots: usize,
    /// Std of the knot values around 1.
    pub sigma: f64,
}

impl Default for MagnitudeWarp {
    fn default() -> Self {
        Self { knots: 4, sigma: 0.2 }
    }
}

impl SeriesTransform for MagnitudeWarp {
    fn name(&self) -> &'static str {
        "magnitude_warp"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let t = series.len();
        let k = self.knots.max(2);
        let xs: Vec<f64> = (0..k).map(|i| i as f64 * (t - 1) as f64 / (k - 1) as f64).collect();
        let mut out = series.clone();
        for m in 0..series.n_dims() {
            let ys: Vec<f64> = (0..k).map(|_| 1.0 + normal(rng, 0.0, self.sigma)).collect();
            let spline = CubicSpline::fit(&xs, &ys);
            for (i, v) in out.dim_mut(m).iter_mut().enumerate() {
                if !v.is_nan() {
                    *v *= spline.eval(i as f64);
                }
            }
        }
        out
    }
}

/// Smooth monotone time distortion: warp the time axis through a spline
/// of perturbed knots and resample. All dimensions share one warp.
#[derive(Debug, Clone, Copy)]
pub struct TimeWarp {
    /// Number of interior warp knots.
    pub knots: usize,
    /// Relative knot displacement std.
    pub sigma: f64,
}

impl Default for TimeWarp {
    fn default() -> Self {
        Self { knots: 4, sigma: 0.2 }
    }
}

impl SeriesTransform for TimeWarp {
    fn name(&self) -> &'static str {
        "time_warp"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let t = series.len();
        if t < 3 {
            return series.clone();
        }
        let k = self.knots.max(2);
        // Monotone warp: k positive increments accumulate into k+1 knot
        // positions from 0 to 1, rescaled onto [0, T−1]; knot 0 maps to 0
        // and knot k to T−1, so the endpoints are fixed.
        let increments: Vec<f64> = (0..k)
            .map(|_| (1.0 + normal(rng, 0.0, self.sigma)).max(0.1))
            .collect();
        let total: f64 = tsda_core::math::sum_stable(increments.iter().copied());
        let mut knot_pos = vec![0.0];
        let mut acc = 0.0;
        for v in &increments {
            acc += v / total;
            knot_pos.push(acc);
        }
        let xs: Vec<f64> = (0..=k).map(|i| i as f64 * (t - 1) as f64 / k as f64).collect();
        let ys: Vec<f64> = knot_pos.iter().map(|p| p * (t - 1) as f64).collect();
        // Fit a spline mapping output time -> source time; ys is
        // cumulative so the map is monotone at the knots.
        let warp = CubicSpline::fit(&xs, &ys);
        let imputed = impute_linear(series);
        let dims: Vec<Vec<f64>> = (0..series.n_dims())
            .map(|m| {
                let src = imputed.dim(m);
                (0..t)
                    .map(|i| lerp_at(src, warp.eval(i as f64).clamp(0.0, (t - 1) as f64)))
                    .collect()
            })
            .collect();
        Mts::from_dims(dims)
    }
}

/// Window warping (Le Guennec et al. 2016): pick a random window and
/// stretch it by ×2 or compress it by ×½, then resample the whole series
/// back to the original length.
#[derive(Debug, Clone, Copy)]
pub struct WindowWarp {
    /// Fraction of the series covered by the warped window.
    pub window_ratio: f64,
}

impl Default for WindowWarp {
    fn default() -> Self {
        Self { window_ratio: 0.2 }
    }
}

impl SeriesTransform for WindowWarp {
    fn name(&self) -> &'static str {
        "window_warp"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let t = series.len();
        let w = ((t as f64 * self.window_ratio) as usize).clamp(2, t);
        let start = rng.gen_range(0..=t - w);
        let stretch = rng.gen::<bool>();
        let new_w = if stretch { w * 2 } else { (w / 2).max(1) };
        let imputed = impute_linear(series);
        let dims: Vec<Vec<f64>> = (0..series.n_dims())
            .map(|m| {
                let src = imputed.dim(m);
                let mut composed =
                    Vec::with_capacity(t - w + new_w);
                composed.extend_from_slice(&src[..start]);
                composed.extend(resample_linear(&src[start..start + w], new_w));
                composed.extend_from_slice(&src[start + w..]);
                resample_linear(&composed, t)
            })
            .collect();
        Mts::from_dims(dims)
    }
}

/// DTW-guided warping (Iwana & Uchida 2020): align the sample to a random
/// same-class *teacher* with DTW and replay the sample through the
/// alignment, inheriting the teacher's timing. Needs class context, so it
/// implements [`Augmenter`] directly rather than [`SeriesTransform`].
#[derive(Debug, Clone, Copy)]
pub struct GuidedWarp {
    /// Optional Sakoe-Chiba band fraction for the alignment.
    pub band_fraction: Option<f64>,
}

impl Default for GuidedWarp {
    fn default() -> Self {
        Self { band_fraction: Some(0.2) }
    }
}

impl Augmenter for GuidedWarp {
    fn name(&self) -> &'static str {
        "guided_warp"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let members = ds.indices_of_class(class);
        if members.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "guided warp needs ≥2 members in class {class}"
            )));
        }
        let opts = DtwOptions { band_fraction: self.band_fraction };
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let si = members[rng.gen_range(0..members.len())];
            let mut ti = members[rng.gen_range(0..members.len() - 1)];
            if ti >= si {
                let next = members.iter().position(|&x| x == ti).map_or(0, |p| p + 1);
                ti = members[next % members.len()];
            }
            let sample = impute_linear(&ds.series()[si]);
            let teacher = impute_linear(&ds.series()[ti]);
            let (_, path) = dtw_path(&teacher, &sample, opts);
            // For each teacher step, average the aligned sample values →
            // the sample replayed with the teacher's timing.
            let t_len = teacher.len();
            let mut sums = vec![vec![0.0; t_len]; sample.n_dims()];
            let mut counts = vec![0usize; t_len];
            for &(ti_step, si_step) in &path {
                counts[ti_step] += 1;
                for (m, sum_row) in sums.iter_mut().enumerate() {
                    sum_row[ti_step] += sample.value(m, si_step);
                }
            }
            let dims: Vec<Vec<f64>> = sums
                .into_iter()
                .map(|row| {
                    row.iter()
                        .zip(&counts)
                        .map(|(&s, &c)| s / c.max(1) as f64)
                        .collect::<Vec<f64>>()
                })
                .map(|row| resample_linear(&row, sample.len()))
                .collect();
            out.push(Mts::from_dims(dims));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::seeded;

    fn wavy() -> Mts {
        Mts::from_dims(vec![
            (0..32).map(|t| (t as f64 * 0.4).sin()).collect(),
            (0..32).map(|t| (t as f64 * 0.2).cos() * 2.0).collect(),
        ])
    }

    #[test]
    fn noise_scales_with_dimension_std() {
        let s = Mts::from_dims(vec![
            vec![0.0; 64].iter().enumerate().map(|(i, _)| (i % 2) as f64).collect(), // std 0.5
            vec![0.0; 64].iter().enumerate().map(|(i, _)| 100.0 * (i % 2) as f64).collect(), // std 50
        ]);
        let mut rng = seeded(1);
        let out = NoiseInjection::level(1.0).transform(&s, &mut rng);
        let d0: f64 = (0..64).map(|t| (out.value(0, t) - s.value(0, t)).abs()).sum::<f64>() / 64.0;
        let d1: f64 = (0..64).map(|t| (out.value(1, t) - s.value(1, t)).abs()).sum::<f64>() / 64.0;
        assert!(d1 > 10.0 * d0, "dim noise not proportional: {d0} vs {d1}");
    }

    #[test]
    fn noise_preserves_missing_positions() {
        let s = Mts::from_dims(vec![vec![1.0, f64::NAN, 3.0, 4.0]]);
        let out = NoiseInjection::level(3.0).transform(&s, &mut seeded(2));
        assert!(out.value(0, 1).is_nan());
        assert!(!out.value(0, 0).is_nan());
    }

    #[test]
    fn higher_level_adds_more_noise() {
        let s = wavy();
        let d = |l: f64| {
            let out = NoiseInjection::level(l).transform(&s, &mut seeded(3));
            s.euclidean_distance(&out)
        };
        assert!(d(5.0) > 2.0 * d(1.0));
    }

    #[test]
    fn scaling_preserves_shape_ratio() {
        let s = wavy();
        let out = Scaling { sigma: 0.2 }.transform(&s, &mut seeded(4));
        // Within one dimension the ratio out/in is constant.
        let r0 = out.value(0, 1) / s.value(0, 1);
        let r1 = out.value(0, 5) / s.value(0, 5);
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn rotation_preserves_energy() {
        let s = wavy();
        let out = Rotation.transform(&s, &mut seeded(5));
        let energy = |x: &Mts| x.as_flat().iter().map(|v| v * v).sum::<f64>();
        assert!((energy(&s) - energy(&out)).abs() < 1e-6 * energy(&s));
        assert_ne!(s, out);
    }

    #[test]
    fn univariate_rotation_flips_sign() {
        let s = Mts::univariate(vec![1.0, 2.0, 3.0]);
        // Some seed flips, some does not; check both behaviours occur.
        let mut flipped = false;
        let mut kept = false;
        for seed in 0..10 {
            let out = Rotation.transform(&s, &mut seeded(seed));
            if out.value(0, 0) == -1.0 {
                flipped = true;
            } else {
                kept = true;
            }
        }
        assert!(flipped && kept);
    }

    #[test]
    fn slicing_keeps_length_and_changes_content() {
        let s = wavy();
        let out = Slicing { ratio: 0.5 }.transform(&s, &mut seeded(6));
        assert_eq!(out.shape(), s.shape());
        assert_ne!(out, s);
    }

    #[test]
    fn permutation_preserves_multiset_of_values() {
        let s = Mts::from_dims(vec![(0..12).map(|v| v as f64).collect()]);
        let out = Permutation { segments: 4 }.transform(&s, &mut seeded(8));
        let mut a: Vec<f64> = s.dim(0).to_vec();
        let mut b: Vec<f64> = out.dim(0).to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn masking_zeroes_a_window() {
        let s = Mts::from_dims(vec![vec![1.0; 20]]);
        let out = Masking { ratio: 0.25 }.transform(&s, &mut seeded(9));
        let zeros = out.dim(0).iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 5);
        // Zeros are contiguous.
        let first = out.dim(0).iter().position(|&v| v == 0.0).unwrap();
        assert!(out.dim(0)[first..first + 5].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dropout_rate_is_respected() {
        let s = Mts::from_dims(vec![vec![1.0; 4000]]);
        let out = Dropout { p: 0.1 }.transform(&s, &mut seeded(10));
        let zeros = out.dim(0).iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f64 / 4000.0 - 0.1).abs() < 0.03, "{zeros}");
    }

    #[test]
    fn pooling_reduces_high_frequency_energy() {
        let s = Mts::from_dims(vec![(0..64).map(|t| if t % 2 == 0 { 1.0 } else { -1.0 }).collect()]);
        let out = Pooling { window: 3 }.transform(&s, &mut seeded(11));
        let energy = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        assert!(energy(out.dim(0)) < 0.3 * energy(s.dim(0)));
    }

    #[test]
    fn magnitude_warp_stays_near_original() {
        let s = wavy();
        let out = MagnitudeWarp::default().transform(&s, &mut seeded(12));
        assert_eq!(out.shape(), s.shape());
        for t in 0..s.len() {
            let (a, b) = (s.value(0, t), out.value(0, t));
            assert!((a - b).abs() <= 0.9 * a.abs() + 1e-9, "t={t}: {a} vs {b}");
        }
    }

    #[test]
    fn time_warp_preserves_endpoints_approximately() {
        let s = Mts::from_dims(vec![(0..40).map(|v| v as f64).collect()]);
        let out = TimeWarp::default().transform(&s, &mut seeded(13));
        assert_eq!(out.len(), 40);
        assert!((out.value(0, 0) - 0.0).abs() < 2.0);
        assert!((out.value(0, 39) - 39.0).abs() < 2.0);
        // Monotone input stays monotone under a monotone warp.
        for t in 1..40 {
            assert!(out.value(0, t) >= out.value(0, t - 1) - 1e-6);
        }
    }

    #[test]
    fn window_warp_keeps_shape() {
        let s = wavy();
        let out = WindowWarp::default().transform(&s, &mut seeded(14));
        assert_eq!(out.shape(), s.shape());
        assert_ne!(out, s);
    }

    #[test]
    fn guided_warp_needs_two_members() {
        let mut ds = Dataset::empty(1);
        ds.push(wavy(), 0);
        let err = GuidedWarp::default().synthesize(&ds, 0, 1, &mut seeded(15));
        assert!(err.is_err());
    }

    #[test]
    fn guided_warp_produces_class_shaped_series() {
        let mut ds = Dataset::empty(1);
        for k in 0..4 {
            let shift = k as f64 * 0.3;
            ds.push(
                Mts::from_dims(vec![(0..32).map(|t| (t as f64 * 0.4 + shift).sin()).collect()]),
                0,
            );
        }
        let out = GuidedWarp::default().synthesize(&ds, 0, 3, &mut seeded(16)).unwrap();
        assert_eq!(out.len(), 3);
        for s in &out {
            assert_eq!(s.shape(), (1, 32));
            // Result stays in the amplitude range of the class.
            assert!(s.dim(0).iter().all(|v| v.abs() <= 1.2));
        }
    }

    #[test]
    fn transform_augmenter_blanket_impl_synthesizes() {
        let mut ds = Dataset::empty(2);
        for i in 0..3 {
            ds.push(Mts::constant(1, 8, i as f64), 0);
        }
        ds.push(Mts::constant(1, 8, 9.0), 1);
        let out = NoiseInjection::level(1.0).synthesize(&ds, 1, 4, &mut seeded(17)).unwrap();
        assert_eq!(out.len(), 4);
        // Constant series has zero std → noise level 1 adds nothing.
        assert!(out.iter().all(|s| s.value(0, 0) == 9.0));
    }
}
