//! Basic augmentation techniques: time-domain and frequency-domain
//! transformations (the left branch of the paper's Figure 1 taxonomy;
//! oversampling and decomposition live in sibling modules).

pub mod frequency;
pub mod time;
