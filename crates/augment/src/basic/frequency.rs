//! Frequency-domain augmentation: amplitude/phase perturbation of the
//! Fourier spectrum, SpecAugment-style spectrogram masking, and
//! EMDA-style spectral mixing.
//!
//! All techniques impute missing values first (a spectrum of a series
//! with holes is undefined) and preserve real-valuedness by perturbing
//! conjugate-symmetric bin pairs together.

use crate::{Augmenter, SeriesTransform};
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::preprocess::impute_linear;
use tsda_core::rng::normal;
use tsda_core::{Dataset, Label, Mts, TsdaError};
use tsda_signal::fft::{fft_real, ifft_real, Complex};
use tsda_signal::stft::{istft, stft};
use tsda_signal::window::WindowKind;

/// Perturb one dimension's spectrum and resynthesise, keeping conjugate
/// symmetry so the output stays real.
fn perturb_spectrum(
    signal: &[f64],
    rng: &mut StdRng,
    mut f: impl FnMut(f64, f64, &mut StdRng) -> (f64, f64),
) -> Vec<f64> {
    let n = signal.len();
    let mut spec = fft_real(signal);
    let half = n / 2;
    for k in 1..=half {
        let mirror = n - k;
        if mirror <= k {
            // Nyquist (even n) or centre: keep real.
            if mirror == k {
                let (mag, _) = f(spec[k].abs(), 0.0, rng);
                spec[k] = Complex::real(mag * spec[k].re.signum());
            }
            continue;
        }
        let (mag, phase) = (spec[k].abs(), spec[k].arg());
        let (m2, p2) = f(mag, phase, rng);
        spec[k] = Complex::from_polar(m2, p2);
        spec[mirror] = spec[k].conj();
    }
    ifft_real(&spec)
}

/// Amplitude perturbation: each frequency bin's magnitude is scaled by
/// `1 + N(0, σ²)` (clamped at 0), leaving phase untouched.
#[derive(Debug, Clone, Copy)]
pub struct AmplitudePerturb {
    /// Std of the relative magnitude perturbation.
    pub sigma: f64,
}

impl Default for AmplitudePerturb {
    fn default() -> Self {
        Self { sigma: 0.2 }
    }
}

impl SeriesTransform for AmplitudePerturb {
    fn name(&self) -> &'static str {
        "amplitude_perturb"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let imputed = impute_linear(series);
        let dims: Vec<Vec<f64>> = (0..series.n_dims())
            .map(|m| {
                perturb_spectrum(imputed.dim(m), rng, |mag, phase, rng| {
                    ((mag * (1.0 + normal(rng, 0.0, self.sigma))).max(0.0), phase)
                })
            })
            .collect();
        Mts::from_dims(dims)
    }
}

/// Phase perturbation: adds `N(0, σ²)` radians to every bin's phase,
/// preserving the magnitude spectrum (and therefore the signal's power
/// distribution over frequencies).
#[derive(Debug, Clone, Copy)]
pub struct PhasePerturb {
    /// Phase noise std in radians.
    pub sigma: f64,
}

impl Default for PhasePerturb {
    fn default() -> Self {
        Self { sigma: 0.3 }
    }
}

impl SeriesTransform for PhasePerturb {
    fn name(&self) -> &'static str {
        "phase_perturb"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let imputed = impute_linear(series);
        let dims: Vec<Vec<f64>> = (0..series.n_dims())
            .map(|m| {
                perturb_spectrum(imputed.dim(m), rng, |mag, phase, rng| {
                    (mag, phase + normal(rng, 0.0, self.sigma))
                })
            })
            .collect();
        Mts::from_dims(dims)
    }
}

/// SpecAugment-style masking (Park et al. 2019): compute an STFT, zero a
/// random frequency band and a random time stripe, resynthesise.
#[derive(Debug, Clone, Copy)]
pub struct SpecAugmentMask {
    /// Fraction of frequency bins masked.
    pub freq_fraction: f64,
    /// Fraction of time frames masked.
    pub time_fraction: f64,
    /// STFT frame length (clamped to the series length).
    pub frame_len: usize,
}

impl Default for SpecAugmentMask {
    fn default() -> Self {
        Self { freq_fraction: 0.15, time_fraction: 0.1, frame_len: 32 }
    }
}

impl SeriesTransform for SpecAugmentMask {
    fn name(&self) -> &'static str {
        "specaugment"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let imputed = impute_linear(series);
        let t = series.len();
        let frame = self.frame_len.min(t.max(4)).max(4);
        let hop = (frame / 2).max(1);
        let dims: Vec<Vec<f64>> = (0..series.n_dims())
            .map(|m| {
                let mut spec = stft(imputed.dim(m), frame, hop, WindowKind::Hann);
                let n_frames = spec.n_frames();
                let half = frame / 2;
                // Frequency band mask (mirror bins zeroed together).
                let f_w = ((half as f64 * self.freq_fraction) as usize).max(1);
                let f_start = rng.gen_range(1..=(half.saturating_sub(f_w)).max(1));
                // Time stripe mask.
                let t_w = ((n_frames as f64 * self.time_fraction) as usize).max(1).min(n_frames);
                let t_start = rng.gen_range(0..=n_frames - t_w);
                for (fi, frame_spec) in spec.frames.iter_mut().enumerate() {
                    for k in f_start..(f_start + f_w).min(half + 1) {
                        frame_spec[k] = Complex::default();
                        if k != 0 && frame > k {
                            frame_spec[frame - k] = Complex::default();
                        }
                    }
                    if fi >= t_start && fi < t_start + t_w {
                        for v in frame_spec.iter_mut() {
                            *v = Complex::default();
                        }
                    }
                }
                istft(&spec)
            })
            .collect();
        Mts::from_dims(dims)
    }
}

/// EMDA-style spectral mixing (Takahashi et al. 2016): average the
/// magnitude spectra of two same-class series with a random weight,
/// keeping the first series' phase. Needs class context, so it is a
/// direct [`Augmenter`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EmdaMix;

impl Augmenter for EmdaMix {
    fn name(&self) -> &'static str {
        "emda_mix"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let members = ds.indices_of_class(class);
        if members.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "EMDA needs ≥2 members in class {class}"
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let a = members[rng.gen_range(0..members.len())];
            let mut b = members[rng.gen_range(0..members.len())];
            while b == a && members.len() > 1 {
                b = members[rng.gen_range(0..members.len())];
            }
            let sa = impute_linear(&ds.series()[a]);
            let sb = impute_linear(&ds.series()[b]);
            let w: f64 = rng.gen_range(0.3..0.7);
            let dims: Vec<Vec<f64>> = (0..sa.n_dims())
                .map(|m| {
                    let spec_a = fft_real(sa.dim(m));
                    let spec_b = fft_real(sb.dim(m));
                    let mixed: Vec<Complex> = spec_a
                        .iter()
                        .zip(&spec_b)
                        .map(|(ca, cb)| {
                            let mag = w * ca.abs() + (1.0 - w) * cb.abs();
                            Complex::from_polar(mag, ca.arg())
                        })
                        .collect();
                    ifft_real(&mixed)
                })
                .collect();
            out.push(Mts::from_dims(dims));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::seeded;

    fn tone() -> Mts {
        Mts::from_dims(vec![(0..64)
            .map(|t| (std::f64::consts::TAU * 5.0 * t as f64 / 64.0).sin())
            .collect()])
    }

    fn dominant_bin(x: &[f64]) -> usize {
        let spec = fft_real(x);
        (1..x.len() / 2)
            .max_by(|&a, &b| spec[a].abs().partial_cmp(&spec[b].abs()).unwrap())
            .unwrap()
    }

    #[test]
    fn amplitude_perturb_keeps_dominant_frequency() {
        let s = tone();
        let out = AmplitudePerturb::default().transform(&s, &mut seeded(1));
        assert_eq!(dominant_bin(out.dim(0)), 5);
        assert_ne!(out, s);
    }

    #[test]
    fn amplitude_perturb_output_is_real_and_finite() {
        let s = tone();
        let out = AmplitudePerturb { sigma: 0.5 }.transform(&s, &mut seeded(2));
        assert!(out.dim(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn phase_perturb_preserves_power_spectrum() {
        let s = tone();
        let out = PhasePerturb { sigma: 0.8 }.transform(&s, &mut seeded(3));
        let pa: Vec<f64> = fft_real(s.dim(0)).iter().map(|c| c.abs()).collect();
        let pb: Vec<f64> = fft_real(out.dim(0)).iter().map(|c| c.abs()).collect();
        for (a, b) in pa.iter().zip(&pb) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a), "{a} vs {b}");
        }
        assert_ne!(out, s);
    }

    #[test]
    fn specaugment_removes_energy() {
        let s = tone();
        let out = SpecAugmentMask::default().transform(&s, &mut seeded(4));
        let energy = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        assert!(energy(out.dim(0)) < energy(s.dim(0)) + 1e-9);
        assert_eq!(out.len(), s.len());
    }

    #[test]
    fn specaugment_handles_short_series() {
        let s = Mts::from_dims(vec![vec![1.0, -1.0, 0.5, 0.3, 0.9, -0.4]]);
        let out = SpecAugmentMask::default().transform(&s, &mut seeded(5));
        assert_eq!(out.len(), 6);
        assert!(out.dim(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn emda_mixes_spectra_of_two_members() {
        let mut ds = Dataset::empty(1);
        ds.push(tone(), 0);
        // Second member: same tone, different amplitude.
        let mut s2 = tone();
        for v in s2.dim_mut(0) {
            *v *= 3.0;
        }
        ds.push(s2, 0);
        let out = EmdaMix.synthesize(&ds, 0, 2, &mut seeded(6)).unwrap();
        for s in &out {
            let amp = s.dim(0).iter().fold(0.0f64, |m, v| m.max(v.abs()));
            // Mixed amplitude lies strictly between the two parents.
            assert!(amp > 1.05 && amp < 2.95, "{amp}");
            assert_eq!(dominant_bin(s.dim(0)), 5);
        }
    }

    #[test]
    fn emda_rejects_singleton_class() {
        let mut ds = Dataset::empty(1);
        ds.push(tone(), 0);
        assert!(EmdaMix.synthesize(&ds, 0, 1, &mut seeded(7)).is_err());
    }

    #[test]
    fn frequency_transforms_handle_missing_values() {
        let mut s = tone();
        s.set(0, 10, f64::NAN);
        s.set(0, 11, f64::NAN);
        let out = AmplitudePerturb::default().transform(&s, &mut seeded(8));
        assert!(out.dim(0).iter().all(|v| v.is_finite()));
    }
}
