//! Decomposition-based augmentation: STL-style residual bootstrapping
//! and EMD component recombination (the taxonomy's decomposition branch).

use crate::SeriesTransform;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::preprocess::impute_linear;
use tsda_core::rng::normal;
use tsda_core::Mts;
use tsda_signal::decompose::decompose_additive;
use tsda_signal::emd::{emd, EmdOptions};

/// STL bootstrap: decompose each dimension into trend + seasonal +
/// residual, resample the residual with a moving-block bootstrap, and
/// recombine. Keeps trend and seasonality (the label-bearing structure)
/// intact while renewing the stochastic component — the RobustTAD recipe.
#[derive(Debug, Clone, Copy)]
pub struct StlBootstrap {
    /// Trend moving-average window as a fraction of the length.
    pub trend_fraction: f64,
    /// Seasonal period; `None` disables the seasonal component.
    pub period: Option<usize>,
    /// Bootstrap block length.
    pub block_len: usize,
}

impl Default for StlBootstrap {
    fn default() -> Self {
        Self { trend_fraction: 0.15, period: None, block_len: 8 }
    }
}

impl SeriesTransform for StlBootstrap {
    fn name(&self) -> &'static str {
        "stl_bootstrap"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let imputed = impute_linear(series);
        let t = series.len();
        let window = ((t as f64 * self.trend_fraction) as usize).max(3) | 1;
        let block = self.block_len.clamp(1, t);
        let dims: Vec<Vec<f64>> = (0..series.n_dims())
            .map(|m| {
                let d = decompose_additive(imputed.dim(m), window, self.period);
                // Moving-block bootstrap of the residual.
                let mut boot = Vec::with_capacity(t);
                while boot.len() < t {
                    let start = rng.gen_range(0..=t - block);
                    boot.extend_from_slice(&d.residual[start..start + block]);
                }
                boot.truncate(t);
                d.trend
                    .iter()
                    .zip(&d.seasonal)
                    .zip(&boot)
                    .map(|((tr, se), re)| tr + se + re)
                    .collect()
            })
            .collect();
        Mts::from_dims(dims)
    }
}

/// EMD recombination: decompose each dimension into intrinsic mode
/// functions and rebuild with per-IMF weights drawn from `N(1, σ²)`,
/// gently re-balancing the oscillatory components (Nam et al. 2020).
#[derive(Debug, Clone, Copy)]
pub struct EmdRecombine {
    /// Std of the per-IMF weight perturbation around 1.
    pub sigma: f64,
    /// Maximum IMFs to extract per dimension.
    pub max_imfs: usize,
}

impl Default for EmdRecombine {
    fn default() -> Self {
        Self { sigma: 0.2, max_imfs: 6 }
    }
}

impl SeriesTransform for EmdRecombine {
    fn name(&self) -> &'static str {
        "emd_recombine"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let imputed = impute_linear(series);
        let opts = EmdOptions { max_imfs: self.max_imfs, ..EmdOptions::default() };
        let dims: Vec<Vec<f64>> = (0..series.n_dims())
            .map(|m| {
                let d = emd(imputed.dim(m), opts);
                if d.imfs.is_empty() {
                    return imputed.dim(m).to_vec();
                }
                let weights: Vec<f64> = (0..d.imfs.len())
                    .map(|_| 1.0 + normal(rng, 0.0, self.sigma))
                    .collect();
                d.reconstruct_weighted(&weights)
            })
            .collect();
        Mts::from_dims(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::seeded;

    fn trended() -> Mts {
        Mts::from_dims(vec![(0..64)
            .map(|t| 0.2 * t as f64 + (t as f64 * 0.8).sin() * 0.5)
            .collect()])
    }

    #[test]
    fn stl_bootstrap_preserves_trend() {
        let s = trended();
        let out = StlBootstrap::default().transform(&s, &mut seeded(1));
        assert_eq!(out.shape(), s.shape());
        // The trend dominates: start and end levels must be preserved
        // approximately.
        let first_third: f64 = out.dim(0)[..20].iter().sum::<f64>() / 20.0;
        let last_third: f64 = out.dim(0)[44..].iter().sum::<f64>() / 20.0;
        assert!(last_third - first_third > 5.0, "trend lost: {first_third} -> {last_third}");
    }

    #[test]
    fn stl_bootstrap_changes_the_residual() {
        let s = trended();
        let out = StlBootstrap::default().transform(&s, &mut seeded(2));
        assert_ne!(out, s);
    }

    #[test]
    fn emd_recombine_keeps_shape_and_changes_values() {
        let s = trended();
        let out = EmdRecombine::default().transform(&s, &mut seeded(3));
        assert_eq!(out.shape(), s.shape());
        assert!(out.dim(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn emd_recombine_on_monotone_is_identity() {
        // Monotone series produce no IMFs, so the transform returns the
        // (imputed) original.
        let s = Mts::from_dims(vec![(0..32).map(|v| v as f64).collect()]);
        let out = EmdRecombine::default().transform(&s, &mut seeded(4));
        for (a, b) in s.dim(0).iter().zip(out.dim(0)) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_sigma_emd_is_near_identity() {
        let s = trended();
        let out = EmdRecombine { sigma: 0.0, max_imfs: 6 }.transform(&s, &mut seeded(5));
        for (a, b) in s.dim(0).iter().zip(out.dim(0)) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}
