//! Variational auto-encoder augmentation (the taxonomy's neural-network
//! generative branch alongside TimeGAN; cf. Fu, Kirchbuchner & Kuijper
//! 2020 and the feature-space augmentation of DeVries & Taylor 2017).
//!
//! A small MLP VAE on the flattened, standardised series: encoder →
//! (μ, log σ²) → reparameterised latent → decoder. Trained per class
//! with the usual ELBO (reconstruction MSE + KL to the unit Gaussian);
//! new series are decoded from latent samples `z ~ N(0, I)`.

use crate::Augmenter;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::preprocess::impute_linear;
use tsda_core::rng::normal;
use tsda_core::{Dataset, Label, Mts, TsdaError};
use tsda_neuro::layers::{Activation, Dense, Layer, Sequential};
use tsda_neuro::optim::Adam;
use tsda_neuro::tensor::Tensor;

/// VAE hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct VaeConfig {
    /// Latent dimensionality.
    pub latent: usize,
    /// Hidden width of encoder/decoder.
    pub hidden: usize,
    /// Optimisation steps.
    pub train_steps: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight of the KL term (β-VAE style; 1.0 = standard ELBO).
    pub beta: f32,
}

impl Default for VaeConfig {
    fn default() -> Self {
        Self { latent: 8, hidden: 64, train_steps: 400, lr: 2e-3, beta: 1.0 }
    }
}

/// The VAE augmenter.
#[derive(Debug, Clone, Copy, Default)]
pub struct VaeAugmenter {
    /// Hyper-parameters.
    pub config: VaeConfig,
}

impl VaeAugmenter {
    /// New VAE augmenter with explicit hyper-parameters.
    pub fn new(config: VaeConfig) -> Self {
        Self { config }
    }
}

impl Augmenter for VaeAugmenter {
    fn name(&self) -> &'static str {
        "vae"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let members = ds.indices_of_class(class);
        if members.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "VAE needs ≥2 members in class {class}"
            )));
        }
        let dims = ds.n_dims();
        let len = ds.series_len();
        let d = dims * len;
        let cfg = self.config;
        let z_dim = cfg.latent.min(d);

        // Standardise per feature.
        let flat: Vec<Vec<f64>> = members
            .iter()
            .map(|&i| impute_linear(&ds.series()[i]).into_flat())
            .collect();
        let mut mean = vec![0.0; d];
        for v in &flat {
            for j in 0..d {
                mean[j] += v[j] / flat.len() as f64;
            }
        }
        let mut std = vec![0.0; d];
        for v in &flat {
            for j in 0..d {
                let diff = v[j] - mean[j];
                std[j] += diff * diff / flat.len() as f64;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-6);
        }
        let data: Vec<Vec<f32>> = flat
            .iter()
            .map(|v| {
                v.iter()
                    .enumerate()
                    .map(|(j, &x)| ((x - mean[j]) / std[j]) as f32)
                    .collect()
            })
            .collect();

        // Encoder trunk → (μ ‖ log σ²) head; decoder mirrors it.
        let mut encoder = Sequential::new(vec![
            Box::new(Dense::new(d, cfg.hidden, rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(cfg.hidden, 2 * z_dim, rng)),
        ]);
        let mut decoder = Sequential::new(vec![
            Box::new(Dense::new(z_dim, cfg.hidden, rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(cfg.hidden, d, rng)),
        ]);
        let mut opt_e = Adam::new(cfg.lr).with_clip(5.0);
        let mut opt_d = Adam::new(cfg.lr).with_clip(5.0);
        let batch = 16.min(data.len()).max(1);

        for _ in 0..cfg.train_steps {
            // Mini-batch.
            let mut xin = Vec::with_capacity(batch * d);
            for _ in 0..batch {
                xin.extend_from_slice(&data[rng.gen_range(0..data.len())]);
            }
            let x = Tensor::from_flat(&[batch, d], xin);
            let enc = encoder.forward(&x, true); // [batch, 2z]
            // Reparameterise: z = μ + σ·ε.
            let mut z = Tensor::zeros(&[batch, z_dim]);
            let mut eps_cache = vec![0.0f32; batch * z_dim];
            for b in 0..batch {
                for k in 0..z_dim {
                    let mu = enc.at2(b, k);
                    let logvar = enc.at2(b, z_dim + k).clamp(-8.0, 8.0);
                    let eps = normal(rng, 0.0, 1.0) as f32;
                    eps_cache[b * z_dim + k] = eps;
                    *z.at2_mut(b, k) = mu + (0.5 * logvar).exp() * eps;
                }
            }
            let recon = decoder.forward(&z, true);
            // Reconstruction gradient (MSE).
            let n_el = (batch * d) as f32;
            let mut g_recon = recon.clone();
            for (g, &t) in g_recon.data_mut().iter_mut().zip(x.data()) {
                *g = 2.0 * (*g - t) / n_el;
            }
            decoder.zero_grad();
            encoder.zero_grad();
            let g_z = decoder.backward(&g_recon);
            // Gradient into the encoder head: combine the pathwise
            // reconstruction term with the analytic KL term
            // KL = ½ Σ (μ² + e^{logvar} − logvar − 1), averaged per batch.
            let kl_scale = cfg.beta / (batch * z_dim) as f32;
            let mut g_enc = Tensor::zeros(&[batch, 2 * z_dim]);
            for b in 0..batch {
                for k in 0..z_dim {
                    let mu = enc.at2(b, k);
                    let logvar = enc.at2(b, z_dim + k).clamp(-8.0, 8.0);
                    let sigma = (0.5 * logvar).exp();
                    let eps = eps_cache[b * z_dim + k];
                    let gz = g_z.at2(b, k);
                    // dz/dμ = 1; dz/dlogvar = ½σε.
                    // dKL/dμ = μ, dKL/dlogvar = ½(e^{logvar} − 1).
                    *g_enc.at2_mut(b, k) = gz + kl_scale * mu;
                    *g_enc.at2_mut(b, z_dim + k) =
                        gz * 0.5 * sigma * eps + kl_scale * 0.5 * (logvar.exp() - 1.0);
                }
            }
            let _ = encoder.backward(&g_enc);
            opt_e.step(&mut encoder);
            opt_d.step(&mut decoder);
        }

        // Decode fresh unit-Gaussian latents.
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let z: Vec<f32> = (0..z_dim).map(|_| normal(rng, 0.0, 1.0) as f32).collect();
            let recon = decoder.forward(&Tensor::from_flat(&[1, z_dim], z), false);
            let restored: Vec<f64> = recon
                .data()
                .iter()
                .enumerate()
                .map(|(j, &v)| f64::from(v) * std[j] + mean[j])
                .collect();
            out.push(Mts::from_flat(dims, len, restored));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::seeded;

    fn pattern_class() -> Dataset {
        let mut ds = Dataset::empty(1);
        let mut rng = seeded(1);
        let pattern: Vec<f64> = (0..16).map(|t| (t as f64 * 0.5).sin() * 3.0).collect();
        for _ in 0..16 {
            ds.push(
                Mts::from_dims(vec![pattern
                    .iter()
                    .map(|&v| v + normal(&mut rng, 0.0, 0.3))
                    .collect()]),
                0,
            );
        }
        ds
    }

    #[test]
    fn vae_generates_class_correlated_samples() {
        let ds = pattern_class();
        let vae = VaeAugmenter::default();
        let out = vae.synthesize(&ds, 0, 5, &mut seeded(2)).unwrap();
        let pattern: Vec<f64> = (0..16).map(|t| (t as f64 * 0.5).sin() * 3.0).collect();
        let norm_p: f64 = pattern.iter().map(|v| v * v).sum::<f64>();
        for s in &out {
            assert_eq!(s.shape(), (1, 16));
            let corr: f64 = s.dim(0).iter().zip(&pattern).map(|(a, b)| a * b).sum();
            assert!(corr > 0.3 * norm_p, "uncorrelated with class: {corr} vs {norm_p}");
        }
    }

    #[test]
    fn vae_is_deterministic_given_seed() {
        let ds = pattern_class();
        let vae = VaeAugmenter::default();
        let a = vae.synthesize(&ds, 0, 2, &mut seeded(3)).unwrap();
        let b = vae.synthesize(&ds, 0, 2, &mut seeded(3)).unwrap();
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn vae_rejects_singleton_class() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::constant(1, 8, 0.0), 0);
        assert!(VaeAugmenter::default().synthesize(&ds, 0, 1, &mut seeded(4)).is_err());
    }
}
