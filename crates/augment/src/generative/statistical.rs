//! Statistical generative models: Gaussian kernel density sampling,
//! autoregressive residual models (Yule-Walker), maximum-entropy
//! bootstrap (meboot), and the moving-block bootstrap.
//!
//! These approximate the minority-class distribution directly from
//! sample statistics — the taxonomy's "statistical" generative branch.

use crate::Augmenter;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::preprocess::impute_linear;
use tsda_core::rng::normal;
use tsda_core::{Dataset, Label, Mts, TsdaError};

/// Per-class mean curve `[dim][t]` and the per-member residuals.
fn class_mean_and_residuals(
    ds: &Dataset,
    class: Label,
) -> Result<(Vec<Vec<f64>>, Vec<Mts>), TsdaError> {
    let members = ds.indices_of_class(class);
    if members.is_empty() {
        return Err(TsdaError::InvalidParameter(format!("class {class} empty")));
    }
    let dims = ds.n_dims();
    let len = ds.series_len();
    let mut mean = vec![vec![0.0; len]; dims];
    let imputed: Vec<Mts> = members.iter().map(|&i| impute_linear(&ds.series()[i])).collect();
    for s in &imputed {
        for (m, mean_row) in mean.iter_mut().enumerate() {
            for (t, &v) in s.dim(m).iter().enumerate() {
                mean_row[t] += v;
            }
        }
    }
    for row in &mut mean {
        for v in row.iter_mut() {
            *v /= imputed.len() as f64;
        }
    }
    let residuals: Vec<Mts> = imputed
        .iter()
        .map(|s| {
            let dims_out: Vec<Vec<f64>> = (0..dims)
                .map(|m| s.dim(m).iter().zip(&mean[m]).map(|(v, mu)| v - mu).collect())
                .collect();
            Mts::from_dims(dims_out)
        })
        .collect();
    Ok((mean, residuals))
}

/// Gaussian kernel density sampler: a new sample is a random class member
/// plus Gaussian noise with bandwidth `h = factor · n^{-1/5} · std`
/// (Silverman-style rule per position).
#[derive(Debug, Clone, Copy)]
pub struct KernelDensitySampler {
    /// Multiplier on the rule-of-thumb bandwidth.
    pub bandwidth_factor: f64,
}

impl Default for KernelDensitySampler {
    fn default() -> Self {
        Self { bandwidth_factor: 1.0 }
    }
}

impl Augmenter for KernelDensitySampler {
    fn name(&self) -> &'static str {
        "kde"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let members = ds.indices_of_class(class);
        if members.is_empty() {
            return Err(TsdaError::InvalidParameter(format!("class {class} empty")));
        }
        let n = members.len() as f64;
        let imputed: Vec<Mts> = members.iter().map(|&i| impute_linear(&ds.series()[i])).collect();
        // Per-dimension std across the class (pooled over time).
        let dims = ds.n_dims();
        let stds: Vec<f64> = (0..dims)
            .map(|m| {
                let vals: Vec<f64> =
                    imputed.iter().flat_map(|s| s.dim(m).iter().copied()).collect();
                let mean = tsda_core::math::sum_stable(vals.iter().copied()) / vals.len() as f64;
                (tsda_core::math::sum_stable(vals.iter().map(|v| (v - mean) * (v - mean)))
                    / vals.len() as f64)
                    .sqrt()
            })
            .collect();
        let h = self.bandwidth_factor * n.powf(-0.2);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let base = &imputed[rng.gen_range(0..imputed.len())];
            let mut s = base.clone();
            for (m, &std_m) in stds.iter().enumerate().take(dims) {
                let bw = h * std_m;
                for v in s.dim_mut(m) {
                    *v += normal(rng, 0.0, bw);
                }
            }
            out.push(s);
        }
        Ok(out)
    }
}

/// Fit AR(p) coefficients to a sequence with Yule-Walker equations
/// (Levinson-Durbin recursion). Returns `(coefficients, innovation_var)`.
pub fn yule_walker(x: &[f64], order: usize) -> (Vec<f64>, f64) {
    let n = x.len();
    let order = order.min(n.saturating_sub(1));
    if order == 0 || n < 2 {
        let var = if n > 0 {
            let m = tsda_core::math::sum_stable(x.iter().copied()) / n as f64;
            tsda_core::math::sum_stable(x.iter().map(|v| (v - m) * (v - m))) / n as f64
        } else {
            0.0
        };
        return (Vec::new(), var);
    }
    let mean = tsda_core::math::sum_stable(x.iter().copied()) / n as f64;
    let autocov = |lag: usize| -> f64 {
        tsda_core::math::sum_stable((0..n - lag).map(|t| (x[t] - mean) * (x[t + lag] - mean)))
            / n as f64
    };
    let r: Vec<f64> = (0..=order).map(autocov).collect();
    if r[0] <= 1e-12 {
        return (vec![0.0; order], 0.0);
    }
    // Levinson-Durbin.
    let mut a = vec![0.0; order];
    let mut e = r[0];
    for k in 0..order {
        let mut acc = r[k + 1];
        for j in 0..k {
            acc -= a[j] * r[k - j];
        }
        let kappa = acc / e;
        a[k] = kappa;
        for j in 0..k / 2 + (k % 2) {
            let tmp = a[j] - kappa * a[k - 1 - j];
            a[k - 1 - j] -= kappa * a[j];
            a[j] = tmp;
        }
        e *= 1.0 - kappa * kappa;
        if e <= 0.0 {
            e = 1e-12;
        }
    }
    (a, e)
}

/// AR residual sampler: new sample = class mean curve + AR(p) simulation
/// whose coefficients are fit on the class's pooled residuals per
/// dimension (Yule-Walker). Captures the within-class autocorrelation
/// that white-noise augmentation destroys.
#[derive(Debug, Clone, Copy)]
pub struct ArResidualSampler {
    /// Autoregressive order.
    pub order: usize,
}

impl Default for ArResidualSampler {
    fn default() -> Self {
        Self { order: 3 }
    }
}

impl Augmenter for ArResidualSampler {
    fn name(&self) -> &'static str {
        "ar_residual"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let (mean, residuals) = class_mean_and_residuals(ds, class)?;
        let dims = ds.n_dims();
        let len = ds.series_len();
        // Fit one AR model per dimension on concatenated residuals.
        let models: Vec<(Vec<f64>, f64)> = (0..dims)
            .map(|m| {
                let pooled: Vec<f64> =
                    residuals.iter().flat_map(|r| r.dim(m).iter().copied()).collect();
                yule_walker(&pooled, self.order)
            })
            .collect();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let dims_out: Vec<Vec<f64>> = (0..dims)
                .map(|m| {
                    let (coef, var) = &models[m];
                    let std = var.sqrt();
                    let mut sim = Vec::with_capacity(len);
                    for t in 0..len {
                        let sim_ref = &sim;
                        let ar = tsda_core::math::sum_stable(
                            coef.iter()
                                .enumerate()
                                .filter(|&(j, _)| t > j)
                                .map(move |(j, &c)| c * sim_ref[t - 1 - j]),
                        );
                        sim.push(normal(rng, 0.0, std) + ar);
                    }
                    sim.iter().zip(&mean[m]).map(|(r, mu)| mu + r).collect()
                })
                .collect();
            out.push(Mts::from_dims(dims_out));
        }
        Ok(out)
    }
}

/// Maximum-entropy bootstrap (Vinod 2009, meboot): each new series keeps
/// the original's *rank order over time* but redraws the values from a
/// smoothed empirical distribution, producing replicates that stay close
/// to the original trajectory without repeating it.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxEntropyBootstrap;

impl crate::SeriesTransform for MaxEntropyBootstrap {
    fn name(&self) -> &'static str {
        "meboot"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let imputed = impute_linear(series);
        let t = series.len();
        let dims: Vec<Vec<f64>> = (0..series.n_dims())
            .map(|m| {
                let x = imputed.dim(m);
                // Order statistics and the original ranks.
                let mut order: Vec<usize> = (0..t).collect();
                order.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
                let sorted: Vec<f64> = order.iter().map(|&i| x[i]).collect();
                // rank[i] = position of x[i] in the sorted sequence.
                let mut rank = vec![0usize; t];
                for (pos, &i) in order.iter().enumerate() {
                    rank[i] = pos;
                }
                // Draw t uniform quantiles, sort them, and map through the
                // (linearly interpolated) empirical quantile function; the
                // j-th smallest draw replaces the j-th order statistic.
                let mut us: Vec<f64> = (0..t).map(|_| rng.gen::<f64>()).collect();
                us.sort_by(|a, b| a.total_cmp(b));
                let new_sorted: Vec<f64> = us
                    .iter()
                    .map(|&u| {
                        let pos = u * (t - 1) as f64;
                        let lo = pos.floor() as usize;
                        let hi = (lo + 1).min(t - 1);
                        let frac = pos - lo as f64;
                        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
                    })
                    .collect();
                (0..t).map(|i| new_sorted[rank[i]]).collect()
            })
            .collect();
        Mts::from_dims(dims)
    }
}

/// Moving-block bootstrap of the class residuals around the class mean:
/// preserves short-range dependence inside each block.
#[derive(Debug, Clone, Copy)]
pub struct BlockBootstrap {
    /// Bootstrap block length.
    pub block_len: usize,
}

impl Default for BlockBootstrap {
    fn default() -> Self {
        Self { block_len: 8 }
    }
}

impl Augmenter for BlockBootstrap {
    fn name(&self) -> &'static str {
        "block_bootstrap"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let (mean, residuals) = class_mean_and_residuals(ds, class)?;
        let dims = ds.n_dims();
        let len = ds.series_len();
        let block = self.block_len.clamp(1, len);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let dims_out: Vec<Vec<f64>> = (0..dims)
                .map(|m| {
                    let mut boot = Vec::with_capacity(len);
                    while boot.len() < len {
                        let donor = &residuals[rng.gen_range(0..residuals.len())];
                        let start = rng.gen_range(0..=len - block);
                        boot.extend_from_slice(&donor.dim(m)[start..start + block]);
                    }
                    boot.truncate(len);
                    boot.iter().zip(&mean[m]).map(|(r, mu)| mu + r).collect()
                })
                .collect();
            out.push(Mts::from_dims(dims_out));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeriesTransform;
    use tsda_core::rng::seeded;

    fn class_ds() -> Dataset {
        let mut ds = Dataset::empty(1);
        let mut rng = seeded(99);
        for _ in 0..6 {
            let dims: Vec<Vec<f64>> = (0..2)
                .map(|d| {
                    (0..40)
                        .map(|t| (t as f64 * 0.3 + d as f64).sin() + normal(&mut rng, 0.0, 0.2))
                        .collect()
                })
                .collect();
            ds.push(Mts::from_dims(dims), 0);
        }
        ds
    }

    #[test]
    fn kde_samples_stay_near_the_class() {
        let ds = class_ds();
        let out = KernelDensitySampler::default()
            .synthesize(&ds, 0, 5, &mut seeded(1))
            .unwrap();
        for s in &out {
            assert_eq!(s.shape(), (2, 40));
            // Samples remain within a few stds of the sine band.
            assert!(s.dim(0).iter().all(|v| v.abs() < 3.0));
        }
    }

    #[test]
    fn yule_walker_recovers_ar1_coefficient() {
        let phi = 0.7;
        let mut rng = seeded(2);
        let mut x = vec![0.0f64];
        for _ in 0..8000 {
            let prev = *x.last().unwrap();
            x.push(phi * prev + normal(&mut rng, 0.0, 1.0));
        }
        let (coef, var) = yule_walker(&x, 1);
        assert!((coef[0] - phi).abs() < 0.05, "{coef:?}");
        assert!((var - 1.0).abs() < 0.1, "{var}");
    }

    #[test]
    fn yule_walker_zero_order_returns_variance() {
        let (coef, var) = yule_walker(&[1.0, 3.0], 0);
        assert!(coef.is_empty());
        assert_eq!(var, 1.0);
    }

    #[test]
    fn ar_residual_sampler_matches_class_mean() {
        let ds = class_ds();
        let out = ArResidualSampler::default()
            .synthesize(&ds, 0, 20, &mut seeded(3))
            .unwrap();
        // The average of many samples approaches the class mean curve.
        let mut avg = vec![0.0; 40];
        for s in &out {
            for (t, &v) in s.dim(0).iter().enumerate() {
                avg[t] += v / out.len() as f64;
            }
        }
        let (mean, _) = class_mean_and_residuals(&ds, 0).unwrap();
        let err: f64 =
            avg.iter().zip(&mean[0]).map(|(a, b)| (a - b).abs()).sum::<f64>() / 40.0;
        assert!(err < 0.25, "{err}");
    }

    #[test]
    fn meboot_preserves_rank_order() {
        let s = Mts::from_dims(vec![vec![5.0, 1.0, 3.0, 9.0, 2.0]]);
        let out = MaxEntropyBootstrap.transform(&s, &mut seeded(4));
        let rank = |x: &[f64]| {
            let mut idx: Vec<usize> = (0..x.len()).collect();
            idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).unwrap());
            idx
        };
        assert_eq!(rank(s.dim(0)), rank(out.dim(0)));
        assert_ne!(s, out);
    }

    #[test]
    fn meboot_values_span_original_range() {
        let s = Mts::from_dims(vec![(0..50).map(|v| v as f64).collect()]);
        let out = MaxEntropyBootstrap.transform(&s, &mut seeded(5));
        let max = out.dim(0).iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = out.dim(0).iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min >= 0.0 && max <= 49.0);
        assert!(max - min > 30.0, "range collapsed: {min}..{max}");
    }

    #[test]
    fn block_bootstrap_keeps_class_level() {
        let ds = class_ds();
        let out = BlockBootstrap::default().synthesize(&ds, 0, 5, &mut seeded(6)).unwrap();
        for s in &out {
            assert_eq!(s.shape(), (2, 40));
            let m: f64 = s.dim(0).iter().sum::<f64>() / 40.0;
            assert!(m.abs() < 1.0, "level drifted: {m}");
        }
    }

    #[test]
    fn samplers_error_on_empty_class() {
        let ds = Dataset::empty(2); // class 1 declared but empty
        assert!(ArResidualSampler::default()
            .synthesize(&ds, 1, 1, &mut seeded(7))
            .is_err());
        assert!(BlockBootstrap::default()
            .synthesize(&ds, 1, 1, &mut seeded(8))
            .is_err());
    }
}
