//! Probabilistic generative models — the taxonomy branch describing time
//! series "as transformations of underlying Markov processes":
//!
//! * [`GaussianHmm`] — a hidden Markov model with diagonal-Gaussian
//!   emissions, fit by Baum-Welch and sampled ancestrally;
//! * [`AutoregressiveSampler`] — the paper's Eq. 1 factorisation
//!   `P(x) = Π P(x_t | x_{<t})` with linear-Gaussian conditionals;
//! * [`DiffusionSampler`] — a small denoising diffusion model (paper
//!   Eq. 2): a forward Markov chain adds noise, an MLP learns to reverse
//!   it, and sampling runs the learned reverse chain from pure noise.

use crate::Augmenter;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::preprocess::impute_linear;
use tsda_core::rng::normal;
use tsda_core::{Dataset, Label, Mts, TsdaError};
use tsda_neuro::layers::{Activation, Dense, Layer, Sequential};
use tsda_neuro::loss::mse_loss;
use tsda_neuro::optim::Adam;
use tsda_neuro::tensor::Tensor;

// ---------------------------------------------------------------------
// Gaussian HMM
// ---------------------------------------------------------------------

/// Hidden Markov model with diagonal-Gaussian emissions over the `M`
/// observation channels, trained per class with Baum-Welch.
#[derive(Debug, Clone, Copy)]
pub struct GaussianHmm {
    /// Number of hidden states.
    pub states: usize,
    /// Baum-Welch iterations.
    pub iterations: usize,
}

impl Default for GaussianHmm {
    fn default() -> Self {
        Self { states: 4, iterations: 12 }
    }
}

/// A fitted HMM: initial distribution, transitions, per-state
/// diagonal-Gaussian emissions.
struct HmmModel {
    pi: Vec<f64>,
    trans: Vec<Vec<f64>>,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
}

impl HmmModel {
    fn log_emission(&self, state: usize, obs: &[f64]) -> f64 {
        tsda_core::math::sum_stable(obs.iter().enumerate().map(|(d, &x)| {
            let var = self.vars[state][d].max(1e-6);
            let diff = x - self.means[state][d];
            -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var)
        }))
    }
}

/// Scaled forward-backward; returns per-step state posteriors γ and
/// pairwise transition posteriors ξ summed over time.
fn forward_backward(model: &HmmModel, obs: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let t_len = obs.len();
    let k = model.pi.len();
    // Per-step emission likelihoods, normalised per step to avoid
    // underflow on long sequences (the scaling cancels in γ and ξ).
    let mut b = vec![vec![0.0; k]; t_len];
    for (t, o) in obs.iter().enumerate() {
        let logs: Vec<f64> = (0..k).map(|s| model.log_emission(s, o)).collect();
        let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for s in 0..k {
            b[t][s] = (logs[s] - max).exp().max(1e-300);
        }
    }
    let mut alpha = vec![vec![0.0; k]; t_len];
    let mut scale = vec![0.0; t_len];
    for s in 0..k {
        alpha[0][s] = model.pi[s] * b[0][s];
    }
    scale[0] = tsda_core::math::sum_stable(alpha[0].iter().copied()).max(1e-300);
    for v in &mut alpha[0] {
        *v /= scale[0];
    }
    for t in 1..t_len {
        for s in 0..k {
            let acc = tsda_core::math::sum_stable(
                alpha[t - 1].iter().zip(&model.trans).map(|(ap, trans_row)| ap * trans_row[s]),
            );
            alpha[t][s] = acc * b[t][s];
        }
        scale[t] = tsda_core::math::sum_stable(alpha[t].iter().copied()).max(1e-300);
        for v in &mut alpha[t] {
            *v /= scale[t];
        }
    }
    let mut beta = vec![vec![1.0; k]; t_len];
    for t in (0..t_len.saturating_sub(1)).rev() {
        for s in 0..k {
            let acc = tsda_core::math::sum_stable(
                (0..k).map(|n| model.trans[s][n] * b[t + 1][n] * beta[t + 1][n]),
            );
            beta[t][s] = acc / scale[t + 1];
        }
    }
    let mut gamma = vec![vec![0.0; k]; t_len];
    for t in 0..t_len {
        for s in 0..k {
            gamma[t][s] = alpha[t][s] * beta[t][s];
        }
        let norm = tsda_core::math::sum_stable(gamma[t].iter().copied());
        for v in &mut gamma[t] {
            *v /= norm.max(1e-300);
        }
    }
    let mut xi_sum = vec![vec![0.0; k]; k];
    for t in 0..t_len.saturating_sub(1) {
        let mut local = vec![vec![0.0; k]; k];
        for s in 0..k {
            for n in 0..k {
                local[s][n] = alpha[t][s] * model.trans[s][n] * b[t + 1][n] * beta[t + 1][n];
            }
        }
        let norm = tsda_core::math::sum_stable(local.iter().flat_map(|r| r.iter().copied()));
        for s in 0..k {
            for n in 0..k {
                xi_sum[s][n] += local[s][n] / norm.max(1e-300);
            }
        }
    }
    (gamma, xi_sum)
}

impl GaussianHmm {
    fn fit(&self, sequences: &[Vec<Vec<f64>>], rng: &mut StdRng) -> HmmModel {
        let k = self.states;
        let dims = sequences[0][0].len();
        let all_obs: Vec<&Vec<f64>> = sequences.iter().flatten().collect();
        let mut global_mean = vec![0.0; dims];
        for o in &all_obs {
            for d in 0..dims {
                global_mean[d] += o[d];
            }
        }
        for v in &mut global_mean {
            *v /= all_obs.len() as f64;
        }
        let mut global_var = vec![0.0; dims];
        for o in &all_obs {
            for d in 0..dims {
                let diff = o[d] - global_mean[d];
                global_var[d] += diff * diff;
            }
        }
        for v in &mut global_var {
            *v = (*v / all_obs.len() as f64).max(1e-4);
        }
        // k-means++-style mean initialisation: spread the initial state
        // means across the observation space, otherwise Baum-Welch easily
        // collapses multiple states onto one mode.
        let mut means: Vec<Vec<f64>> = vec![all_obs[rng.gen_range(0..all_obs.len())].clone()];
        while means.len() < k {
            let d2: Vec<f64> = all_obs
                .iter()
                .map(|o| {
                    means
                        .iter()
                        .map(|m| {
                            tsda_core::math::sum_stable(
                                o.iter().zip(m).map(|(a, b)| (a - b) * (a - b)),
                            )
                        })
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = tsda_core::math::sum_stable(d2.iter().copied());
            if total <= 0.0 {
                means.push(all_obs[rng.gen_range(0..all_obs.len())].clone());
                continue;
            }
            let u: f64 = rng.gen::<f64>() * total;
            let mut acc = 0.0;
            let mut pick = all_obs.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                acc += d;
                if u <= acc {
                    pick = i;
                    break;
                }
            }
            means.push(all_obs[pick].clone());
        }
        let mut model = HmmModel {
            pi: vec![1.0 / k as f64; k],
            trans: vec![vec![1.0 / k as f64; k]; k],
            means,
            vars: vec![global_var.clone(); k],
        };
        for _ in 0..self.iterations {
            let mut pi_acc = vec![0.0; k];
            let mut trans_acc = vec![vec![0.0; k]; k];
            let mut mean_acc = vec![vec![0.0; dims]; k];
            let mut sq_acc = vec![vec![0.0; dims]; k];
            let mut weight_acc = vec![0.0; k];
            for seq in sequences {
                let (gamma, xi) = forward_backward(&model, seq);
                for s in 0..k {
                    pi_acc[s] += gamma[0][s];
                    for n in 0..k {
                        trans_acc[s][n] += xi[s][n];
                    }
                }
                for (t, o) in seq.iter().enumerate() {
                    for s in 0..k {
                        let g = gamma[t][s];
                        weight_acc[s] += g;
                        for d in 0..dims {
                            mean_acc[s][d] += g * o[d];
                            sq_acc[s][d] += g * o[d] * o[d];
                        }
                    }
                }
            }
            let pi_total: f64 = tsda_core::math::sum_stable(pi_acc.iter().copied());
            for s in 0..k {
                model.pi[s] = (pi_acc[s] / pi_total.max(1e-300)).max(1e-6);
                let row_total: f64 = tsda_core::math::sum_stable(trans_acc[s].iter().copied());
                for (tn, &ta) in model.trans[s].iter_mut().zip(&trans_acc[s]) {
                    *tn = ((ta + 1e-6) / (row_total + k as f64 * 1e-6)).max(1e-9);
                }
                let w = weight_acc[s].max(1e-300);
                for d in 0..dims {
                    model.means[s][d] = mean_acc[s][d] / w;
                    model.vars[s][d] =
                        (sq_acc[s][d] / w - model.means[s][d] * model.means[s][d]).max(1e-6);
                }
            }
        }
        model
    }

    fn sample(model: &HmmModel, len: usize, dims: usize, rng: &mut StdRng) -> Mts {
        let k = model.pi.len();
        let pick = |dist: &[f64], rng: &mut StdRng| {
            let u: f64 = rng.gen::<f64>() * tsda_core::math::sum_stable(dist.iter().copied());
            let mut acc = 0.0;
            for (i, &p) in dist.iter().enumerate() {
                acc += p;
                if u <= acc {
                    return i;
                }
            }
            k - 1
        };
        let mut state = pick(&model.pi, rng);
        let mut dims_out = vec![Vec::with_capacity(len); dims];
        for _ in 0..len {
            for (d, out) in dims_out.iter_mut().enumerate() {
                out.push(normal(rng, model.means[state][d], model.vars[state][d].sqrt()));
            }
            state = pick(&model.trans[state], rng);
        }
        Mts::from_dims(dims_out)
    }
}

impl Augmenter for GaussianHmm {
    fn name(&self) -> &'static str {
        "gaussian_hmm"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let members = ds.indices_of_class(class);
        if members.is_empty() {
            return Err(TsdaError::InvalidParameter(format!("class {class} empty")));
        }
        let sequences: Vec<Vec<Vec<f64>>> = members
            .iter()
            .map(|&i| {
                let s = impute_linear(&ds.series()[i]);
                (0..s.len()).map(|t| s.observation(t)).collect()
            })
            .collect();
        let model = self.fit(&sequences, rng);
        let len = ds.series_len();
        let dims = ds.n_dims();
        Ok((0..count).map(|_| Self::sample(&model, len, dims, rng)).collect())
    }
}

// ---------------------------------------------------------------------
// Autoregressive factorisation (paper Eq. 1)
// ---------------------------------------------------------------------

/// Linear-Gaussian autoregressive sampler implementing the paper's Eq. 1
/// factorisation: each step is drawn from
/// `P(x_t | x_{t−1}, …, x_{t−p}) = N(μ_t, σ²)` with the conditional mean
/// given by AR coefficients fit per class and dimension. Unlike
/// [`super::statistical::ArResidualSampler`], whose simulated deviations
/// never feed back into the conditioning, this one conditions on its own
/// generated trajectory — a true ancestral sample from the fitted process.
#[derive(Debug, Clone, Copy)]
pub struct AutoregressiveSampler {
    /// AR order `p`.
    pub order: usize,
}

impl Default for AutoregressiveSampler {
    fn default() -> Self {
        Self { order: 3 }
    }
}

impl Augmenter for AutoregressiveSampler {
    fn name(&self) -> &'static str {
        "autoregressive"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        use super::statistical::yule_walker;
        let members = ds.indices_of_class(class);
        if members.is_empty() {
            return Err(TsdaError::InvalidParameter(format!("class {class} empty")));
        }
        let dims = ds.n_dims();
        let len = ds.series_len();
        let imputed: Vec<Mts> = members.iter().map(|&i| impute_linear(&ds.series()[i])).collect();
        let mut mean = vec![vec![0.0; len]; dims];
        for s in &imputed {
            for (m, mean_row) in mean.iter_mut().enumerate() {
                for (t, &v) in s.dim(m).iter().enumerate() {
                    mean_row[t] += v / imputed.len() as f64;
                }
            }
        }
        let models: Vec<(Vec<f64>, f64)> = (0..dims)
            .map(|m| {
                let pooled: Vec<f64> = imputed
                    .iter()
                    .flat_map(|s| {
                        s.dim(m)
                            .iter()
                            .zip(&mean[m])
                            .map(|(v, mu)| v - mu)
                            .collect::<Vec<f64>>()
                    })
                    .collect();
                yule_walker(&pooled, self.order)
            })
            .collect();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let dims_out: Vec<Vec<f64>> = (0..dims)
                .map(|m| {
                    let (coef, var) = &models[m];
                    let std = var.sqrt();
                    let mut dev: Vec<f64> = Vec::with_capacity(len);
                    for t in 0..len {
                        let dev_ref = &dev;
                        let mu = tsda_core::math::sum_stable(
                            coef.iter()
                                .enumerate()
                                .filter(|&(j, _)| t > j)
                                .map(move |(j, &c)| c * dev_ref[t - 1 - j]),
                        );
                        dev.push(mu + normal(rng, 0.0, std));
                    }
                    dev.iter().zip(&mean[m]).map(|(d, mu)| mu + d).collect()
                })
                .collect();
            out.push(Mts::from_dims(dims_out));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Denoising diffusion (paper Eq. 2)
// ---------------------------------------------------------------------

/// A small denoising diffusion probabilistic model on the flattened
/// series: the forward chain corrupts `x₀` toward `N(0, I)` over
/// `diffusion_steps`; an MLP `ε_θ(x_t, t)` learns to predict the injected
/// noise; sampling runs the learned reverse chain (paper Eq. 2).
///
/// Data are standardised per feature before training and restored after
/// sampling. Deliberately small — it exercises the probabilistic branch
/// end-to-end rather than competing with TimeGAN.
#[derive(Debug, Clone, Copy)]
pub struct DiffusionSampler {
    /// Length of the diffusion chain.
    pub diffusion_steps: usize,
    /// Optimisation steps.
    pub train_steps: usize,
    /// Hidden width of the denoiser MLP.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for DiffusionSampler {
    fn default() -> Self {
        Self { diffusion_steps: 40, train_steps: 300, hidden: 64, lr: 2e-3 }
    }
}

impl Augmenter for DiffusionSampler {
    fn name(&self) -> &'static str {
        "diffusion"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let members = ds.indices_of_class(class);
        if members.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "diffusion needs ≥2 members in class {class}"
            )));
        }
        let dims = ds.n_dims();
        let len = ds.series_len();
        let d = dims * len;
        let flat: Vec<Vec<f64>> = members
            .iter()
            .map(|&i| impute_linear(&ds.series()[i]).into_flat())
            .collect();
        let mut mean = vec![0.0; d];
        for v in &flat {
            for j in 0..d {
                mean[j] += v[j] / flat.len() as f64;
            }
        }
        let mut std = vec![0.0; d];
        for v in &flat {
            for j in 0..d {
                let diff = v[j] - mean[j];
                std[j] += diff * diff / flat.len() as f64;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-6);
        }
        let data: Vec<Vec<f32>> = flat
            .iter()
            .map(|v| {
                v.iter()
                    .enumerate()
                    .map(|(j, &x)| ((x - mean[j]) / std[j]) as f32)
                    .collect()
            })
            .collect();

        let steps = self.diffusion_steps.max(2);
        let betas: Vec<f32> = (0..steps)
            .map(|t| 1e-4 + (0.05 - 1e-4) * t as f32 / (steps - 1) as f32)
            .collect();
        let alphas: Vec<f32> = betas.iter().map(|b| 1.0 - b).collect();
        let mut alpha_bar = Vec::with_capacity(steps);
        let mut acc = 1.0f32;
        for a in &alphas {
            acc *= a;
            alpha_bar.push(acc);
        }

        // Denoiser MLP: input [x_t ‖ t/T] → ε̂.
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(d + 1, self.hidden, rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(self.hidden, self.hidden, rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(self.hidden, d, rng)),
        ]);
        let mut opt = Adam::new(self.lr).with_clip(5.0);
        let batch = 16.min(data.len()).max(1);
        for _ in 0..self.train_steps {
            let mut xin = Vec::with_capacity(batch * (d + 1));
            let mut eps_true = Vec::with_capacity(batch * d);
            for _ in 0..batch {
                let x0 = &data[rng.gen_range(0..data.len())];
                let t = rng.gen_range(0..steps);
                let ab = alpha_bar[t];
                for &v in x0.iter() {
                    let e = normal(rng, 0.0, 1.0) as f32;
                    eps_true.push(e);
                    xin.push(ab.sqrt() * v + (1.0 - ab).sqrt() * e);
                }
                xin.push(t as f32 / steps as f32);
            }
            let x = Tensor::from_flat(&[batch, d + 1], xin);
            let target = Tensor::from_flat(&[batch, d], eps_true);
            let pred = net.forward(&x, true);
            let (_, grad) = mse_loss(&pred, &target);
            net.zero_grad();
            let _ = net.backward(&grad);
            opt.step(&mut net);
        }

        // Reverse-chain (ancestral) sampling.
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let mut x: Vec<f32> = (0..d).map(|_| normal(rng, 0.0, 1.0) as f32).collect();
            for t in (0..steps).rev() {
                let mut xin = x.clone();
                xin.push(t as f32 / steps as f32);
                let input = Tensor::from_flat(&[1, d + 1], xin);
                let eps = net.forward(&input, false);
                let a = alphas[t];
                let ab = alpha_bar[t];
                let sigma = betas[t].sqrt();
                for (j, xj) in x.iter_mut().enumerate().take(d) {
                    let noise = if t > 0 { normal(rng, 0.0, 1.0) as f32 } else { 0.0 };
                    *xj = (*xj - (1.0 - a) / (1.0 - ab).sqrt() * eps.data()[j]) / a.sqrt()
                        + sigma * noise;
                }
            }
            let restored: Vec<f64> = x
                .iter()
                .enumerate()
                .map(|(j, &v)| f64::from(v) * std[j] + mean[j])
                .collect();
            out.push(Mts::from_flat(dims, len, restored));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::seeded;

    /// A class of noisy two-state square-ish waves: good HMM material.
    fn square_class() -> Dataset {
        let mut ds = Dataset::empty(1);
        let mut rng = seeded(0);
        for _ in 0..6 {
            let dims: Vec<Vec<f64>> = vec![(0..48)
                .map(|t| {
                    let level = if (t / 12) % 2 == 0 { 3.0 } else { -3.0 };
                    level + normal(&mut rng, 0.0, 0.3)
                })
                .collect()];
            ds.push(Mts::from_dims(dims), 0);
        }
        ds
    }

    #[test]
    fn hmm_learns_bimodal_levels() {
        let ds = square_class();
        let hmm = GaussianHmm { states: 2, iterations: 15 };
        let out = hmm.synthesize(&ds, 0, 20, &mut seeded(1)).unwrap();
        // A single 48-step chain can legitimately dwell in one state, so
        // the level check aggregates over the 20 samples.
        let mut hi = 0usize;
        let mut lo = 0usize;
        let mut mid = 0usize;
        for s in &out {
            assert_eq!(s.shape(), (1, 48));
            for &v in s.dim(0) {
                assert!(v.abs() < 6.0);
                if v > 1.0 {
                    hi += 1;
                } else if v < -1.0 {
                    lo += 1;
                } else {
                    mid += 1;
                }
            }
        }
        let total = 20 * 48;
        assert!(hi > total / 6, "hi level underrepresented: {hi}/{total}");
        assert!(lo > total / 6, "lo level underrepresented: {lo}/{total}");
        // Emissions concentrate at the two levels, not in between.
        assert!(mid < total / 20, "too much mass between the levels: {mid}");
    }

    #[test]
    fn hmm_fits_correct_transition_dwell() {
        // The square wave switches level every 12 steps → the fitted
        // self-transition probability must be near 11/12.
        let ds = square_class();
        let hmm = GaussianHmm { states: 2, iterations: 15 };
        let members = ds.indices_of_class(0);
        let sequences: Vec<Vec<Vec<f64>>> = members
            .iter()
            .map(|&i| {
                let s = tsda_core::preprocess::impute_linear(&ds.series()[i]);
                (0..s.len()).map(|t| s.observation(t)).collect()
            })
            .collect();
        let model = hmm.fit(&sequences, &mut seeded(1));
        for s in 0..2 {
            assert!(
                (model.trans[s][s] - 11.0 / 12.0).abs() < 0.06,
                "state {s} self-transition {}",
                model.trans[s][s]
            );
        }
        // Means near ±3 (in either order).
        let mut ms: Vec<f64> = model.means.iter().map(|m| m[0]).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((ms[0] + 3.0).abs() < 0.3 && (ms[1] - 3.0).abs() < 0.3, "{ms:?}");
    }

    #[test]
    fn hmm_sampling_is_deterministic_given_seed() {
        let ds = square_class();
        let hmm = GaussianHmm::default();
        let a = hmm.synthesize(&ds, 0, 2, &mut seeded(2)).unwrap();
        let b = hmm.synthesize(&ds, 0, 2, &mut seeded(2)).unwrap();
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn autoregressive_sampler_tracks_class_mean() {
        let mut ds = Dataset::empty(1);
        let mut rng = seeded(3);
        for _ in 0..8 {
            ds.push(
                Mts::from_dims(vec![(0..30)
                    .map(|t| (t as f64 * 0.4).sin() * 2.0 + normal(&mut rng, 0.0, 0.2))
                    .collect()]),
                0,
            );
        }
        let out = AutoregressiveSampler::default()
            .synthesize(&ds, 0, 10, &mut seeded(4))
            .unwrap();
        let mut avg = vec![0.0; 30];
        for s in &out {
            for (t, &v) in s.dim(0).iter().enumerate() {
                avg[t] += v / out.len() as f64;
            }
        }
        let err: f64 = avg
            .iter()
            .enumerate()
            .map(|(t, a)| (a - (t as f64 * 0.4).sin() * 2.0).abs())
            .sum::<f64>()
            / 30.0;
        assert!(err < 0.6, "{err}");
    }

    #[test]
    fn diffusion_generates_class_like_samples() {
        // Class = narrow Gaussian blob around a fixed 1×8 pattern. After
        // training, samples must correlate with the pattern far better
        // than noise would.
        let mut ds = Dataset::empty(1);
        let mut rng = seeded(5);
        let pattern = [4.0, 3.0, 2.0, 1.0, -1.0, -2.0, -3.0, -4.0];
        for _ in 0..12 {
            ds.push(
                Mts::from_dims(vec![pattern
                    .iter()
                    .map(|&v| v + normal(&mut rng, 0.0, 0.2))
                    .collect()]),
                0,
            );
        }
        let diff = DiffusionSampler { train_steps: 400, ..DiffusionSampler::default() };
        let out = diff.synthesize(&ds, 0, 4, &mut seeded(6)).unwrap();
        for s in &out {
            let corr: f64 = s.dim(0).iter().zip(&pattern).map(|(a, b)| a * b).sum::<f64>();
            assert!(corr > 10.0, "sample uncorrelated with class: {corr}");
        }
    }

    #[test]
    fn diffusion_rejects_tiny_class() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::constant(1, 4, 0.0), 0);
        assert!(DiffusionSampler::default()
            .synthesize(&ds, 0, 1, &mut seeded(7))
            .is_err());
    }

    #[test]
    fn hmm_handles_multivariate_observations() {
        let mut ds = Dataset::empty(1);
        let mut rng = seeded(8);
        for _ in 0..4 {
            let d0: Vec<f64> = (0..30).map(|t| (t as f64 * 0.5).sin() + normal(&mut rng, 0.0, 0.1)).collect();
            let d1: Vec<f64> = d0.iter().map(|v| 2.0 * v + normal(&mut rng, 0.0, 0.1)).collect();
            ds.push(Mts::from_dims(vec![d0, d1]), 0);
        }
        let out = GaussianHmm { states: 3, iterations: 8 }
            .synthesize(&ds, 0, 2, &mut seeded(9))
            .unwrap();
        assert_eq!(out[0].shape(), (2, 30));
        assert!(out[0].as_flat().iter().all(|v| v.is_finite()));
    }
}
