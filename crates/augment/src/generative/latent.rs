//! Latent-space (feature-space) augmentation — DeVries & Taylor 2017,
//! the paper's reference [50]: train an auto-encoder on the class, then
//! perturb or interpolate in the *latent* space and decode. Latent
//! operations respect the data manifold far better than raw-input
//! perturbations, which is the whole argument of the taxonomy's
//! neural-network generative branch.

use crate::Augmenter;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::preprocess::impute_linear;
use tsda_core::rng::normal;
use tsda_core::{Dataset, Label, Mts, TsdaError};
use tsda_neuro::layers::{Activation, Dense, Layer, Sequential};
use tsda_neuro::loss::mse_loss;
use tsda_neuro::optim::Adam;
use tsda_neuro::tensor::Tensor;

/// How new latent codes are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatentMode {
    /// Add Gaussian noise to a random member's code.
    Noise,
    /// Interpolate between the codes of two random members.
    Interpolate,
    /// Extrapolate beyond a member's code away from a second one
    /// (DeVries & Taylor report extrapolation works best).
    Extrapolate,
}

/// Auto-encoder latent-space augmenter.
#[derive(Debug, Clone, Copy)]
pub struct LatentSpaceAugmenter {
    /// Latent width.
    pub latent: usize,
    /// Hidden width of the encoder/decoder MLPs.
    pub hidden: usize,
    /// Training steps for the auto-encoder.
    pub train_steps: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Latent operation.
    pub mode: LatentMode,
    /// Noise std (for [`LatentMode::Noise`]) or mixing weight scale.
    pub strength: f64,
}

impl Default for LatentSpaceAugmenter {
    fn default() -> Self {
        Self {
            latent: 8,
            hidden: 48,
            train_steps: 350,
            lr: 2e-3,
            mode: LatentMode::Interpolate,
            strength: 0.5,
        }
    }
}

impl Augmenter for LatentSpaceAugmenter {
    fn name(&self) -> &'static str {
        "latent_space"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let members = ds.indices_of_class(class);
        if members.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "latent-space augmentation needs ≥2 members in class {class}"
            )));
        }
        let dims = ds.n_dims();
        let len = ds.series_len();
        let d = dims * len;
        let z_dim = self.latent.min(d);

        // Standardise the flattened class data.
        let flat: Vec<Vec<f64>> = members
            .iter()
            .map(|&i| impute_linear(&ds.series()[i]).into_flat())
            .collect();
        let mut mean = vec![0.0; d];
        for v in &flat {
            for j in 0..d {
                mean[j] += v[j] / flat.len() as f64;
            }
        }
        let mut std = vec![0.0; d];
        for v in &flat {
            for j in 0..d {
                let diff = v[j] - mean[j];
                std[j] += diff * diff / flat.len() as f64;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-6);
        }
        let rows: Vec<Vec<f32>> = flat
            .iter()
            .map(|v| {
                v.iter()
                    .enumerate()
                    .map(|(j, &x)| ((x - mean[j]) / std[j]) as f32)
                    .collect()
            })
            .collect();

        // Plain auto-encoder.
        let mut encoder = Sequential::new(vec![
            Box::new(Dense::new(d, self.hidden, rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(self.hidden, z_dim, rng)),
        ]);
        let mut decoder = Sequential::new(vec![
            Box::new(Dense::new(z_dim, self.hidden, rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(self.hidden, d, rng)),
        ]);
        let mut opt_e = Adam::new(self.lr).with_clip(5.0);
        let mut opt_d = Adam::new(self.lr).with_clip(5.0);
        let batch = 16.min(rows.len()).max(1);
        for _ in 0..self.train_steps {
            let mut xin = Vec::with_capacity(batch * d);
            for _ in 0..batch {
                xin.extend_from_slice(&rows[rng.gen_range(0..rows.len())]);
            }
            let x = Tensor::from_flat(&[batch, d], xin);
            let z = encoder.forward(&x, true);
            let recon = decoder.forward(&z, true);
            let (_, grad) = mse_loss(&recon, &x);
            encoder.zero_grad();
            decoder.zero_grad();
            let gz = decoder.backward(&grad);
            let _ = encoder.backward(&gz);
            opt_e.step(&mut encoder);
            opt_d.step(&mut decoder);
        }

        // Encode every member once.
        let all = Tensor::from_flat(
            &[rows.len(), d],
            rows.iter().flatten().copied().collect(),
        );
        let codes = encoder.forward(&all, false);
        let code = |i: usize| -> Vec<f32> {
            codes.data()[i * z_dim..(i + 1) * z_dim].to_vec()
        };
        // Latent std for the noise mode.
        let latent_std: Vec<f32> = (0..z_dim)
            .map(|k| {
                let vals: Vec<f32> = (0..rows.len()).map(|i| codes.at2(i, k)).collect();
                let m = tsda_core::math::sum_stable(vals.iter().copied()) / vals.len() as f32;
                (tsda_core::math::sum_stable(vals.iter().map(|v| (v - m) * (v - m)))
                    / vals.len() as f32)
                    .sqrt()
            })
            .collect();

        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let a = rng.gen_range(0..rows.len());
            let mut b = rng.gen_range(0..rows.len());
            while b == a {
                b = rng.gen_range(0..rows.len());
            }
            let (za, zb) = (code(a), code(b));
            let z_new: Vec<f32> = match self.mode {
                LatentMode::Noise => za
                    .iter()
                    .zip(&latent_std)
                    .map(|(&z, &s)| z + (self.strength as f32) * s * normal(rng, 0.0, 1.0) as f32)
                    .collect(),
                LatentMode::Interpolate => {
                    let lambda = rng.gen_range(0.0..self.strength) as f32;
                    za.iter().zip(&zb).map(|(&x, &y)| x + lambda * (y - x)).collect()
                }
                LatentMode::Extrapolate => {
                    let lambda = rng.gen_range(0.0..self.strength) as f32;
                    // z' = za + λ(za − zb): push away from the neighbour.
                    za.iter().zip(&zb).map(|(&x, &y)| x + lambda * (x - y)).collect()
                }
            };
            let recon = decoder.forward(&Tensor::from_flat(&[1, z_dim], z_new), false);
            let restored: Vec<f64> = recon
                .data()
                .iter()
                .enumerate()
                .map(|(j, &v)| f64::from(v) * std[j] + mean[j])
                .collect();
            out.push(Mts::from_flat(dims, len, restored));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::seeded;

    fn wave_class(n: usize) -> Dataset {
        let mut ds = Dataset::empty(1);
        let mut rng = seeded(1);
        for _ in 0..n {
            let amp: f64 = rng.gen_range(1.5..2.5);
            ds.push(
                Mts::from_dims(vec![(0..20)
                    .map(|t| amp * (t as f64 * 0.5).sin() + normal(&mut rng, 0.0, 0.1))
                    .collect()]),
                0,
            );
        }
        ds
    }

    #[test]
    fn interpolation_mode_stays_on_the_class_manifold() {
        let ds = wave_class(16);
        let aug = LatentSpaceAugmenter::default();
        let out = aug.synthesize(&ds, 0, 5, &mut seeded(2)).unwrap();
        let pattern: Vec<f64> = (0..20).map(|t| (t as f64 * 0.5).sin()).collect();
        let pnorm: f64 = pattern.iter().map(|v| v * v).sum();
        for s in &out {
            assert_eq!(s.shape(), (1, 20));
            let corr: f64 = s.dim(0).iter().zip(&pattern).map(|(a, b)| a * b).sum();
            // Amplitudes 1.5–2.5 → corr ≈ amp · ‖pattern‖² ≥ pnorm.
            assert!(corr > 0.7 * pnorm, "off-manifold sample: {corr} vs {pnorm}");
        }
    }

    #[test]
    fn all_modes_produce_finite_series() {
        let ds = wave_class(12);
        for mode in [LatentMode::Noise, LatentMode::Interpolate, LatentMode::Extrapolate] {
            let aug = LatentSpaceAugmenter { mode, ..LatentSpaceAugmenter::default() };
            let out = aug.synthesize(&ds, 0, 3, &mut seeded(3)).unwrap();
            assert_eq!(out.len(), 3);
            assert!(out
                .iter()
                .all(|s| s.as_flat().iter().all(|v| v.is_finite())));
        }
    }

    #[test]
    fn rejects_singleton_class() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::constant(1, 8, 0.0), 0);
        assert!(LatentSpaceAugmenter::default()
            .synthesize(&ds, 0, 1, &mut seeded(4))
            .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = wave_class(10);
        let aug = LatentSpaceAugmenter::default();
        let a = aug.synthesize(&ds, 0, 2, &mut seeded(5)).unwrap();
        let b = aug.synthesize(&ds, 0, 2, &mut seeded(5)).unwrap();
        assert_eq!(a[0], b[0]);
    }
}
