//! Generative augmentation: statistical samplers, probabilistic models
//! (HMM, autoregressive factorisation, DDPM), and the neural TimeGAN.

pub mod latent;
pub mod probabilistic;
pub mod statistical;
pub mod timegan;
pub mod vae;
