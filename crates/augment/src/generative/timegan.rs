//! TimeGAN (Yoon, Jarrett & van der Schaar, NeurIPS 2019).
//!
//! Five cooperating networks over a shared latent sequence space:
//!
//! * **embedder** `e = E(x)` — maps real sequences into latents;
//! * **recovery** `x̃ = R(e)` — maps latents back to feature space;
//! * **generator** `ê = G(z)` — maps noise sequences into latents;
//! * **supervisor** `ĥ_{t+1} = S(ĥ_t)` — teaches next-step dynamics;
//! * **discriminator** `y = D(h)` — real/fake per time step.
//!
//! Training follows the reference's three phases: (1) autoencoding
//! (E, R on reconstruction), (2) supervised (S on next-step prediction
//! in latent space), (3) joint adversarial (G+S vs D, with E, R refined
//! and moment matching on the synthetic output).
//!
//! The paper's §IV-C settings — iterations 2500/2500/1000, latent
//! dimension 10, γ = 1, learning rate 5·10⁻⁴, batch 32, trained on one
//! class at a time — are [`TimeGanConfig::paper`]; the default is a
//! laptop-scale reduction with the same structure.

use crate::Augmenter;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::preprocess::impute_linear;
use tsda_core::{Dataset, Label, Mts, TsdaError};
use tsda_neuro::layers::{Activation, Dense, Gru, Layer};
use tsda_neuro::loss::{bce_with_logits, mse_loss};
use tsda_neuro::optim::Adam;
use tsda_neuro::tensor::Tensor;

/// Dense layer applied independently at every time step:
/// `[n, T, F] → [n, T, out]`.
struct TimeDistributedDense {
    dense: Dense,
    cached_nt: (usize, usize),
}

impl TimeDistributedDense {
    fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Self { dense: Dense::new(in_features, out_features, rng), cached_nt: (0, 0) }
    }
}

impl Layer for TimeDistributedDense {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, t, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        self.cached_nt = (n, t);
        let flat = x.clone().reshape(&[n * t, f]);
        let out = self.dense.forward(&flat, train);
        let of = out.shape()[1];
        out.reshape(&[n, t, of])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (n, t) = self.cached_nt;
        let of = grad_out.shape()[2];
        let flat = grad_out.clone().reshape(&[n * t, of]);
        let gin = self.dense.backward(&flat);
        let inf = gin.shape()[1];
        gin.reshape(&[n, t, inf])
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.dense.visit_params(f);
    }
}

/// One TimeGAN sub-network: GRU → per-step dense → optional sigmoid.
struct GruNet {
    gru: Gru,
    head: TimeDistributedDense,
    act: Option<Activation>,
}

impl GruNet {
    fn new<R: Rng + ?Sized>(
        input: usize,
        hidden: usize,
        output: usize,
        sigmoid: bool,
        rng: &mut R,
    ) -> Self {
        Self {
            gru: Gru::new(input, hidden, rng),
            head: TimeDistributedDense::new(hidden, output, rng),
            act: sigmoid.then(Activation::sigmoid),
        }
    }
}

impl Layer for GruNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let h = self.gru.forward(x, train);
        let y = self.head.forward(&h, train);
        match &mut self.act {
            Some(a) => a.forward(&y, train),
            None => y,
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = match &mut self.act {
            Some(a) => a.backward(grad_out),
            None => grad_out.clone(),
        };
        let g = self.head.backward(&g);
        self.gru.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.gru.visit_params(f);
        self.head.visit_params(f);
    }
}

/// TimeGAN hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TimeGanConfig {
    /// Latent (hidden) dimension of all five networks.
    pub hidden: usize,
    /// Noise dimension fed to the generator.
    pub latent: usize,
    /// Phase-1 (autoencoding) iterations.
    pub iters_embedding: usize,
    /// Phase-2 (supervised) iterations.
    pub iters_supervised: usize,
    /// Phase-3 (joint adversarial) iterations.
    pub iters_joint: usize,
    /// Weight of the supervised loss in the generator objective (γ).
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for TimeGanConfig {
    /// Laptop-scale profile: same architecture and schedule shape, an
    /// order of magnitude fewer iterations.
    fn default() -> Self {
        Self {
            hidden: 12,
            latent: 10,
            iters_embedding: 150,
            iters_supervised: 150,
            iters_joint: 80,
            gamma: 1.0,
            lr: 1e-3,
            batch: 16,
        }
    }
}

impl TimeGanConfig {
    /// The paper's §IV-C settings: iterations 2500/2500/1000, latent 10,
    /// γ = 1, lr 5·10⁻⁴, batch 32.
    pub fn paper() -> Self {
        Self {
            hidden: 24,
            latent: 10,
            iters_embedding: 2500,
            iters_supervised: 2500,
            iters_joint: 1000,
            gamma: 1.0,
            lr: 5e-4,
            batch: 32,
        }
    }
}

/// The TimeGAN augmenter. Trains one model per (class, call) on the
/// class's series, exactly as the paper's protocol feeds the GAN series
/// "coming from a single class of the original dataset".
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeGan {
    /// Hyper-parameters.
    pub config: TimeGanConfig,
}

impl TimeGan {
    /// TimeGAN with explicit hyper-parameters.
    pub fn new(config: TimeGanConfig) -> Self {
        Self { config }
    }
}

/// Per-feature min-max scaling state.
struct MinMax {
    min: Vec<f64>,
    range: Vec<f64>,
}

impl MinMax {
    fn fit(series: &[Mts]) -> Self {
        let dims = series[0].n_dims();
        let mut min = vec![f64::INFINITY; dims];
        let mut max = vec![f64::NEG_INFINITY; dims];
        for s in series {
            for m in 0..dims {
                for &v in s.dim(m) {
                    min[m] = min[m].min(v);
                    max[m] = max[m].max(v);
                }
            }
        }
        let range = min
            .iter()
            .zip(&max)
            .map(|(lo, hi)| (hi - lo).max(1e-9))
            .collect();
        Self { min, range }
    }

    /// `[n, T, F]` tensor of scaled sequences (series transposed to
    /// time-major steps).
    fn to_tensor(&self, series: &[Mts]) -> Tensor {
        let n = series.len();
        let t = series[0].len();
        let f = series[0].n_dims();
        let mut data = Vec::with_capacity(n * t * f);
        for s in series {
            for step in 0..t {
                for m in 0..f {
                    let v = (s.value(m, step) - self.min[m]) / self.range[m];
                    data.push(v as f32);
                }
            }
        }
        Tensor::from_flat(&[n, t, f], data)
    }

    fn restore(&self, data: &[f32], t: usize, f: usize) -> Mts {
        let mut dims = vec![Vec::with_capacity(t); f];
        for step in 0..t {
            for m in 0..f {
                let v = f64::from(data[step * f + m]) * self.range[m] + self.min[m];
                dims[m].push(v);
            }
        }
        Mts::from_dims(dims)
    }
}

/// Supervised next-step loss: `MSE(S(h)[:, :−1], h[:, 1:])`; returns the
/// loss and the gradient w.r.t. the supervisor *output*.
fn supervised_loss(s_out: &Tensor, h: &Tensor) -> (f32, Tensor) {
    let (n, t, k) = (h.shape()[0], h.shape()[1], h.shape()[2]);
    let mut grad = Tensor::zeros(s_out.shape());
    if t < 2 {
        return (0.0, grad);
    }
    let count = (n * (t - 1) * k) as f32;
    let mut sq = Vec::with_capacity(n * (t - 1) * k);
    for b in 0..n {
        for step in 0..t - 1 {
            for j in 0..k {
                let pred = s_out.data()[(b * t + step) * k + j];
                let target = h.data()[(b * t + step + 1) * k + j];
                let d = pred - target;
                sq.push(d * d);
                grad.data_mut()[(b * t + step) * k + j] = 2.0 * d / count;
            }
        }
    }
    let loss: f32 = tsda_core::math::sum_stable(sq.iter().copied());
    (loss / count, grad)
}

impl Augmenter for TimeGan {
    fn name(&self) -> &'static str {
        "timegan"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let members = ds.indices_of_class(class);
        if members.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "TimeGAN needs ≥2 members in class {class}"
            )));
        }
        let series: Vec<Mts> = members.iter().map(|&i| impute_linear(&ds.series()[i])).collect();
        let scaler = MinMax::fit(&series);
        let all = scaler.to_tensor(&series);
        let (n, t, f) = (all.shape()[0], all.shape()[1], all.shape()[2]);
        let cfg = self.config;
        let h = cfg.hidden;

        let mut embedder = GruNet::new(f, h, h, true, rng);
        let mut recovery = GruNet::new(h, h, f, true, rng);
        let mut generator = GruNet::new(cfg.latent, h, h, true, rng);
        let mut supervisor = GruNet::new(h, h, h, true, rng);
        let mut discriminator = GruNet::new(h, h, 1, false, rng);

        let mut opt_e = Adam::new(cfg.lr).with_clip(5.0);
        let mut opt_r = Adam::new(cfg.lr).with_clip(5.0);
        let mut opt_g = Adam::new(cfg.lr).with_clip(5.0);
        let mut opt_s = Adam::new(cfg.lr).with_clip(5.0);
        let mut opt_d = Adam::new(cfg.lr).with_clip(5.0);

        let batch_size = cfg.batch.min(n).max(1);
        let sample_batch = |rng: &mut StdRng| -> Tensor {
            let idx: Vec<usize> = (0..batch_size).map(|_| rng.gen_range(0..n)).collect();
            all.select_rows(&idx)
        };
        let sample_noise = |rng: &mut StdRng| -> Tensor {
            let data: Vec<f32> = (0..batch_size * t * cfg.latent)
                .map(|_| rng.gen::<f32>())
                .collect();
            Tensor::from_flat(&[batch_size, t, cfg.latent], data)
        };
        let zero_all = |e: &mut GruNet,
                        r: &mut GruNet,
                        g: &mut GruNet,
                        s: &mut GruNet,
                        d: &mut GruNet| {
            e.zero_grad();
            r.zero_grad();
            g.zero_grad();
            s.zero_grad();
            d.zero_grad();
        };

        // Phase 1: autoencoding — E and R minimise reconstruction MSE.
        for _ in 0..cfg.iters_embedding {
            let x = sample_batch(rng);
            let e = embedder.forward(&x, true);
            let xr = recovery.forward(&e, true);
            let (_, grad) = mse_loss(&xr, &x);
            zero_all(&mut embedder, &mut recovery, &mut generator, &mut supervisor, &mut discriminator);
            let ge = recovery.backward(&grad);
            let _ = embedder.backward(&ge);
            opt_e.step(&mut embedder);
            opt_r.step(&mut recovery);
        }

        // Phase 2: supervised — S learns next-step dynamics on real
        // latents (E frozen here, as in the reference).
        for _ in 0..cfg.iters_supervised {
            let x = sample_batch(rng);
            let e = embedder.forward(&x, true);
            let s_out = supervisor.forward(&e, true);
            let (_, grad) = supervised_loss(&s_out, &e);
            zero_all(&mut embedder, &mut recovery, &mut generator, &mut supervisor, &mut discriminator);
            let _ = supervisor.backward(&grad);
            opt_s.step(&mut supervisor);
        }

        // Phase 3: joint adversarial training.
        for _ in 0..cfg.iters_joint {
            // --- Generator + supervisor update -------------------------
            let z = sample_noise(rng);
            let e_hat = generator.forward(&z, true);
            let h_hat = supervisor.forward(&e_hat, true);
            let y_fake = discriminator.forward(&h_hat, true);
            let ones = Tensor::from_flat(y_fake.shape(), vec![1.0; y_fake.len()]);
            let (_, g_adv) = bce_with_logits(&y_fake, &ones);
            // Supervised consistency on the generated latents.
            let (_, mut g_sup) = supervised_loss(&h_hat, &e_hat);
            g_sup.scale(cfg.gamma);
            zero_all(&mut embedder, &mut recovery, &mut generator, &mut supervisor, &mut discriminator);
            let mut g_h = discriminator.backward(&g_adv);
            g_h.add_assign(&g_sup);
            let g_e = supervisor.backward(&g_h);
            let _ = generator.backward(&g_e);
            opt_g.step(&mut generator);
            opt_s.step(&mut supervisor);

            // --- Embedder/recovery refinement ---------------------------
            let x = sample_batch(rng);
            let e = embedder.forward(&x, true);
            let xr = recovery.forward(&e, true);
            let (_, grad) = mse_loss(&xr, &x);
            zero_all(&mut embedder, &mut recovery, &mut generator, &mut supervisor, &mut discriminator);
            let ge = recovery.backward(&grad);
            let _ = embedder.backward(&ge);
            opt_e.step(&mut embedder);
            opt_r.step(&mut recovery);

            // --- Discriminator update ----------------------------------
            let x = sample_batch(rng);
            let e_real = embedder.forward(&x, true);
            let y_real = discriminator.forward(&e_real, true);
            let ones = Tensor::from_flat(y_real.shape(), vec![1.0; y_real.len()]);
            let (loss_real, gr) = bce_with_logits(&y_real, &ones);
            zero_all(&mut embedder, &mut recovery, &mut generator, &mut supervisor, &mut discriminator);
            let _ = discriminator.backward(&gr);
            // Fake side (fresh forward so the discriminator cache matches).
            let z = sample_noise(rng);
            let e_hat = generator.forward(&z, true);
            let h_hat = supervisor.forward(&e_hat, true);
            let y_fake = discriminator.forward(&h_hat, true);
            let zeros = Tensor::zeros(y_fake.shape());
            let (loss_fake, gf) = bce_with_logits(&y_fake, &zeros);
            let _ = discriminator.backward(&gf);
            // The reference only updates D while it is losing; mirror that.
            if loss_real + loss_fake > 0.15 {
                opt_d.step(&mut discriminator);
            }
        }

        // Generation: x̂ = R(S(G(z))).
        let mut out = Vec::with_capacity(count);
        let mut produced = 0;
        while produced < count {
            let take = batch_size.min(count - produced);
            let z = sample_noise(rng);
            let e_hat = generator.forward(&z, false);
            let h_hat = supervisor.forward(&e_hat, false);
            let x_hat = recovery.forward(&h_hat, false);
            for b in 0..take {
                let start = b * t * f;
                out.push(scaler.restore(&x_hat.data()[start..start + t * f], t, f));
            }
            produced += take;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::seeded;
    use tsda_core::rng::normal;

    fn sine_class(n: usize, len: usize) -> Dataset {
        let mut ds = Dataset::empty(1);
        let mut rng = seeded(0);
        for _ in 0..n {
            let phase: f64 = rng.gen_range(0.0..0.5);
            ds.push(
                Mts::from_dims(vec![(0..len)
                    .map(|t| (t as f64 * 0.5 + phase).sin() + normal(&mut rng, 0.0, 0.05))
                    .collect()]),
                0,
            );
        }
        ds
    }

    fn quick_cfg() -> TimeGanConfig {
        TimeGanConfig {
            hidden: 6,
            latent: 4,
            iters_embedding: 40,
            iters_supervised: 30,
            iters_joint: 20,
            gamma: 1.0,
            lr: 2e-3,
            batch: 8,
        }
    }

    #[test]
    fn generates_requested_count_and_shape() {
        let ds = sine_class(8, 16);
        let out = TimeGan::new(quick_cfg()).synthesize(&ds, 0, 5, &mut seeded(1)).unwrap();
        assert_eq!(out.len(), 5);
        for s in &out {
            assert_eq!(s.shape(), (1, 16));
            assert!(s.dim(0).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn output_respects_training_range() {
        let ds = sine_class(8, 16);
        let out = TimeGan::new(quick_cfg()).synthesize(&ds, 0, 4, &mut seeded(2)).unwrap();
        // Sigmoid recovery + min-max restore bounds samples to the
        // observed range (plus nothing).
        for s in &out {
            for &v in s.dim(0) {
                assert!((-1.2..=1.2).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn rejects_singleton_class() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::constant(1, 8, 1.0), 0);
        assert!(TimeGan::new(quick_cfg()).synthesize(&ds, 0, 1, &mut seeded(3)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = sine_class(6, 12);
        let a = TimeGan::new(quick_cfg()).synthesize(&ds, 0, 2, &mut seeded(4)).unwrap();
        let b = TimeGan::new(quick_cfg()).synthesize(&ds, 0, 2, &mut seeded(4)).unwrap();
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn autoencoding_phase_actually_reconstructs() {
        // With joint phase disabled, E+R alone must reconstruct training
        // batches reasonably after phase 1.
        let ds = sine_class(8, 12);
        let cfg = TimeGanConfig {
            iters_embedding: 300,
            iters_supervised: 1,
            iters_joint: 0,
            ..quick_cfg()
        };
        // Run the full pipeline; if autoencoding failed, generated output
        // through R would collapse to a constant. Check variance.
        let out = TimeGan::new(cfg).synthesize(&ds, 0, 4, &mut seeded(5)).unwrap();
        let var: f64 = {
            let vals: Vec<f64> = out.iter().flat_map(|s| s.dim(0).to_vec()).collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64
        };
        assert!(var > 1e-4, "generator output collapsed: var {var}");
    }

    #[test]
    fn paper_config_matches_section_4c() {
        let cfg = TimeGanConfig::paper();
        assert_eq!(cfg.iters_embedding, 2500);
        assert_eq!(cfg.iters_supervised, 2500);
        assert_eq!(cfg.iters_joint, 1000);
        assert_eq!(cfg.latent, 10);
        assert_eq!(cfg.gamma, 1.0);
        assert_eq!(cfg.lr, 5e-4);
        assert_eq!(cfg.batch, 32);
    }
}
