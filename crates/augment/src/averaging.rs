//! DTW barycenter averaging (DBA, Petitjean et al. 2011 — the paper's
//! reference [78]) and weighted-DBA augmentation (Forestier et al.):
//! a synthetic series is the DTW-barycentre of several class members
//! with random weights, producing class-faithful "averages" that respect
//! temporal alignment instead of naive pointwise mixing.

use crate::Augmenter;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::preprocess::impute_linear;
use tsda_core::{Dataset, Label, Mts, TsdaError};
use tsda_signal::dtw::{dtw_path, DtwOptions};

/// One DBA refinement step: align every member to the current barycentre
/// and replace each barycentre point by the weighted mean of all values
/// aligned to it.
fn dba_step(
    barycentre: &Mts,
    members: &[Mts],
    weights: &[f64],
    opts: DtwOptions,
) -> Mts {
    let dims = barycentre.n_dims();
    let len = barycentre.len();
    let mut sums = vec![vec![0.0; len]; dims];
    let mut wsum = vec![0.0; len];
    for (member, &w) in members.iter().zip(weights) {
        let (_, path) = dtw_path(barycentre, member, opts);
        for &(bi, mi) in &path {
            wsum[bi] += w;
            for (m, sum_row) in sums.iter_mut().enumerate() {
                sum_row[bi] += w * member.value(m, mi);
            }
        }
    }
    let dims_out: Vec<Vec<f64>> = sums
        .into_iter()
        .map(|row| {
            row.iter()
                .zip(&wsum)
                .map(|(&s, &w)| if w > 0.0 { s / w } else { 0.0 })
                .collect()
        })
        .collect();
    Mts::from_dims(dims_out)
}

/// Compute the DBA barycentre of `members` with the given weights,
/// starting from the highest-weighted member.
pub fn dba_barycentre(
    members: &[Mts],
    weights: &[f64],
    iterations: usize,
    opts: DtwOptions,
) -> Mts {
    assert!(!members.is_empty(), "DBA of an empty set");
    assert_eq!(members.len(), weights.len(), "DBA weight count mismatch");
    let seed_idx = weights
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut barycentre = members[seed_idx].clone();
    for _ in 0..iterations {
        barycentre = dba_step(&barycentre, members, weights, opts);
    }
    barycentre
}

/// Weighted-DBA augmentation: each synthetic series is the barycentre of
/// a random subset of class members under exponential random weights
/// (one member dominates, so samples stay near real exemplars while
/// blending in aligned neighbours).
#[derive(Debug, Clone, Copy)]
pub struct WeightedDba {
    /// Members blended per sample (capped by the class size).
    pub subset: usize,
    /// DBA refinement iterations.
    pub iterations: usize,
    /// Sakoe-Chiba band for the alignments.
    pub band_fraction: Option<f64>,
}

impl Default for WeightedDba {
    fn default() -> Self {
        Self { subset: 4, iterations: 3, band_fraction: Some(0.2) }
    }
}

impl Augmenter for WeightedDba {
    fn name(&self) -> &'static str {
        "wdba"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let members: Vec<Mts> = ds
            .indices_of_class(class)
            .into_iter()
            .map(|i| impute_linear(&ds.series()[i]))
            .collect();
        if members.len() < 2 {
            return Err(TsdaError::InvalidParameter(format!(
                "weighted DBA needs ≥2 members in class {class}"
            )));
        }
        let opts = DtwOptions { band_fraction: self.band_fraction };
        let k = self.subset.clamp(2, members.len());
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            // Random subset (partial Fisher-Yates).
            let mut idx: Vec<usize> = (0..members.len()).collect();
            for i in 0..k {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(k);
            let subset: Vec<Mts> = idx.iter().map(|&i| members[i].clone()).collect();
            // Exponential weights, heaviest first (Forestier's "average
            // selected with distance" simplified): w₀ ≈ ½, rest split.
            let mut weights: Vec<f64> = (0..k)
                .map(|i| 0.5f64.powi(i as i32) * (0.5 + rng.gen::<f64>()))
                .collect();
            let total: f64 = tsda_core::math::sum_stable(weights.iter().copied());
            for w in &mut weights {
                *w /= total;
            }
            out.push(dba_barycentre(&subset, &weights, self.iterations, opts));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::{normal, seeded};

    fn shifted_class() -> Dataset {
        // Same bump pattern at slightly different time shifts.
        let mut ds = Dataset::empty(1);
        let mut rng = seeded(1);
        for shift in [0usize, 2, 4, 6] {
            ds.push(
                Mts::from_dims(vec![(0..40)
                    .map(|t| {
                        let x = (t + 40 - shift) % 40;
                        let bump = if (10..18).contains(&x) { 3.0 } else { 0.0 };
                        bump + normal(&mut rng, 0.0, 0.1)
                    })
                    .collect()]),
                0,
            );
        }
        ds
    }

    #[test]
    fn barycentre_of_identical_series_is_that_series() {
        let s = Mts::from_dims(vec![(0..20).map(|t| (t as f64 * 0.3).sin()).collect()]);
        let members = vec![s.clone(), s.clone(), s.clone()];
        let b = dba_barycentre(&members, &[1.0, 1.0, 1.0], 3, DtwOptions::default());
        for t in 0..20 {
            assert!((b.value(0, t) - s.value(0, t)).abs() < 1e-9);
        }
    }

    #[test]
    fn barycentre_keeps_bump_amplitude_under_shifts() {
        // Pointwise averaging of shifted bumps flattens them; DBA must
        // keep the bump near its full height.
        let ds = shifted_class();
        let members: Vec<Mts> = ds.series().to_vec();
        let w = vec![0.25; 4];
        let b = dba_barycentre(&members, &w, 4, DtwOptions::default());
        let peak = b.dim(0).iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Pointwise mean peak would be ≈ 3·(overlap fraction) < 2.3; DBA ≈ 3.
        assert!(peak > 2.5, "DBA flattened the bump: peak {peak}");
    }

    #[test]
    fn wdba_generates_class_faithful_series() {
        let ds = shifted_class();
        let out = WeightedDba::default().synthesize(&ds, 0, 5, &mut seeded(2)).unwrap();
        for s in &out {
            assert_eq!(s.shape(), (1, 40));
            let peak = s.dim(0).iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(peak > 2.0, "sample lost the class bump: {peak}");
            assert!(s.dim(0).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn wdba_rejects_singleton_class() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::constant(1, 8, 1.0), 0);
        assert!(WeightedDba::default().synthesize(&ds, 0, 1, &mut seeded(3)).is_err());
    }

    #[test]
    fn wdba_is_deterministic_given_seed() {
        let ds = shifted_class();
        let a = WeightedDba::default().synthesize(&ds, 0, 2, &mut seeded(4)).unwrap();
        let b = WeightedDba::default().synthesize(&ds, 0, 2, &mut seeded(4)).unwrap();
        assert_eq!(a[0], b[0]);
    }
}
