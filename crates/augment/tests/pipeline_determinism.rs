//! Determinism battery for declarative pipelines: every pipeline in the
//! repo's `pipelines.toml` must be a pure function of (seed, sample
//! index) — bit-identical at 1 and 4 pool workers, invariant to how a
//! batch is split across `run_each` calls, and byte-stable across
//! commits via a golden file (the same regen contract as the table
//! goldens: `TSDA_REGEN_GOLDENS=1 cargo test -p tsda-augment --test
//! pipeline_determinism` rewrites it so drift always shows in review).

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use tsda_augment::declarative::{AugPipeline, PipelineConfig};
use tsda_core::parallel::ThreadLimit;
use tsda_core::Mts;
use tsda_datasets::ts_format::format_series_line;

const SEED: u64 = 7;
const N_SERIES: usize = 12;

/// `ThreadLimit` is process-global; serialize the tests that toggle it.
static LIMIT_LOCK: Mutex<()> = Mutex::new(());

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The committed fleet config: the exact pipelines CI serves.
fn pipelines() -> Vec<AugPipeline> {
    let path = repo_root().join("pipelines.toml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let cfg = PipelineConfig::parse(&text)
        .unwrap_or_else(|e| panic!("parsing {}: {e:?}", path.display()));
    AugPipeline::from_config(&cfg).expect("committed config builds")
}

/// Deterministic synthetic inputs (no RNG: values are closed-form, so
/// the only randomness under test is the pipelines' own streams).
/// Mixed dims and lengths exercise shape-dependent techniques.
fn fixture_series() -> Vec<Mts> {
    (0..N_SERIES)
        .map(|i| {
            let n_dims = 1 + i % 3;
            let len = 24 + 8 * (i % 2);
            let dims: Vec<Vec<f64>> = (0..n_dims)
                .map(|d| {
                    (0..len)
                        .map(|t| {
                            let x = t as f64 * 0.37 + d as f64;
                            (x + i as f64 * 0.11).sin() * (2.0 + d as f64) + x * 0.05
                        })
                        .collect()
                })
                .collect();
            Mts::from_dims(dims)
        })
        .collect()
}

/// Render every (pipeline, sample) output as `.ts` text. Rust's `{}`
/// float formatting is shortest-round-trip, so equal text ⇔ equal bits.
fn render_all() -> String {
    let series = fixture_series();
    let mut out = String::new();
    for pipe in pipelines() {
        out.push_str(&format!("# pipeline {} ({} stages)\n", pipe.name(), pipe.n_stages()));
        for (i, s) in pipe.run(&series, SEED).iter().enumerate() {
            out.push_str(&format!("{} {}\n", i, format_series_line(s)));
        }
    }
    out
}

/// First differing line of two renderings, for a readable failure.
fn first_diff(got: &str, want: &str) -> String {
    for (n, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        if g != w {
            return format!("first diff at line {}:\n  got:  {g}\n  want: {w}", n + 1);
        }
    }
    format!(
        "line counts differ: got {} lines, want {} lines",
        got.lines().count(),
        want.lines().count()
    )
}

/// Bit-identical at 1 and 4 workers, then stable against the golden.
#[test]
fn pipelines_toml_matches_golden_at_1_and_4_threads() {
    let _guard = LIMIT_LOCK.lock().unwrap();
    ThreadLimit::set(1);
    let single = render_all();
    ThreadLimit::set(4);
    let multi = render_all();
    ThreadLimit::clear();
    assert_eq!(
        single, multi,
        "pipeline output depends on thread count — {}",
        first_diff(&multi, &single)
    );

    let path = repo_root().join("tests/goldens/pipelines_seed7.txt");
    if std::env::var("TSDA_REGEN_GOLDENS").is_ok() {
        std::fs::write(&path, &single)
            .unwrap_or_else(|e| panic!("writing golden {}: {e}", path.display()));
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); regenerate with TSDA_REGEN_GOLDENS=1", path.display())
    });
    assert_eq!(
        single,
        want,
        "pipelines_seed7 drifted from the committed golden ({}). If the change is \
         intentional, regenerate with TSDA_REGEN_GOLDENS=1 and commit the diff.",
        first_diff(&single, &want)
    );
}

/// Batch-split invariance: running the fixture as one batch, as
/// per-sample calls, and as arbitrarily split `run_each` batches (with
/// preserved global indices) must all agree bit-for-bit — this is what
/// lets the serving batcher coalesce requests without changing results.
#[test]
fn batch_split_boundaries_never_change_results() {
    let _guard = LIMIT_LOCK.lock().unwrap();
    ThreadLimit::clear();
    let series = fixture_series();
    for pipe in pipelines() {
        let whole = pipe.run(&series, SEED);
        // Per-sample.
        for (i, s) in series.iter().enumerate() {
            assert_eq!(
                pipe.apply_one(s, SEED, i as u64),
                whole[i],
                "{}: apply_one({i}) != run()[{i}]",
                pipe.name()
            );
        }
        // Every contiguous split point, via the batcher's entry point.
        for split in 1..series.len() {
            let items: Vec<(Mts, u64, u64)> =
                series.iter().enumerate().map(|(i, s)| (s.clone(), SEED, i as u64)).collect();
            let mut rejoined = pipe.run_each(&items[..split]);
            rejoined.extend(pipe.run_each(&items[split..]));
            assert_eq!(
                rejoined,
                whole,
                "{}: splitting the batch at {split} changed results",
                pipe.name()
            );
        }
    }
}

/// Interleaved batches (the shape a concurrent batcher actually
/// produces: samples from different logical requests mixed in one
/// flush) are also invariant, because each item carries its own
/// (seed, index).
#[test]
fn interleaved_batches_match_per_sample_execution() {
    let _guard = LIMIT_LOCK.lock().unwrap();
    ThreadLimit::clear();
    let series = fixture_series();
    for pipe in pipelines() {
        // Reverse order + duplicated samples under different indices.
        let items: Vec<(Mts, u64, u64)> = series
            .iter()
            .enumerate()
            .rev()
            .flat_map(|(i, s)| [(s.clone(), SEED, i as u64), (s.clone(), SEED ^ 1, i as u64)])
            .collect();
        let got = pipe.run_each(&items);
        for (k, (s, seed, index)) in items.iter().enumerate() {
            assert_eq!(
                got[k],
                pipe.apply_one(s, *seed, *index),
                "{}: batch position {k} changed the result",
                pipe.name()
            );
        }
    }
}
