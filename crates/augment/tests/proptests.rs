//! Property-based tests of augmentation invariants: shape preservation,
//! balance, determinism, and technique-specific guarantees under
//! arbitrary (bounded) datasets.

use proptest::prelude::*;
use tsda_augment::balance::augment_to_balance;
use tsda_augment::basic::time::{NoiseInjection, Permutation, Scaling, TimeWarp};
use tsda_augment::oversample::{Smote, SmoteFuna};
use tsda_augment::preserve::label::RangeNoise;
use tsda_augment::{Augmenter, SeriesTransform};
use tsda_core::rng::seeded;
use tsda_core::{Dataset, Mts};

/// Strategy: an imbalanced 2-class dataset with bounded values, class 0
/// around +offset and class 1 around −offset (separated when offset is
/// large relative to spread).
fn dataset(
    n0: std::ops::Range<usize>,
    n1: std::ops::Range<usize>,
) -> impl Strategy<Value = Dataset> {
    (n0, n1, proptest::collection::vec(-1.0f64..1.0, 512)).prop_map(|(a, b, noise)| {
        let mut ds = Dataset::empty(2);
        let mut k = 0;
        let mut next = || {
            k += 1;
            noise[k % noise.len()]
        };
        for _ in 0..a.max(2) {
            ds.push(
                Mts::from_dims(vec![(0..12).map(|t| 5.0 + t as f64 * 0.1 + next()).collect()]),
                0,
            );
        }
        for _ in 0..b.max(2) {
            ds.push(
                Mts::from_dims(vec![(0..12).map(|t| -5.0 - t as f64 * 0.1 + next()).collect()]),
                1,
            );
        }
        ds
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transforms_preserve_shape(ds in dataset(2..6, 2..6), seed in 0u64..1000) {
        let s = &ds.series()[0];
        for t in [
            &NoiseInjection::level(1.0) as &dyn SeriesTransform,
            &Scaling::default(),
            &Permutation::default(),
            &TimeWarp::default(),
        ] {
            let out = t.transform(s, &mut seeded(seed));
            prop_assert_eq!(out.shape(), s.shape(), "{}", SeriesTransform::name(t));
            prop_assert!(out.as_flat().iter().all(|v| v.is_finite() || v.is_nan()));
        }
    }

    #[test]
    fn balance_always_equalises(ds in dataset(3..10, 2..5), seed in 0u64..1000) {
        let out = augment_to_balance(&ds, &NoiseInjection::level(1.0), &mut seeded(seed)).unwrap();
        let counts = out.class_counts();
        prop_assert_eq!(counts[0], counts[1]);
        // Never removes series.
        prop_assert!(out.len() >= ds.len());
        // Prefix equals the original dataset.
        for i in 0..ds.len() {
            prop_assert_eq!(&out.series()[i], &ds.series()[i]);
        }
    }

    #[test]
    fn smote_outputs_lie_in_class_bounding_box(ds in dataset(4..8, 3..6), seed in 0u64..1000) {
        let out = Smote::default().synthesize(&ds, 1, 8, &mut seeded(seed)).unwrap();
        // Bounding box of class 1, position-wise.
        let members: Vec<&Mts> = ds.iter().filter(|&(_, l)| l == 1).map(|(s, _)| s).collect();
        for s in &out {
            for t in 0..s.len() {
                let v = s.value(0, t);
                let lo = members.iter().map(|m| m.value(0, t)).fold(f64::INFINITY, f64::min);
                let hi = members.iter().map(|m| m.value(0, t)).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "t={}: {} not in [{}, {}]", t, v, lo, hi);
            }
        }
    }

    #[test]
    fn smotefuna_outputs_lie_in_class_bounding_box(ds in dataset(4..8, 3..6), seed in 0u64..1000) {
        let out = SmoteFuna.synthesize(&ds, 1, 8, &mut seeded(seed)).unwrap();
        let members: Vec<&Mts> = ds.iter().filter(|&(_, l)| l == 1).map(|(s, _)| s).collect();
        for s in &out {
            for t in 0..s.len() {
                let v = s.value(0, t);
                let lo = members.iter().map(|m| m.value(0, t)).fold(f64::INFINITY, f64::min);
                let hi = members.iter().map(|m| m.value(0, t)).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn range_noise_never_flips_1nn_label(ds in dataset(4..8, 3..6), seed in 0u64..1000) {
        let out = RangeNoise::default().synthesize(&ds, 1, 6, &mut seeded(seed)).unwrap();
        for s in &out {
            let (label, _) = ds
                .iter()
                .map(|(m, l)| (l, m.euclidean_distance(s)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            prop_assert_eq!(label, 1);
        }
    }

    #[test]
    fn synthesize_count_contract(ds in dataset(3..7, 2..5), count in 1usize..12, seed in 0u64..1000) {
        for aug in [
            &NoiseInjection::level(1.0) as &dyn Augmenter,
            &Smote::default(),
        ] {
            let out = aug.synthesize(&ds, 1, count, &mut seeded(seed)).unwrap();
            prop_assert_eq!(out.len(), count, "{}", aug.name());
        }
    }
}
