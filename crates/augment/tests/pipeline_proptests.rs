//! Property-based tests of the declarative pipeline TOML parser:
//! arbitrary input never panics, valid configs round-trip through
//! `Display`, and malformed configs come back as typed `Parse` errors
//! (with 1-based line numbers), never panics. The parser sits on the
//! served `augment` path — a panic there is a remote crash.

use proptest::prelude::*;
use tsda_augment::declarative::{AugPipeline, PipelineConfig, KNOWN_STAGES};
use tsda_core::TsdaError;

/// Bytes over the full range: NULs, control bytes, invalid UTF-8.
fn byte_soup() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255, 0..512)
}

/// Printable near-miss TOML: the charset of real configs plus the
/// punctuation the state machine branches on, newline included.
fn toml_soup() -> impl Strategy<Value = String> {
    let alphabet: Vec<char> =
        "abcdefghijklmnop_-0123456789[]\"=.,# \n\tchoseprbnam".chars().collect();
    proptest::collection::vec(0usize..alphabet.len(), 0..256)
        .prop_map(move |idx| idx.into_iter().map(|i| alphabet[i]).collect())
}

/// A valid pipeline name: lowercase identifier, 1–12 chars.
fn ident() -> impl Strategy<Value = String> {
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789_-".chars().collect();
    (0usize..26, proptest::collection::vec(0usize..alphabet.len(), 0..11)).prop_map(
        move |(first, rest)| {
            let mut name = String::new();
            name.push(alphabet[first]);
            name.extend(rest.into_iter().map(|i| alphabet[i]));
            name
        },
    )
}

/// One valid stage body: a nonempty subset of known stage names plus a
/// finite probability in [0, 1].
fn stage() -> impl Strategy<Value = (Vec<String>, f64)> {
    (proptest::collection::vec(0usize..KNOWN_STAGES.len(), 1..4), 0.0f64..=1.0).prop_map(
        |(idx, prob)| {
            let mut choose: Vec<String> =
                idx.into_iter().map(|i| KNOWN_STAGES[i].to_string()).collect();
            choose.sort();
            choose.dedup();
            (choose, prob)
        },
    )
}

/// Generated shape of one pipeline: (name, [(choose, prob)]).
type PipelineParts = (String, Vec<(Vec<String>, f64)>);

/// A whole valid config: 1–3 uniquely-named pipelines of 1–3 stages.
fn config_parts() -> impl Strategy<Value = Vec<PipelineParts>> {
    proptest::collection::vec((ident(), proptest::collection::vec(stage(), 1..4)), 1..4).prop_map(
        |parts| {
            let mut seen = std::collections::BTreeSet::new();
            parts.into_iter().filter(|(n, _)| seen.insert(n.clone())).collect()
        },
    )
}

/// A probability the parser must reject: out of [0, 1] or non-finite.
fn bad_prob() -> impl Strategy<Value = f64> {
    (0usize..4, 0.0f64..1e6).prop_map(|(kind, mag)| match kind {
        0 => 1.0 + (1.0 + mag),
        1 => -(1e-3 + mag),
        2 => f64::NAN,
        _ => f64::INFINITY,
    })
}

/// Render a config from generated parts, in the same shape `Display`
/// emits so the round trip is comparable.
fn render(pipelines: &[PipelineParts]) -> String {
    let mut out = String::new();
    for (name, stages) in pipelines {
        out.push_str(&format!("[pipeline]\nname = \"{name}\"\n\n"));
        for (choose, prob) in stages {
            let quoted: Vec<String> = choose.iter().map(|c| format!("{c:?}")).collect();
            out.push_str(&format!(
                "[[stage]]\nchoose = [{}]\nprob = {prob}\n\n",
                quoted.join(", ")
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    // Byte soup through the parser: any outcome but a panic is fine.
    fn arbitrary_bytes_never_panic(bytes in byte_soup()) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = PipelineConfig::parse(&text);
    }

    #[test]
    // Structured-looking noise exercises the state machine deeper than
    // raw bytes: section headers, quotes, and arrays that almost parse.
    fn arbitrary_text_never_panics(text in toml_soup()) {
        let _ = PipelineConfig::parse(&text);
    }

    #[test]
    // Valid config → Display → parse is the identity, and every parsed
    // pipeline builds into an executable AugPipeline.
    fn valid_configs_round_trip_through_display(parts in config_parts()) {
        let text = render(&parts);
        let cfg = match PipelineConfig::parse(&text) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(format!("generated config rejected: {e:?}"))),
        };
        prop_assert_eq!(cfg.pipelines.len(), parts.len());
        let redisplayed = cfg.to_string();
        let reparsed = match PipelineConfig::parse(&redisplayed) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(format!("Display output rejected: {e:?}"))),
        };
        prop_assert_eq!(&cfg, &reparsed, "Display round trip changed the config");
        let built = match AugPipeline::from_config(&cfg) {
            Ok(b) => b,
            Err(e) => return Err(TestCaseError::fail(format!("valid config failed to build: {e:?}"))),
        };
        prop_assert_eq!(built.len(), cfg.pipelines.len());
    }

    #[test]
    // Unknown stage names are a typed Parse error naming the line.
    fn unknown_stage_names_are_typed_errors(name in ident()) {
        // Make the generated name unknown without discarding the case.
        let mut name = name;
        while KNOWN_STAGES.contains(&name.as_str()) {
            name.push('q');
        }
        let text = format!("[pipeline]\nname = \"p\"\n[[stage]]\nchoose = [\"{name}\"]\n");
        match PipelineConfig::parse(&text) {
            Err(TsdaError::Parse { line, message }) => {
                prop_assert_eq!(line, 4, "error should blame the choose line");
                prop_assert!(message.contains(&name), "{}", message);
            }
            other => prop_assert!(false, "expected Parse error, got {:?}", other),
        }
    }

    #[test]
    // Probabilities outside [0, 1] (and non-finite ones) are typed
    // Parse errors, never panics and never silently clamped.
    fn out_of_range_probs_are_typed_errors(prob in bad_prob()) {
        let text =
            format!("[pipeline]\nname = \"p\"\n[[stage]]\nchoose = [\"jitter\"]\nprob = {prob}\n");
        match PipelineConfig::parse(&text) {
            Err(TsdaError::Parse { line, .. }) => prop_assert_eq!(line, 5),
            other => prop_assert!(false, "expected Parse error, got {:?}", other),
        }
    }
}
