//! `tsda_analyze` — run the workspace lints from the command line.
//!
//! ```text
//! tsda_analyze [--root DIR] [--config FILE] [--format text|json] [--verbose]
//! ```
//!
//! Exit codes (stable, for CI):
//!
//! * `0` — no unallowlisted findings.
//! * `1` — at least one unallowlisted finding (report on stdout).
//! * `2` — usage, IO, or config error (message on stderr).

use std::path::PathBuf;
use std::process::ExitCode;
use tsda_analyze::config::Config;

enum Format {
    Text,
    Json,
}

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: find_workspace_root(),
        config: None,
        format: Format::Text,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("--format must be text or json, got {other:?}")),
                };
            }
            "--verbose" | "-v" => args.verbose = true,
            "--help" | "-h" => {
                println!(
                    "usage: tsda_analyze [--root DIR] [--config FILE] \
                     [--format text|json] [--verbose]\n\
                     exit codes: 0 clean, 1 findings, 2 usage/config error"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Walk up from the current directory to the first `analyze.toml`, so
/// the bin works from any crate dir; fall back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("analyze.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let cfg_path = args.config.clone().unwrap_or_else(|| args.root.join("analyze.toml"));
    let text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("read config {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&text).map_err(|e| format!("{}: {e}", cfg_path.display()))?;
    let report = tsda_analyze::analyze(&args.root, &cfg)?;
    match args.format {
        Format::Text => print!("{}", report.to_text(args.verbose)),
        Format::Json => println!("{}", report.to_json()),
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("tsda_analyze: {e}");
            ExitCode::from(2)
        }
    }
}
