//! `tsda_analyze` — run the workspace lints from the command line.
//!
//! ```text
//! tsda_analyze [--root DIR] [--config FILE] [--format text|json|sarif]
//!              [--baseline FILE] [--write-baseline FILE]
//!              [--explain RULE] [--fix-stale] [--verbose]
//! ```
//!
//! `--fix-stale` rewrites the config file in place, deleting every
//! `[[allow]]` block the run reported as unused (stale) while leaving
//! all other lines — comments included — byte-for-byte intact.
//!
//! Exit codes (stable, for CI):
//!
//! * `0` — no unallowlisted findings (with `--baseline`: none beyond
//!   the baseline; with `--write-baseline`: baseline written).
//! * `1` — at least one gating finding (report on stdout).
//! * `2` — usage, IO, or config error (message on stderr).

use std::path::PathBuf;
use std::process::ExitCode;
use tsda_analyze::config::Config;
use tsda_analyze::{baseline, docs, sarif};

enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    fix_stale: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: find_workspace_root(),
        config: None,
        format: Format::Text,
        baseline: None,
        write_baseline: None,
        fix_stale: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => {
                        return Err(format!("--format must be text, json, or sarif, got {other:?}"))
                    }
                };
            }
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(value("--write-baseline")?));
            }
            "--explain" => {
                let rule = value("--explain")?;
                return match docs::explain(&rule) {
                    Some(text) => {
                        println!("{text}");
                        std::process::exit(0);
                    }
                    None => Err(format!(
                        "unknown rule {rule:?}; known rules: {}",
                        docs::RULE_DOCS.iter().map(|d| d.id).collect::<Vec<_>>().join(", ")
                    )),
                };
            }
            "--fix-stale" => args.fix_stale = true,
            "--verbose" | "-v" => args.verbose = true,
            "--help" | "-h" => {
                println!(
                    "usage: tsda_analyze [--root DIR] [--config FILE] \
                     [--format text|json|sarif]\n\
                     \x20                   [--baseline FILE] [--write-baseline FILE] \
                     [--explain RULE] [--fix-stale] [--verbose]\n\
                     exit codes: 0 clean, 1 findings, 2 usage/config error\n\
                     rules: {}",
                    docs::RULE_DOCS.iter().map(|d| d.id).collect::<Vec<_>>().join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.baseline.is_some() && args.write_baseline.is_some() {
        return Err("--baseline and --write-baseline are mutually exclusive".to_string());
    }
    Ok(args)
}

/// Walk up from the current directory to the first `analyze.toml`, so
/// the bin works from any crate dir; fall back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("analyze.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let cfg_path = args.config.clone().unwrap_or_else(|| args.root.join("analyze.toml"));
    let text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("read config {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&text).map_err(|e| format!("{}: {e}", cfg_path.display()))?;
    let mut report = tsda_analyze::analyze(&args.root, &cfg)?;

    if args.fix_stale {
        if report.unused_allow.is_empty() {
            println!("no stale allowlist entries in {}", cfg_path.display());
        } else {
            let pruned = tsda_analyze::config::prune_stale(&text, &report.unused_allow);
            std::fs::write(&cfg_path, &pruned)
                .map_err(|e| format!("write config {}: {e}", cfg_path.display()))?;
            println!(
                "pruned {} stale allowlist entrie(s) from {}",
                report.unused_allow.len(),
                cfg_path.display()
            );
            report.unused_allow.clear();
        }
    }

    if let Some(path) = &args.write_baseline {
        let body = baseline::write(&report.findings);
        std::fs::write(path, body)
            .map_err(|e| format!("write baseline {}: {e}", path.display()))?;
        println!(
            "wrote baseline with {} finding(s) to {}",
            report.findings.len(),
            path.display()
        );
        return Ok(true);
    }

    let mut suppressed = 0usize;
    if let Some(path) = &args.baseline {
        let body = std::fs::read_to_string(path)
            .map_err(|e| format!("read baseline {}: {e}", path.display()))?;
        let entries = baseline::parse(&body).map_err(|e| format!("{}: {e}", path.display()))?;
        let diff = baseline::compare(&report.findings, &entries);
        suppressed = diff.suppressed;
        for e in &diff.stale {
            eprintln!(
                "warning: stale baseline entry: rule {} path {:?} snippet {:?}",
                e.rule, e.path, e.snippet
            );
        }
        // Only findings beyond the baseline gate the run.
        report.findings = diff.new_findings;
    }

    match args.format {
        Format::Text => {
            print!("{}", report.to_text(args.verbose));
            if args.baseline.is_some() {
                println!("{suppressed} finding(s) suppressed by baseline");
            }
            if args.verbose {
                for (rule, ms) in &report.timings {
                    println!("timing: {rule} {ms:.3} ms");
                }
            }
        }
        Format::Json => println!("{}", report.to_json()),
        Format::Sarif => println!("{}", sarif::to_sarif(&report)),
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("tsda_analyze: {e}");
            ExitCode::from(2)
        }
    }
}
