//! Intra-procedural CFG-lite dataflow over the parsed function bodies,
//! and the four rules built on it: L1 (lock-order cycles), L2 (guard
//! held across blocking), T1 (untrusted-length taint), C1 (lossy wire
//! casts).
//!
//! The pass stays token-level like everything else in this crate (no
//! `syn` in the container), but recovers just enough structure to be
//! useful: statement/expression segments, guard-binding liveness
//! regions, and branch-condition facts (a comparison against a named
//! `SCREAMING_CASE` bound const clears taint from that point on).
//!
//! | rule | question | scope |
//! |------|----------|-------|
//! | L1 | can two locks be acquired in opposite orders on any pair of call chains? | holders in `[rules.L1].crates`, summaries over the whole graph |
//! | L2 | is a live `MutexGuard`/`RwLock` guard spanning a call that (transitively) blocks? | `[rules.L2].crates`, lib, non-test |
//! | T1 | does a wire-derived length reach `with_capacity`/`vec!`/`resize`/indexing before a named bound check? | files in `[rules.T1].paths`, non-test |
//! | C1 | is a wire-derived integer truncated with `as` instead of `try_into`/a bound? | files in `[rules.T1].paths`, non-test |
//!
//! What counts as what:
//!
//! * **Acquisition** — a zero-argument `.lock()` / `.read()` /
//!   `.write()` whose receiver's last path segment is an identifier
//!   (`self.child.lock()` acquires lock `child`). The empty argument
//!   list is the discriminator against IO: `stream.read(buf)` has an
//!   argument, `rwlock.read()` does not.
//! * **Guard liveness** — a binding produced by an acquisition lives
//!   from its `let` to the end of the enclosing block, a depth-0
//!   `drop(name)`, or (for `if let` / `match` arms) the end of the
//!   arm/block that bound it. Acquisitions not captured by a binding
//!   are live to the end of their statement.
//! * **Blocking** — a call named in [`BLOCKING_CALLS`] (with arguments,
//!   for the `read`/`write` pair), or a call resolving to a workspace
//!   function that transitively reaches one. A blocking call that takes
//!   the guard itself as an argument (condvar `wait(guard)`) releases
//!   the lock and is exempt.
//! * **Taint** — values produced by zero-argument `ByteReader`-shaped
//!   accessors (`.u8()`/`.u16()`/`.u32()`/`.u64()`/`.usize()`/
//!   `.f32()`/`.f64()`/`.string()`) or `uNN::from_le_bytes`, and any
//!   `let` binding whose initializer contains one. Cleared by a
//!   segment that compares the value against an all-caps bound const
//!   (`if len > MAX_FRAME`, `(5..=MAX_FRAME).contains(&len)`,
//!   `n.min(MAX)`) or routes it through a `checked_len` helper.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::interproc::{chain_text, file_of, push_at};
use crate::lexer::{Tok, TokKind};
use crate::parser::FnDef;
use crate::rules::Finding;
use crate::workspace::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;

/// Calls that park the thread (IO, channels, joins, sleeps). `read`
/// and `write` only count with a non-empty argument list — the
/// zero-argument forms are `RwLock` acquisitions.
const BLOCKING_CALLS: &[&str] = &[
    "read",
    "write",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "write_all",
    "write_fmt",
    "write_vectored",
    "flush",
    "accept",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "join",
    "park",
    "sleep",
    "wait",
    "wait_timeout",
    "wait_while",
    "connect",
    "copy",
];

/// Zero-argument reader methods whose result is wire-controlled.
const TAINT_READS: &[&str] = &["u8", "u16", "u32", "u64", "usize", "f32", "f64", "string"];

/// Helpers that impose a bound on a raw length (see
/// `tsda_serve::proto2::checked_len`); calling one clears taint.
const BOUND_HELPERS: &[&str] = &["checked_len", "checked_u32_len"];

// ------------------------------------------------------------- facts

/// One lock-acquisition site.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Lock identity: the receiver's last path segment (`child` in
    /// `replica.child.lock()`).
    pub lock: String,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the `lock`/`read`/`write` ident.
    pub tok: usize,
}

/// A guard with the token region where it is live.
#[derive(Debug, Clone)]
pub struct GuardRegion {
    /// Binding name; empty for a temporary (guard dropped at the end
    /// of its own statement).
    pub name: String,
    /// Lock identity the guard holds.
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Token indices (into the file stream) where the guard is live.
    pub region: Range<usize>,
}

/// Per-function dataflow facts.
#[derive(Debug, Default)]
pub struct FnFlow {
    pub acquires: Vec<Acquire>,
    pub guards: Vec<GuardRegion>,
}

/// Compute acquisition sites and guard-liveness regions for one body.
pub fn function_flow(toks: &[Tok], body: Range<usize>) -> FnFlow {
    let acquires = acquisitions(toks, body.clone());
    let guards = guard_regions(toks, body, &acquires);
    FnFlow { acquires, guards }
}

fn is_acquire_name(t: &Tok) -> bool {
    t.is_ident("lock") || t.is_ident("read") || t.is_ident("write")
}

/// All zero-argument `.lock()`/`.read()`/`.write()` sites in `body`
/// whose receiver names a field or local. `stdout().lock()` and
/// friends have a `)` receiver and are skipped — a `StdoutLock` is a
/// stream handle, not a synchronisation guard.
fn acquisitions(toks: &[Tok], body: Range<usize>) -> Vec<Acquire> {
    let mut out = Vec::new();
    for i in body.clone() {
        if !is_acquire_name(&toks[i]) {
            continue;
        }
        if i < 2 || !toks[i - 1].is_punct('.') || toks[i - 2].kind != TokKind::Ident {
            continue;
        }
        let zero_arg = toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
        if !zero_arg {
            continue;
        }
        out.push(Acquire { lock: toks[i - 2].text.clone(), line: toks[i].line, tok: i });
    }
    out
}

/// Index of the token closing the group opened at `open`, or `end`.
fn match_close(toks: &[Tok], open: usize, end: usize, o: char, c: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if toks[i].is_punct(o) {
            depth += 1;
        } else if toks[i].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end
}

/// First `;` at brace/paren/bracket depth 0 in `from..end`, or `end`.
#[allow(clippy::needless_range_loop)] // index is the scan result
fn statement_end(toks: &[Tok], from: usize, end: usize) -> usize {
    let mut depth = 0i32;
    for i in from..end {
        match () {
            _ if toks[i].is_punct('{') || toks[i].is_punct('(') || toks[i].is_punct('[') => {
                depth += 1;
            }
            _ if toks[i].is_punct('}') || toks[i].is_punct(')') || toks[i].is_punct(']') => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            _ if toks[i].is_punct(';') && depth == 0 => return i,
            _ => {}
        }
    }
    end
}

/// End of the enclosing block for a binding introduced at `from`: the
/// first depth-0 `drop(name)` or the `}` that closes the block.
fn liveness_end(toks: &[Tok], from: usize, end: usize, name: &str) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < end {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return i;
            }
        } else if depth == 0
            && !name.is_empty()
            && toks[i].is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_ident(name))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            return i;
        }
        i += 1;
    }
    end
}

/// Does `span` consist solely of post-acquisition trailers that keep
/// the guard (`?`, `.unwrap()`, `.expect(..)`, `.map_err(..)`)? A
/// `.map(..)`/`.ok()` tail transforms the guard away, so the binding
/// is no longer one.
fn is_guard_tail(toks: &[Tok], mut i: usize, end: usize) -> bool {
    while i < end {
        if toks[i].is_punct('?') {
            i += 1;
            continue;
        }
        if toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect") || t.is_ident("map_err"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            i = match_close(toks, i + 2, end, '(', ')') + 1;
            continue;
        }
        return false;
    }
    true
}

/// Binding names that are pattern keywords, not fresh guards.
fn bindable(t: &Tok) -> bool {
    t.kind == TokKind::Ident
        && !matches!(t.text.as_str(), "Some" | "None" | "Ok" | "Err" | "_" | "mut" | "ref")
}

/// `Ok ( [mut] NAME )` pattern occurrences in `span`, in order.
fn ok_bound_names(toks: &[Tok], span: Range<usize>) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = span.start;
    while i < span.end {
        if toks[i].is_ident("Ok") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let mut j = i + 2;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(bindable)
                && toks.get(j + 1).is_some_and(|t| t.is_punct(')'))
            {
                names.push(toks[j].text.clone());
            }
        }
        i += 1;
    }
    names
}

/// Does a `match` initializer contain an identity arm `Ok([mut] g) =>
/// g`? If so the surrounding `let` binds the guard itself.
fn has_identity_ok_arm(toks: &[Tok], span: Range<usize>) -> bool {
    let mut i = span.start;
    while i + 5 < span.end {
        if toks[i].is_ident("Ok") && toks[i + 1].is_punct('(') {
            let mut j = i + 2;
            if toks[j].is_ident("mut") {
                j += 1;
            }
            if j + 4 < span.end
                && bindable(&toks[j])
                && toks[j + 1].is_punct(')')
                && toks[j + 2].is_punct('=')
                && toks[j + 3].is_punct('>')
                && toks[j + 4].is_ident(&toks[j].text)
                && toks
                    .get(j + 5)
                    .is_some_and(|t| t.is_punct(',') || t.is_punct('}'))
            {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// Guard-liveness regions for every acquisition in `body`.
#[allow(clippy::needless_range_loop)] // index is the scan result
fn guard_regions(toks: &[Tok], body: Range<usize>, acquires: &[Acquire]) -> Vec<GuardRegion> {
    let mut out: Vec<GuardRegion> = Vec::new();
    let acq_in = |span: &Range<usize>| -> Vec<&Acquire> {
        acquires.iter().filter(|a| span.contains(&a.tok)).collect()
    };

    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];

        // `let [mut] NAME = INIT ;` — the workhorse pattern.
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let name_ok = toks.get(j).is_some_and(bindable)
                && toks.get(j + 1).is_some_and(|t| t.is_punct('='))
                && !toks.get(j + 2).is_some_and(|t| t.is_punct('='));
            if name_ok {
                let init = j + 2..statement_end(toks, j + 2, body.end);
                let inits = acq_in(&init);
                if let Some(first) = inits.first() {
                    let is_match = toks.get(init.start).is_some_and(|t| t.is_ident("match"));
                    let binds_guard = if is_match {
                        has_identity_ok_arm(toks, init.clone())
                    } else {
                        is_guard_tail(toks, first.tok + 3, init.end)
                    };
                    if binds_guard {
                        let start = init.end + 1;
                        let end = liveness_end(toks, start, body.end, &toks[j].text);
                        out.push(GuardRegion {
                            name: toks[j].text.clone(),
                            lock: first.lock.clone(),
                            line: first.line,
                            region: start..end,
                        });
                        i = init.end;
                        continue;
                    }
                }
            }
        }

        // `if let` / `while let` with `Ok(..)` guard patterns.
        if (t.is_ident("if") || t.is_ident("while"))
            && toks.get(i + 1).is_some_and(|t| t.is_ident("let"))
        {
            // Pattern runs to the depth-0 `=`; init runs to the `{`.
            let mut depth = 0i32;
            let mut eq = None;
            for k in i + 2..body.end {
                if toks[k].is_punct('(') || toks[k].is_punct('[') {
                    depth += 1;
                } else if toks[k].is_punct(')') || toks[k].is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && toks[k].is_punct('=') && !toks[k + 1].is_punct('=') {
                    eq = Some(k);
                    break;
                } else if toks[k].is_punct('{') {
                    break;
                }
            }
            if let Some(eq) = eq {
                let mut depth = 0i32;
                let mut open = None;
                for k in eq + 1..body.end {
                    if toks[k].is_punct('(') || toks[k].is_punct('[') {
                        depth += 1;
                    } else if toks[k].is_punct(')') || toks[k].is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && toks[k].is_punct('{') {
                        open = Some(k);
                        break;
                    }
                }
                if let Some(open) = open {
                    let close = match_close(toks, open, body.end, '{', '}');
                    let names = ok_bound_names(toks, i + 2..eq);
                    let inits = acq_in(&(eq + 1..open));
                    for (name, acq) in names.iter().zip(inits.iter()) {
                        out.push(GuardRegion {
                            name: name.clone(),
                            lock: acq.lock.clone(),
                            line: acq.line,
                            region: open + 1..close,
                        });
                    }
                    i = open + 1;
                    continue;
                }
            }
        }

        // `match INIT { .. Ok([mut] NAME) => ARM .. }` — each arm that
        // binds the guard holds it for the arm body.
        if t.is_ident("match") {
            let mut depth = 0i32;
            let mut open = None;
            for k in i + 1..body.end {
                if toks[k].is_punct('(') || toks[k].is_punct('[') {
                    depth += 1;
                } else if toks[k].is_punct(')') || toks[k].is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && toks[k].is_punct('{') {
                    open = Some(k);
                    break;
                }
            }
            if let Some(open) = open {
                let close = match_close(toks, open, body.end, '{', '}');
                let inits = acq_in(&(i + 1..open));
                if let Some(acq) = inits.first() {
                    let mut k = open + 1;
                    while k < close {
                        if toks[k].is_ident("Ok") && toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
                            let mut j = k + 2;
                            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                                j += 1;
                            }
                            if toks.get(j).is_some_and(bindable)
                                && toks.get(j + 1).is_some_and(|t| t.is_punct(')'))
                                && toks.get(j + 2).is_some_and(|t| t.is_punct('='))
                                && toks.get(j + 3).is_some_and(|t| t.is_punct('>'))
                            {
                                let arm_start = j + 4;
                                let arm_end = arm_body_end(toks, arm_start, close);
                                out.push(GuardRegion {
                                    name: toks[j].text.clone(),
                                    lock: acq.lock.clone(),
                                    line: acq.line,
                                    region: arm_start..arm_end,
                                });
                                k = arm_end;
                                continue;
                            }
                        }
                        k += 1;
                    }
                }
            }
        }

        i += 1;
    }

    // Acquisitions not captured by any named region above are
    // temporaries: live to the end of their statement.
    for a in acquires {
        let captured = out.iter().any(|g| {
            // Captured if a region was derived from a statement or
            // header containing this site.
            a.tok < g.region.start && g.region.start.saturating_sub(a.tok) < 512 && a.lock == g.lock
        });
        if !captured {
            out.push(GuardRegion {
                name: String::new(),
                lock: a.lock.clone(),
                line: a.line,
                region: a.tok + 3..statement_end(toks, a.tok + 3, body.end),
            });
        }
    }
    out.sort_by_key(|g| (g.region.start, g.region.end));
    out
}

/// End of a match arm starting right after `=>`: the matching brace
/// for a block arm, else the depth-0 `,` (or the match's `}`).
#[allow(clippy::needless_range_loop)] // index is the scan result
fn arm_body_end(toks: &[Tok], start: usize, close: usize) -> usize {
    if toks.get(start).is_some_and(|t| t.is_punct('{')) {
        return match_close(toks, start, close, '{', '}');
    }
    let mut depth = 0i32;
    for i in start..close {
        if toks[i].is_punct('(') || toks[i].is_punct('[') || toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct(')') || toks[i].is_punct(']') || toks[i].is_punct('}') {
            depth -= 1;
        } else if depth == 0 && toks[i].is_punct(',') {
            return i;
        }
    }
    close
}

// ------------------------------------------------- container locals

/// Constructor shapes that pin a local to a std container type.
const CONTAINER_TYPES: &[&str] =
    &["Vec", "VecDeque", "String", "BTreeMap", "BTreeSet", "BinaryHeap"];

/// Locals provably bound to std containers (`let mut v = Vec::new()`,
/// `let s: String = ..`, `let v = vec![..]`): a `.method()` on such a
/// receiver can never invoke a workspace method, so the call graph
/// drops those candidates (see [`crate::callgraph`]).
///
/// Sound only when every binding of the name is container-shaped *and*
/// the name's first occurrence in the body is one of those `let`s — a
/// parameter or earlier non-container binding of the same name keeps
/// the conservative resolution.
pub fn container_locals(toks: &[Tok], body: Range<usize>) -> BTreeSet<String> {
    let mut container: BTreeMap<String, bool> = BTreeMap::new();
    let mut first_is_let: BTreeMap<String, bool> = BTreeMap::new();
    for i in body.clone() {
        if toks[i].kind == TokKind::Ident && !first_is_let.contains_key(&toks[i].text) {
            let after_let = i >= 1
                && (toks[i - 1].is_ident("let")
                    || (toks[i - 1].is_ident("mut") && i >= 2 && toks[i - 2].is_ident("let")));
            first_is_let.insert(toks[i].text.clone(), after_let);
        }
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j).filter(|t| bindable(t)) else { continue };
        let end = statement_end(toks, j + 1, body.end);
        let is_container = container_shaped(toks, j + 1..end);
        let e = container.entry(name.text.clone()).or_insert(true);
        *e &= is_container;
    }
    container
        .into_iter()
        .filter(|(name, ok)| *ok && first_is_let.get(name).copied().unwrap_or(false))
        .map(|(name, _)| name)
        .collect()
}

/// Does a `let` declaration span (`: ty = init` part) pin the binding
/// to a std container?
fn container_shaped(toks: &[Tok], span: Range<usize>) -> bool {
    // `: Vec<..>` type ascription.
    if toks.get(span.start).is_some_and(|t| t.is_punct(':'))
        && toks
            .get(span.start + 1)
            .is_some_and(|t| CONTAINER_TYPES.iter().any(|c| t.is_ident(c)))
    {
        return true;
    }
    let mut i = span.start;
    while i < span.end {
        let t = &toks[i];
        // `Vec::new()` / `String::with_capacity(..)` constructors.
        if CONTAINER_TYPES.iter().any(|c| t.is_ident(c))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            return true;
        }
        // `vec![..]` / `format!(..)` macros.
        if (t.is_ident("vec") || t.is_ident("format"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            return true;
        }
        // `.to_vec()` / `.to_string()` tails.
        if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is_ident("to_vec") || t.is_ident("to_string"))
        {
            return true;
        }
        i += 1;
    }
    false
}

// ------------------------------------------------------------ runner

/// Run L1/L2/T1/C1 and append findings, with per-rule wall time.
pub fn run_dataflow_timed(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
    timings: &mut Vec<(String, f64)>,
) {
    let flows: Vec<FnFlow> = graph
        .fns
        .iter()
        .map(|f| match file_of(files, f) {
            Some(file) if !f.in_test && file.kind == FileKind::Lib => {
                function_flow(&file.toks, f.body.clone())
            }
            _ => FnFlow::default(),
        })
        .collect();

    let t0 = std::time::Instant::now();
    check_l1(files, graph, &flows, cfg, findings);
    timings.push(("L1".to_string(), crate::rules::ms_since(t0)));
    let t0 = std::time::Instant::now();
    check_l2(files, graph, &flows, cfg, findings);
    timings.push(("L2".to_string(), crate::rules::ms_since(t0)));
    let t0 = std::time::Instant::now();
    check_taint(files, graph, cfg, TaintMode::Lengths, findings);
    timings.push(("T1".to_string(), crate::rules::ms_since(t0)));
    let t0 = std::time::Instant::now();
    check_taint(files, graph, cfg, TaintMode::Casts, findings);
    timings.push(("C1".to_string(), crate::rules::ms_since(t0)));
}

// ---------------------------------------------------------------- L1

/// One lock-order edge `from -> to` with the holder-side provenance.
struct LockEdge {
    path: String,
    line: u32,
    via: String,
}

fn check_l1(
    files: &[SourceFile],
    graph: &CallGraph,
    flows: &[FnFlow],
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    if cfg.l1_crates.is_empty() {
        return;
    }
    // Transitive lock summaries: every lock a call into `f` may take.
    let direct: Vec<BTreeSet<&str>> = flows
        .iter()
        .map(|fl| fl.acquires.iter().map(|a| a.lock.as_str()).collect())
        .collect();
    let mut summary = direct.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..graph.fns.len() {
            for e in &graph.edges[id] {
                if e.to == id {
                    continue;
                }
                let add: Vec<&str> =
                    summary[e.to].iter().filter(|l| !summary[id].contains(*l)).copied().collect();
                if !add.is_empty() {
                    changed = true;
                    summary[id].extend(add);
                }
            }
        }
    }

    // Edge map, first provenance wins (fns are in (path, line) order).
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    for (id, f) in graph.fns.iter().enumerate() {
        if !cfg.l1_crates.iter().any(|c| c == &f.crate_name) {
            continue;
        }
        // Guards bound by the same `if let`/`while let` header (tuple
        // patterns) hold simultaneously, in acquisition order — regions
        // are identical so neither contains the other's site.
        for w in flows[id].guards.windows(2) {
            if w[0].region == w[1].region && !w[0].name.is_empty() && !w[1].name.is_empty() {
                edges.entry((w[0].lock.clone(), w[1].lock.clone())).or_insert_with(|| LockEdge {
                    path: f.rel_path.clone(),
                    line: w[1].line,
                    via: format!("{} ({}:{})", f.qual_name(), f.rel_path, w[1].line),
                });
            }
        }
        for g in &flows[id].guards {
            // Direct nested acquisitions under this guard.
            for a in &flows[id].acquires {
                if g.region.contains(&a.tok) {
                    edges.entry((g.lock.clone(), a.lock.clone())).or_insert_with(|| LockEdge {
                        path: f.rel_path.clone(),
                        line: a.line,
                        via: format!("{} ({}:{})", f.qual_name(), f.rel_path, a.line),
                    });
                }
            }
            // Calls under the guard, through their lock summaries.
            for e in &graph.edges[id] {
                let call = &f.calls[e.call_idx];
                if !g.region.contains(&call.tok) || summary[e.to].is_empty() {
                    continue;
                }
                let parents = graph.reach_with_parents(&[e.to]);
                for lock in &summary[e.to] {
                    let Some(&acquirer) =
                        parents.keys().find(|&&t| direct[t].contains(lock))
                    else {
                        continue;
                    };
                    edges
                        .entry((g.lock.clone(), lock.to_string()))
                        .or_insert_with(|| LockEdge {
                            path: f.rel_path.clone(),
                            line: call.line,
                            via: format!(
                                "{} ({}:{}) -> {}",
                                f.qual_name(),
                                f.rel_path,
                                call.line,
                                chain_text(graph, &parents, acquirer)
                            ),
                        });
                }
            }
        }
    }

    // Shortest cycle through each start lock; report each cycle once,
    // anchored at its smallest lock name.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let Some(cycle) = shortest_cycle(&adj, start) else { continue };
        if cycle.iter().any(|n| *n < start) {
            continue; // reported from its smallest node
        }
        let hops: Vec<String> = cycle
            .windows(2)
            .map(|w| {
                let e = &edges[&(w[0].to_string(), w[1].to_string())];
                format!("acquires `{}` while holding `{}` via {}", w[1], w[0], e.via)
            })
            .collect();
        let order = cycle.iter().map(|n| format!("`{n}`")).collect::<Vec<_>>().join(" -> ");
        let anchor = &edges[&(cycle[0].to_string(), cycle[1].to_string())];
        push_at(
            findings,
            files,
            "L1",
            &anchor.path.clone(),
            anchor.line,
            format!("lock-order cycle: {order}; {}", hops.join("; ")),
        );
    }
}

/// BFS for the shortest `start -> .. -> start` node path, inclusive.
fn shortest_cycle<'a>(adj: &BTreeMap<&'a str, Vec<&'a str>>, start: &'a str) -> Option<Vec<&'a str>> {
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back(start);
    while let Some(at) = queue.pop_front() {
        for &next in adj.get(at).into_iter().flatten() {
            if next == start {
                let mut rev = vec![start, at];
                let mut cur = at;
                while cur != start {
                    cur = parent[cur];
                    rev.push(cur);
                }
                rev.reverse();
                return Some(rev);
            }
            if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(next) {
                v.insert(at);
                queue.push_back(next);
            }
        }
    }
    None
}

// ---------------------------------------------------------------- L2

fn check_l2(
    files: &[SourceFile],
    graph: &CallGraph,
    flows: &[FnFlow],
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    if cfg.l2_crates.is_empty() {
        return;
    }
    // A call blocks directly when its name is in the set (read/write
    // need arguments — zero-arg forms are RwLock acquisitions).
    let blocks_directly = |file: &SourceFile, f: &FnDef, call_idx: usize| -> Option<String> {
        let call = &f.calls[call_idx];
        if !BLOCKING_CALLS.contains(&call.name.as_str()) {
            return None;
        }
        if matches!(call.name.as_str(), "read" | "write") && !call_has_args(&file.toks, call.tok) {
            return None;
        }
        Some(call.name.clone())
    };

    // Transitively-blocking functions, by reverse propagation from the
    // direct sites.
    let mut blocking: Vec<Option<String>> = graph
        .fns
        .iter()
        .map(|f| {
            if f.in_test {
                return None;
            }
            let file = file_of(files, f)?;
            (0..f.calls.len()).find_map(|ci| blocks_directly(file, f, ci))
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..graph.fns.len() {
            if blocking[id].is_some() {
                continue;
            }
            if let Some(op) =
                graph.edges[id].iter().find_map(|e| blocking[e.to].clone())
            {
                blocking[id] = Some(op);
                changed = true;
            }
        }
    }

    for (id, f) in graph.fns.iter().enumerate() {
        if f.in_test || !cfg.l2_crates.iter().any(|c| c == &f.crate_name) {
            continue;
        }
        let Some(file) = file_of(files, f) else { continue };
        if file.kind != FileKind::Lib {
            continue;
        }
        for g in &flows[id].guards {
            for (call_idx, call) in f.calls.iter().enumerate() {
                if !g.region.contains(&call.tok) {
                    continue;
                }
                // Condvar-style `wait(guard)` releases the lock.
                if !g.name.is_empty() && call_args_contain(&file.toks, call.tok, &g.name) {
                    continue;
                }
                if let Some(op) = blocks_directly(file, f, call_idx) {
                    push_at(
                        findings,
                        files,
                        "L2",
                        &f.rel_path,
                        call.line,
                        format!(
                            "`{}` guard (acquired line {}) is held across blocking `{op}` — \
                             take what you need and drop the guard before blocking",
                            g.lock, g.line
                        ),
                    );
                    continue;
                }
                let Some(e) = graph.edges[id]
                    .iter()
                    .find(|e| e.call_idx == call_idx && blocking[e.to].is_some())
                else {
                    continue;
                };
                let parents = graph.reach_with_parents(&[e.to]);
                let op = blocking[e.to].clone().unwrap_or_default();
                let target = parents
                    .keys()
                    .copied()
                    .find(|&t| blocking[t].as_deref() == Some(op.as_str()))
                    .unwrap_or(e.to);
                push_at(
                    findings,
                    files,
                    "L2",
                    &f.rel_path,
                    call.line,
                    format!(
                        "`{}` guard (acquired line {}) is held across `{}` which reaches \
                         blocking `{op}`: {}",
                        g.lock,
                        g.line,
                        call.name,
                        chain_text(graph, &parents, target)
                    ),
                );
            }
        }
    }
}

/// Does the call at name-token `tok` have a non-empty argument list?
fn call_has_args(toks: &[Tok], tok: usize) -> bool {
    let open = if toks.get(tok + 1).is_some_and(|t| t.is_punct('(')) {
        tok + 1
    } else {
        return false; // turbofish blocking calls don't occur here
    };
    !toks.get(open + 1).is_some_and(|t| t.is_punct(')'))
}

/// Does the call's argument list mention `name`?
fn call_args_contain(toks: &[Tok], tok: usize, name: &str) -> bool {
    if !toks.get(tok + 1).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let close = match_close(toks, tok + 1, toks.len(), '(', ')');
    toks[tok + 2..close].iter().any(|t| t.is_ident(name))
}

// ------------------------------------------------------------ T1/C1

#[derive(Clone, Copy, PartialEq)]
enum TaintMode {
    /// T1: tainted lengths reaching allocation/index sinks.
    Lengths,
    /// C1: `as` casts on tainted integers.
    Casts,
}

fn check_taint(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &Config,
    mode: TaintMode,
    findings: &mut Vec<Finding>,
) {
    if cfg.t1_paths.is_empty() {
        return;
    }
    for file in files {
        if !cfg.t1_paths.iter().any(|p| &file.rel_path == p) {
            continue;
        }
        for f in graph.fns.iter().filter(|f| f.rel_path == file.rel_path && !f.in_test) {
            taint_fn(file, f.body.clone(), mode, findings);
        }
    }
}

fn is_bound_const(t: &Tok) -> bool {
    t.kind == TokKind::Ident
        && t.text.len() >= 2
        && t.text.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && t.text.chars().any(|c| c.is_ascii_uppercase())
}

/// Does `span` contain a wire read (`.u32()`-family zero-arg accessor
/// or `uNN::from_le_bytes`)?
fn span_has_source(toks: &[Tok], span: Range<usize>) -> bool {
    let mut i = span.start;
    while i < span.end {
        let t = &toks[i];
        if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|t| TAINT_READS.iter().any(|r| t.is_ident(r)))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            return true;
        }
        if t.is_ident("from_le_bytes")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && matches!(toks[i - 3].text.as_str(), "u16" | "u32" | "u64" | "usize")
        {
            return true;
        }
        i += 1;
    }
    false
}

/// Does `span` bound-check a value: a named all-caps const next to a
/// comparison-shaped use, or a `checked_len`-family helper call?
fn span_clears(toks: &[Tok], span: Range<usize>) -> bool {
    let consts = toks[span.clone()].iter().any(is_bound_const);
    let compare = toks[span.clone()].iter().any(|t| {
        t.is_punct('<')
            || t.is_punct('>')
            || t.is_ident("contains")
            || t.is_ident("min")
            || t.is_ident("clamp")
    });
    let helper = toks[span].iter().any(|t| BOUND_HELPERS.iter().any(|h| t.is_ident(h)));
    (consts && compare) || helper
}

/// Linear taint walk over one body: `let` bindings pick up or clear
/// taint from their initializer; segment-level comparisons against
/// bound consts clear it; sinks report.
fn taint_fn(file: &SourceFile, body: Range<usize>, mode: TaintMode, findings: &mut Vec<Finding>) {
    let toks = &file.toks;
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    // Segment boundaries: flat split on `;`, `{`, `}` — except that a
    // `;` inside square brackets is a repeat-length separator
    // (`vec![0; n]`, `[0u8; 4]`), not a statement end.
    let mut bounds: Vec<usize> = vec![body.start];
    let mut brackets = 0usize;
    for i in body.clone() {
        if toks[i].is_punct('[') {
            brackets += 1;
        } else if toks[i].is_punct(']') {
            brackets = brackets.saturating_sub(1);
        }
        if (toks[i].is_punct(';') && brackets == 0)
            || toks[i].is_punct('{')
            || toks[i].is_punct('}')
        {
            bounds.push(i + 1);
        }
    }
    bounds.push(body.end);

    for w in bounds.windows(2) {
        let seg = w[0]..w[1].min(body.end).max(w[0]);
        if seg.is_empty() {
            continue;
        }
        let seg_tainted: Vec<String> = tainted
            .iter()
            .filter(|n| toks[seg.clone()].iter().any(|t| t.is_ident(n)))
            .cloned()
            .collect();
        let clears = span_clears(toks, seg.clone());

        // `let [mut] NAME = INIT` — (re)bind NAME's taint.
        let mut bound_here: Option<String> = None;
        if toks[seg.start].is_ident("let") {
            let mut j = seg.start + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(bindable)
                && toks.get(j + 1).is_some_and(|t| t.is_punct('='))
            {
                let name = toks[j].text.clone();
                let init = j + 2..seg.end;
                // Closures capture taint but are not integer values —
                // carrying taint through them (e.g. a `fail` error
                // closure capturing a wire-read id) only muddies labels.
                let is_closure = toks
                    .get(init.start)
                    .is_some_and(|t| t.is_punct('|') || t.is_ident("move"));
                let from_wire = span_has_source(toks, init.clone())
                    || tainted.iter().any(|n| {
                        *n != name && toks[init.clone()].iter().any(|t| t.is_ident(n))
                    });
                if from_wire && !is_closure && !span_clears(toks, init.clone()) {
                    tainted.insert(name.clone());
                } else {
                    tainted.remove(&name);
                }
                bound_here = Some(name);
            }
        }

        if clears {
            // A bound check blesses every tainted name it mentions.
            for n in &seg_tainted {
                tainted.remove(n);
            }
            continue;
        }

        match mode {
            TaintMode::Lengths => {
                report_length_sinks(file, &seg, &seg_tainted, bound_here.as_deref(), findings)
            }
            TaintMode::Casts => {
                report_cast_sinks(file, &seg, &seg_tainted, findings)
            }
        }
    }
}

/// Is any token of `span` a tainted name or an inline wire read?
fn span_is_tainted(toks: &[Tok], span: Range<usize>, tainted: &[String]) -> bool {
    tainted.iter().any(|n| toks[span.clone()].iter().any(|t| t.is_ident(n)))
        || span_has_source(toks, span)
}

fn taint_label(toks: &[Tok], span: Range<usize>, tainted: &[String]) -> String {
    tainted
        .iter()
        .find(|n| toks[span.clone()].iter().any(|t| t.is_ident(n)))
        .cloned()
        .unwrap_or_else(|| "wire read".to_string())
}

fn report_length_sinks(
    file: &SourceFile,
    seg: &Range<usize>,
    tainted: &[String],
    bound_here: Option<&str>,
    findings: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    // A freshly-bound name is tainted *within* its own statement too
    // (`let v = vec![0; n]` where n was already tainted is caught via
    // `tainted`; the binding itself can't sink on its own line).
    let _ = bound_here;
    let mut i = seg.start;
    while i < seg.end {
        let t = &toks[i];
        // `with_capacity(..)` / `.resize(..)` / `.reserve(..)`.
        if (t.is_ident("with_capacity") || t.is_ident("resize") || t.is_ident("reserve"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            let close = match_close(toks, i + 1, seg.end, '(', ')');
            let args = i + 2..close;
            if span_is_tainted(toks, args.clone(), tainted) {
                let what = taint_label(toks, args, tainted);
                push_taint(findings, file, t.line, format!(
                    "untrusted length `{what}` reaches `{}` before any named bound check — \
                     compare against a MAX_* const or route through `checked_len` first",
                    t.text
                ));
                i = close + 1;
                continue;
            }
        }
        // `vec![elem; len]`.
        if t.is_ident("vec")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
        {
            let close = match_close(toks, i + 2, seg.end, '[', ']');
            if let Some(semi) = (i + 3..close).find(|&k| toks[k].is_punct(';')) {
                let len = semi + 1..close;
                if span_is_tainted(toks, len.clone(), tainted) {
                    let what = taint_label(toks, len, tainted);
                    push_taint(findings, file, t.line, format!(
                        "untrusted length `{what}` sizes a `vec![..]` before any named bound \
                         check — compare against a MAX_* const first"
                    ));
                }
            }
            i = close + 1;
            continue;
        }
        // Slice indexing `expr[..tainted..]`.
        if t.is_punct('[')
            && i > seg.start
            && (toks[i - 1].kind == TokKind::Ident || toks[i - 1].is_punct(')') || toks[i - 1].is_punct(']'))
        {
            let close = match_close(toks, i, seg.end, '[', ']');
            let idx = i + 1..close;
            if span_is_tainted(toks, idx.clone(), tainted) {
                let what = taint_label(toks, idx, tainted);
                push_taint(findings, file, t.line, format!(
                    "untrusted value `{what}` indexes a slice before any named bound check — \
                     a short frame panics here; bound it or use `get(..)`"
                ));
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

fn report_cast_sinks(
    file: &SourceFile,
    seg: &Range<usize>,
    tainted: &[String],
    findings: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    for i in seg.start..seg.end {
        if !toks[i].is_ident("as") {
            continue;
        }
        // Walk the cast operand back to a depth-0 expression boundary.
        let mut j = i;
        let mut depth = 0i32;
        while j > seg.start {
            let p = &toks[j - 1];
            if p.is_punct(')') || p.is_punct(']') {
                depth += 1;
            } else if p.is_punct('(') || p.is_punct('[') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if depth == 0
                && (p.is_punct('=')
                    || p.is_punct(',')
                    || p.is_punct(';')
                    || p.is_punct('{')
                    || p.is_punct('<')
                    || p.is_punct('>')
                    || p.is_punct('+')
                    || p.is_punct('-')
                    || p.is_punct('*')
                    || p.is_punct('/')
                    || p.is_ident("as"))
            {
                break;
            }
            j -= 1;
        }
        let operand = j..i;
        if span_is_tainted(toks, operand.clone(), tainted) {
            let what = taint_label(toks, operand, tainted);
            push_taint(findings, file, toks[i].line, format!(
                "lossy `as` cast on wire-derived `{what}` — bound-check it first or use \
                 `try_into` so truncation is an error, not a wrap"
            ));
        }
    }
}

fn push_taint(findings: &mut Vec<Finding>, file: &SourceFile, line: u32, message: String) {
    let rule = if message.starts_with("lossy") { "C1" } else { "T1" };
    findings.push(Finding {
        rule,
        path: file.rel_path.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::lexer::lex;

    fn lib_file(crate_name: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let in_test = vec![false; toks.len()];
        SourceFile {
            crate_name: crate_name.into(),
            rel_path: format!("crates/{crate_name}/src/lib.rs"),
            kind: FileKind::Lib,
            lines: src.lines().map(str::to_string).collect(),
            toks,
            in_test,
        }
    }

    fn cfg_with(f: impl FnOnce(&mut Config)) -> Config {
        let mut cfg = Config::default();
        f(&mut cfg);
        cfg
    }

    fn run(files: Vec<SourceFile>, cfg: &Config) -> Vec<Finding> {
        let graph = CallGraph::build(&files);
        let mut findings = Vec::new();
        let mut timings = Vec::new();
        run_dataflow_timed(&files, &graph, cfg, &mut findings, &mut timings);
        crate::rules::sort_dedup(&mut findings);
        findings
    }

    fn flow_of(src: &str) -> FnFlow {
        let file = lib_file("x", src);
        let graph = CallGraph::build(std::slice::from_ref(&file));
        let f = &graph.fns[0];
        function_flow(&file.toks, f.body.clone())
    }

    #[test]
    fn simple_let_guard_lives_to_block_end() {
        let flow = flow_of(
            "pub fn f(s: &S) -> u32 {\n    let g = s.inner.lock().unwrap();\n    *g\n}\n",
        );
        assert_eq!(flow.acquires.len(), 1);
        assert_eq!(flow.acquires[0].lock, "inner");
        let g = flow.guards.iter().find(|g| g.name == "g").expect("guard bound");
        assert_eq!(g.lock, "inner");
    }

    #[test]
    fn drop_ends_the_guard_region() {
        let file = lib_file(
            "x",
            "pub fn f(s: &S) {\n    let g = s.m.lock().unwrap();\n    drop(g);\n    after();\n}\nfn after() {}\n",
        );
        let graph = CallGraph::build(std::slice::from_ref(&file));
        let f = graph.fns.iter().find(|f| f.name == "f").unwrap();
        let flow = function_flow(&file.toks, f.body.clone());
        let g = flow.guards.iter().find(|g| g.name == "g").unwrap();
        let after = f.calls.iter().find(|c| c.name == "after").unwrap();
        assert!(!g.region.contains(&after.tok), "drop(g) must end the region");
    }

    #[test]
    fn match_arm_binding_scopes_to_the_arm() {
        let flow = flow_of(
            "pub fn f(s: &S) -> bool {\n    let taken = match s.child.lock() {\n        Ok(mut guard) => guard.take(),\n        Err(_) => None,\n    };\n    taken.is_some()\n}\n",
        );
        // `taken` is not a guard (the arm maps it away); `guard` lives
        // only inside the arm body.
        assert!(flow.guards.iter().all(|g| g.name != "taken"));
        let g = flow.guards.iter().find(|g| g.name == "guard").expect("arm binding");
        assert!(g.region.len() < 8, "arm region stays small: {:?}", g.region);
    }

    #[test]
    fn identity_match_arm_binds_the_let_name() {
        let flow = flow_of(
            "pub fn f(s: &S) {\n    let mut table = match s.buckets.lock() {\n        Ok(t) => t,\n        Err(_) => return,\n    };\n    table.clear();\n}\n",
        );
        assert!(flow.guards.iter().any(|g| g.name == "table" && g.lock == "buckets"));
    }

    #[test]
    fn l2_flags_blocking_under_guard_directly_and_transitively() {
        let cfg = cfg_with(|c| c.l2_crates = vec!["x".into()]);
        let findings = run(
            vec![lib_file(
                "x",
                "pub fn direct(s: &S, c: &mut Child) {\n    let g = s.m.lock().unwrap();\n    let _st = c.wait();\n    drop(g);\n}\npub fn via(s: &S) {\n    let g = s.m.lock().unwrap();\n    helper();\n}\nfn helper() {\n    std::thread::sleep(d());\n}\nfn d() -> Duration { Duration::ZERO }\n",
            )],
            &cfg,
        );
        let l2: Vec<_> = findings.iter().filter(|f| f.rule == "L2").collect();
        assert_eq!(l2.len(), 2, "{findings:?}");
        assert!(l2[0].message.contains("blocking `wait`"), "{}", l2[0].message);
        assert!(l2[1].message.contains("x::helper"), "{}", l2[1].message);
    }

    #[test]
    fn l2_stays_quiet_after_drop_and_for_condvar_wait() {
        let cfg = cfg_with(|c| c.l2_crates = vec!["x".into()]);
        let findings = run(
            vec![lib_file(
                "x",
                "pub fn narrowed(s: &S, c: &mut Child) {\n    let g = s.m.lock().unwrap();\n    drop(g);\n    let _st = c.wait();\n}\npub fn condvar(s: &S) {\n    let g = s.m.lock().unwrap();\n    let _g = s.cv.wait(g);\n}\n",
            )],
            &cfg,
        );
        assert!(findings.iter().all(|f| f.rule != "L2"), "{findings:?}");
    }

    #[test]
    fn l1_reports_the_cycle_with_both_chains() {
        let cfg = cfg_with(|c| c.l1_crates = vec!["x".into()]);
        let findings = run(
            vec![lib_file(
                "x",
                "impl P {\n    pub fn ab(&self) -> u32 {\n        let g = self.a.lock().unwrap();\n        *g + self.grab_b()\n    }\n    pub fn grab_b(&self) -> u32 {\n        let g = self.b.lock().unwrap();\n        *g\n    }\n    pub fn ba(&self) -> u32 {\n        let g = self.b.lock().unwrap();\n        let n = self.a.lock().unwrap();\n        *g + *n\n    }\n}\n",
            )],
            &cfg,
        );
        let l1: Vec<_> = findings.iter().filter(|f| f.rule == "L1").collect();
        assert_eq!(l1.len(), 1, "{findings:?}");
        let m = &l1[0].message;
        assert!(m.contains("lock-order cycle: `a` -> `b` -> `a`"), "{m}");
        assert!(m.contains("x::P::ab") && m.contains("x::P::grab_b") && m.contains("x::P::ba"), "{m}");
    }

    #[test]
    fn l1_sequential_scopes_make_no_edge() {
        let cfg = cfg_with(|c| c.l1_crates = vec!["x".into()]);
        let findings = run(
            vec![lib_file(
                "x",
                "impl P {\n    pub fn seq(&self) {\n        if let Ok(mut g) = self.a.lock() {\n            *g = 1;\n        }\n        if let Ok(mut g) = self.b.lock() {\n            *g = 2;\n        }\n    }\n    pub fn rev(&self) {\n        let g = self.b.lock().unwrap();\n        let n = self.a.lock().unwrap();\n        *g + *n;\n    }\n}\n",
            )],
            &cfg,
        );
        assert!(findings.iter().all(|f| f.rule != "L1"), "{findings:?}");
    }

    #[test]
    fn t1_and_c1_fire_on_unchecked_wire_lengths() {
        let cfg = cfg_with(|c| c.t1_paths = vec!["crates/x/src/lib.rs".into()]);
        let findings = run(
            vec![lib_file(
                "x",
                "pub fn decode(r: &mut Wire) -> Vec<u8> {\n    let n = r.u32() as usize;\n    let mut out = Vec::with_capacity(n);\n    out.resize(n, 0);\n    out\n}\n",
            )],
            &cfg,
        );
        let t1 = findings.iter().filter(|f| f.rule == "T1").count();
        let c1 = findings.iter().filter(|f| f.rule == "C1").count();
        assert_eq!((t1, c1), (2, 1), "{findings:?}");
    }

    #[test]
    fn named_bound_consts_and_checked_len_clear_taint() {
        let cfg = cfg_with(|c| c.t1_paths = vec!["crates/x/src/lib.rs".into()]);
        let findings = run(
            vec![lib_file(
                "x",
                "pub const MAX_N: usize = 1024;\npub fn bounded(r: &mut Wire) -> Vec<u8> {\n    let n = r.u32();\n    if n as usize > MAX_N {\n        return Vec::new();\n    }\n    let mut out = Vec::with_capacity(n as usize);\n    out.resize(n as usize, 0);\n    out\n}\npub fn helper_bounded(r: &mut Wire) -> Vec<u8> {\n    let n = checked_len(r.u32(), MAX_N, \"len\");\n    vec![0; n]\n}\n",
            )],
            &cfg,
        );
        assert!(
            findings.iter().all(|f| f.rule != "T1" && f.rule != "C1"),
            "{findings:?}"
        );
    }

    #[test]
    fn t1_flags_tainted_slice_indexing() {
        let cfg = cfg_with(|c| c.t1_paths = vec!["crates/x/src/lib.rs".into()]);
        let findings = run(
            vec![lib_file(
                "x",
                "pub fn slice(buf: &[u8], r: &mut Wire) -> u8 {\n    let n = r.u32() as usize;\n    buf[n]\n}\n",
            )],
            &cfg,
        );
        assert!(
            findings.iter().any(|f| f.rule == "T1" && f.message.contains("indexes a slice")),
            "{findings:?}"
        );
    }

    #[test]
    fn t1_sees_through_the_repeat_semi_in_vec_macros() {
        let cfg = cfg_with(|c| c.t1_paths = vec!["crates/x/src/lib.rs".into()]);
        let findings = run(
            vec![lib_file(
                "x",
                "pub fn make(r: &mut Wire) -> Vec<u8> {\n    let mut raw = [0u8; 4];\n    raw[0] = 1;\n    let n = r.u32() as usize;\n    vec![0; n]\n}\n",
            )],
            &cfg,
        );
        assert!(
            findings.iter().any(|f| f.rule == "T1" && f.message.contains("sizes a `vec![..]`")),
            "{findings:?}"
        );
        // The fixed-size array literal's `;` is not a statement end and
        // its bracket is not an indexing sink.
        assert!(
            !findings.iter().any(|f| f.rule == "T1" && f.line == 2),
            "{findings:?}"
        );
    }

    #[test]
    fn container_locals_require_unanimous_bindings() {
        let file = lib_file(
            "x",
            "pub fn f(ds: &Dataset) {\n    let mut dims = Vec::new();\n    dims.push(1);\n    let mut s = String::new();\n    let mut mixed = Vec::new();\n    let mixed = ds.clone();\n    param_use(ds);\n}\n",
        );
        let graph = CallGraph::build(std::slice::from_ref(&file));
        let f = &graph.fns[0];
        let locals = container_locals(&file.toks, f.body.clone());
        assert!(locals.contains("dims") && locals.contains("s"), "{locals:?}");
        assert!(!locals.contains("mixed"), "shadowed by a non-container binding");
        assert!(!locals.contains("ds"), "params stay conservative");
    }
}
