#![forbid(unsafe_code)]
//! `tsda-analyze`: in-repo static analysis enforcing the invariants the
//! experimental protocol depends on.
//!
//! The paper's claims are averaged accuracy deltas over 5 seeded runs;
//! PR 1 and PR 2 promised bit-identical results across thread counts
//! and save/load round trips. Those promises only hold if nobody
//! quietly introduces wall-clock-seeded randomness, hash-order
//! iteration, raw threading, or a panic on a serving path — so this
//! crate machine-checks them on every build instead of relying on
//! reviewer vigilance.
//!
//! Four rules (details in [`rules`]):
//!
//! * **D1 no-nondeterminism** — unseeded RNGs anywhere; wall-clock
//!   reads and `HashMap`/`HashSet` in result-producing library code.
//! * **P1 no-panic-in-library** — `unwrap`/`expect`/`panic!`-family /
//!   string-keyed indexing in the library code of crates a server must
//!   not crash through.
//! * **U1 unsafe-hygiene** — every `unsafe` carries `// SAFETY:`;
//!   crates with zero unsafe declare `#![forbid(unsafe_code)]`.
//! * **F1 float-reduction-order** — raw `thread::spawn`/`scope`
//!   outside the blessed deterministic pool in `tsda-core::parallel`.
//!
//! Scoping and the justification-bearing allowlist live in the
//! checked-in [`analyze.toml`](config) at the workspace root. The
//! `tsda_analyze` bin exits 0 on a clean tree, 1 on findings, 2 on
//! usage/config errors; `--format json` emits the stable schema
//! documented in [`report`].
//!
//! There is no `syn` in the offline container, so the pass runs on a
//! [hand-rolled lexer](lexer) — token-accurate (strings, raw strings,
//! nested comments, lifetimes) but deliberately not a parser; the
//! rules are chosen to be decidable on the token stream.

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod docs;
pub mod interproc;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod traitobj;
pub mod workspace;

use config::Config;
use report::Report;
use std::path::Path;

/// Analyze the workspace at `root` with `cfg`: walk, lex, run the
/// token-stream rules, build the call graph, run the interprocedural
/// rules and the [dataflow](dataflow) rules (lock order, guard
/// liveness, wire-input taint), apply the allowlist. Per-rule wall
/// times land in [`Report::timings`].
pub fn analyze(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files = workspace::load_workspace(root, &cfg.scan, &cfg.skip)?;
    let (mut raw, mut timings) = rules::run_rules_timed(&files, cfg);
    let t0 = std::time::Instant::now();
    let deps = workspace::crate_dep_closure(root, &cfg.scan);
    let graph = callgraph::CallGraph::build_with_deps(&files, &deps);
    timings.push(("graph".to_string(), rules::ms_since(t0)));
    interproc::run_interproc_timed(&files, &graph, cfg, &mut raw, &mut timings);
    dataflow::run_dataflow_timed(&files, &graph, cfg, &mut raw, &mut timings);
    rules::sort_dedup(&mut raw);
    let mut report = Report::from_findings(raw, cfg);
    report.timings = timings;
    Ok(report)
}

/// Analyze using the `analyze.toml` found at `root`.
pub fn analyze_with_default_config(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join("analyze.toml");
    let text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("read {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&text)?;
    analyze(root, &cfg)
}
