//! The one rule-documentation table.
//!
//! `tsda_analyze --explain <RULE>`, the SARIF `tool.driver.rules`
//! metadata, and the README's static-analysis section all render from
//! [`RULE_DOCS`] — one source, so the docs cannot drift apart. A test
//! in `tests/docs_sync.rs` pins the README table to this module.

/// Documentation for one rule.
pub struct RuleDoc {
    /// Rule id (`D1`, ..., `R4`).
    pub id: &'static str,
    /// One-line summary (README table cell / SARIF shortDescription).
    pub summary: &'static str,
    /// Why the rule exists, in terms of the experimental protocol.
    pub rationale: &'static str,
    /// What a justified `[[allow]]` entry for this rule must argue.
    pub allow_guidance: &'static str,
}

/// Every rule the analyzer knows, in report order.
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        id: "D1",
        summary: "no nondeterminism: unseeded RNGs anywhere; wall-clock reads and hash-order iteration in result-producing library code",
        rationale: "the paper's Table III/IV numbers are averages over 5 fixed seeds; an unseeded RNG, a timing-dependent branch, or HashMap iteration order makes reruns diverge silently",
        allow_guidance: "explain why the site cannot influence any result bytes (e.g. timers that only shape batching, observability counters)",
    },
    RuleDoc {
        id: "P1",
        summary: "no panics in library code of serving-path crates (unwrap/expect/panic!-family/string-keyed indexing)",
        rationale: "tsda-serve keeps a TCP server alive through arbitrary client input; any panic on a lib path is a remote crash",
        allow_guidance: "argue infallibility by construction (invariant established in the same function or module) or a documented API contract",
    },
    RuleDoc {
        id: "U1",
        summary: "unsafe hygiene: every `unsafe` needs a `// SAFETY:` comment; zero-unsafe crates must `#![forbid(unsafe_code)]`",
        rationale: "an unsound block corrupts results as happily in test code as in production; forbid makes the zero-unsafe state load-bearing",
        allow_guidance: "do not allowlist; write the SAFETY comment or remove the unsafe",
    },
    RuleDoc {
        id: "F1",
        summary: "no raw threading outside the blessed deterministic pool (tsda_core::parallel)",
        rationale: "the pool's fixed chunking and ordered combine are what make float reductions bit-identical across thread counts; raw threads reorder them",
        allow_guidance: "explain why the threads can never reduce floats across thread boundaries (e.g. connection handlers)",
    },
    RuleDoc {
        id: "R1",
        summary: "panic reachability: nothing transitively reachable from the serve request path or the experiment harness roots may contain a panic site",
        rationale: "P1 checks one line at a time; R1 walks the call graph from [rules.R1].roots so a panic three crates down the request path is caught with its full call chain",
        allow_guidance: "name the invariant that makes the reported chain impossible (the chain is in the finding message; resolution is conservative, so type-impossible chains are allowlisted with the reason they are impossible)",
    },
    RuleDoc {
        id: "R2",
        summary: "fallibility hygiene: workspace `Result`s must not be discarded via `let _ =` or bare-expression statements in library code",
        rationale: "a dropped Result turns an error path into silent data loss — exactly how torn responses and short reads disappear until the chaos suite catches them downstream",
        allow_guidance: "explain why the error genuinely cannot matter at this site (e.g. best-effort reply on an already-failed connection)",
    },
    RuleDoc {
        id: "R3",
        summary: "hot-path allocation (v2): functions tagged #[doc(alias = \"tsda::hot\")] and everything they call may not allocate in steady state — a site is cleared only when escape analysis proves it flows into a caller-provided &mut/Scratch param, the return value, or a one-time OnceLock init",
        rationale: "per-element allocation in conv/GEMM kernels, the batcher submit path, or the wire codec turns O(1) inner loops into allocator traffic and latency jitter the serving benchmarks then mismeasure; v2's clearing means the remaining findings are real churn, so the R3 allowlist can stay empty",
        allow_guidance: "do not allowlist — thread the allocation into a caller-provided scratch arena, or restructure it into a constructor/OnceLock path the escape analysis can prove",
    },
    RuleDoc {
        id: "R4",
        summary: "float-accumulation order: float reductions in result-producing code must route through tsda_core::math::sum_stable",
        rationale: "`.sum()` / `+=` loops pin accumulation order only until the next refactor reorders them; sum_stable fixes one compensated left-to-right order workspace-wide, so accuracy tables cannot drift a ulp at a time",
        allow_guidance: "explain what already pins the order and magnitude (e.g. a kernel whose loop structure is the documented contract, covered by goldens)",
    },
    RuleDoc {
        id: "A1",
        summary: "scratch discipline: hot-reachable fns in [rules.A1].crates may not call Vec::new/with_capacity, .to_vec(), .clone(), format!, or Box::new unless the site goes through a Scratch-typed receiver (arena methods themselves are exempt)",
        rationale: "R3 clears allocations that escape into return values, which is right for library constructors but too lenient for serving crates — A1 is the stricter zero-allocation contract on the request path: every buffer comes from a per-worker Scratch arena, so steady-state requests hit the allocator zero times",
        allow_guidance: "do not allowlist — route the buffer through the worker's Scratch arena, or move the work off the hot path so the fn is no longer hot-reachable",
    },
    RuleDoc {
        id: "L1",
        summary: "lock-order cycles: interprocedural lock-acquisition summaries must form an acyclic lock-order graph; any cycle is reported with both full call chains",
        rationale: "the router holds per-replica and registry locks across helper calls; two paths taking the same pair of locks in opposite orders deadlock only under contention — exactly the failure load tests hit and unit tests miss",
        allow_guidance: "name the invariant that makes the two chains unable to run concurrently (e.g. both only ever execute on the monitor thread); a cycle two threads can actually race is a bug, not an allowlist entry",
    },
    RuleDoc {
        id: "L2",
        summary: "guard held across blocking: a live MutexGuard/RwLock guard may not span a call that (transitively) reaches read/write/accept/recv/join/sleep/wait",
        rationale: "a guard held over IO turns one slow peer into a stall for every thread that touches the lock — the health-loop-vs-failover shape; take what you need from the guard and drop it before blocking",
        allow_guidance: "explain why the blocking call cannot actually block (e.g. the fd is nonblocking, the channel is pre-filled) or why no other thread contends the lock during it",
    },
    RuleDoc {
        id: "T1",
        summary: "untrusted-length taint: lengths decoded from the wire are tainted until compared against a named MAX_* bound const (or routed through checked_len); tainted values reaching with_capacity/vec!/resize/indexing are findings",
        rationale: "protocol v2 reads length-prefixed frames straight off the network; one unchecked u32 length in an allocation is a one-packet memory-DoS, and in an index a remote panic",
        allow_guidance: "point at the dominating bound check the dataflow pass cannot see (e.g. enforced by the caller on the same value) — prefer routing through checked_len over allowlisting",
    },
    RuleDoc {
        id: "C1",
        summary: "lossy wire casts: `as` truncation on wire-derived integers; use try_into or an explicit bound check so truncation is an error, not a silent wrap",
        rationale: "a u64 table length cast with `as usize` wraps on 32-bit or lets 2^32+5 masquerade as 5 — decode then disagrees with the CRC'd frame, the worst kind of silent corruption",
        allow_guidance: "show the value's range is already pinned below the target width at this site (e.g. masked immediately before); otherwise convert with try_into",
    },
];

/// Look up one rule's doc by id.
pub fn rule_doc(id: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.id == id)
}

/// Render the `--explain` text for a rule.
pub fn explain(id: &str) -> Option<String> {
    let d = rule_doc(id)?;
    Some(format!(
        "{}: {}\n\nWhy it exists:\n  {}\n\nAllowlisting:\n  Add an [[allow]] entry to analyze.toml:\n\n    [[allow]]\n    rule = \"{}\"\n    path = \"crates/...\"        # path prefix of the finding\n    contains = \"...\"           # optional: substring of the finding's source line\n    reason = \"...\"             # mandatory justification\n\n  The reason must {}.\n",
        d.id, d.summary, d.rationale, d.id, d.allow_guidance
    ))
}

/// The README's rule table, rendered from [`RULE_DOCS`] (one `| id |
/// summary |` row per rule). `tests/docs_sync.rs` pins the README to
/// exactly these lines.
pub fn readme_table() -> String {
    let mut out = String::from("| rule | checks |\n|------|--------|\n");
    for d in RULE_DOCS {
        out.push_str(&format!("| {} | {} |\n", d.id, d.summary));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_id_documented_exactly_once() {
        let ids: Vec<&str> = RULE_DOCS.iter().map(|d| d.id).collect();
        assert_eq!(
            ids,
            vec!["D1", "P1", "U1", "F1", "R1", "R2", "R3", "R4", "A1", "L1", "L2", "T1", "C1"]
        );
    }

    #[test]
    fn explain_renders_and_unknown_is_none() {
        let text = explain("R1").expect("R1 documented");
        assert!(text.contains("panic"));
        assert!(text.contains("[[allow]]"));
        assert!(explain("Z9").is_none());
    }

    #[test]
    fn readme_table_has_a_row_per_rule() {
        let table = readme_table();
        assert_eq!(table.lines().count(), 2 + RULE_DOCS.len());
        for d in RULE_DOCS {
            assert!(table.contains(&format!("| {} |", d.id)));
        }
    }
}
