//! The interprocedural rules: R1 (panic reachability), R2 (fallibility
//! hygiene), R3 (hot-path allocation), R4 (float-accumulation order).
//!
//! Where D1/P1/U1/F1 judge one line at a time, these rules run over the
//! [call graph](crate::callgraph): what matters is not whether a
//! function *contains* a panic, but whether the serving path or the
//! experiment harness can *reach* one. Scoping:
//!
//! | rule | question | scope |
//! |------|----------|-------|
//! | R1 | can a configured root (`[rules.R1].roots`) transitively reach a panic site? | whole graph, test fns excluded |
//! | R2 | is a workspace `Result` discarded (`let _ =` / bare statement)? | `[rules.R2].crates`, lib, non-test |
//! | R3 | can a `#[doc(alias = "tsda::hot")]` fn transitively reach an allocation? | whole graph, test fns excluded |
//! | R4 | is a float reduction not routed through `tsda_core::math::sum_stable`? | `[rules.R4].crates`, lib, non-test |
//!
//! R1/R3 findings point at the offending *site* and carry the full call
//! chain from the root in the message, so the fix target and the reason
//! it matters are both in one line of CI output. Resolution is
//! conservative (see [`crate::callgraph`]): a finding may name a chain
//! the types would rule out, and the allowlist entry for such a site
//! must say *why* the chain is impossible — that justification is the
//! point of the rule.

use crate::callgraph::{CallGraph, FnId};
use crate::config::Config;
use crate::lexer::{Tok, TokKind};
use crate::parser::FnDef;
use crate::rules::Finding;
use crate::workspace::{FileKind, SourceFile};
use std::collections::BTreeMap;

/// Method names whose call allocates (on the receiver's buffer or a
/// fresh one). `collect` is included: hot kernels must write into
/// preallocated output, not grow containers per element.
const ALLOC_METHODS: &[&str] =
    &["push", "to_vec", "to_owned", "to_string", "collect", "extend", "insert"];

/// `Type::ctor` pairs that allocate.
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("String", "from"),
    ("Box", "new"),
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Run R1–R4 and append findings. `files` must be the same slice the
/// graph was built from (findings quote source lines through it).
pub fn run_interproc(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    check_r1(files, graph, cfg, findings);
    check_r2(files, graph, cfg, findings);
    check_r3(files, graph, findings);
    check_r4(files, cfg, findings);
}

/// [`run_interproc`] with per-rule wall time (ms) appended to `timings`.
pub fn run_interproc_timed(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
    timings: &mut Vec<(String, f64)>,
) {
    let t0 = std::time::Instant::now();
    check_r1(files, graph, cfg, findings);
    timings.push(("R1".to_string(), crate::rules::ms_since(t0)));
    let t0 = std::time::Instant::now();
    check_r2(files, graph, cfg, findings);
    timings.push(("R2".to_string(), crate::rules::ms_since(t0)));
    let t0 = std::time::Instant::now();
    check_r3(files, graph, findings);
    timings.push(("R3".to_string(), crate::rules::ms_since(t0)));
    let t0 = std::time::Instant::now();
    check_r4(files, cfg, findings);
    timings.push(("R4".to_string(), crate::rules::ms_since(t0)));
}

pub(crate) fn file_of<'a>(files: &'a [SourceFile], f: &FnDef) -> Option<&'a SourceFile> {
    files.iter().find(|s| s.rel_path == f.rel_path)
}

pub(crate) fn push_at(
    findings: &mut Vec<Finding>,
    files: &[SourceFile],
    rule: &'static str,
    rel_path: &str,
    line: u32,
    message: String,
) {
    let snippet = files
        .iter()
        .find(|s| s.rel_path == rel_path)
        .map_or(String::new(), |s| s.line_text(line).to_string());
    findings.push(Finding { rule, path: rel_path.to_string(), line, message, snippet });
}

/// Render a parent chain as `root (site) -> ... -> target`.
pub(crate) fn chain_text(
    graph: &CallGraph,
    parents: &BTreeMap<FnId, Option<(FnId, usize)>>,
    id: FnId,
) -> String {
    graph.chain_to(parents, id).join(" -> ")
}

// ---------------------------------------------------------------- R1

fn check_r1(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    if cfg.r1_roots.is_empty() {
        return;
    }
    let mut roots: Vec<FnId> = Vec::new();
    for key in &cfg.r1_roots {
        let matched = graph.roots_matching(key);
        if matched.is_empty() {
            // A root that matches nothing is a rotted config: the path
            // it was guarding is no longer protected. Hard finding, not
            // a warning.
            findings.push(Finding {
                rule: "R1",
                path: "analyze.toml".to_string(),
                line: 0,
                message: format!(
                    "R1 root {key:?} matches no function in the workspace \
                     (expected `crate::fn_name`)"
                ),
                snippet: key.clone(),
            });
        }
        roots.extend(matched);
    }
    let parents = graph.reach_with_parents(&roots);
    for &id in parents.keys() {
        let f = &graph.fns[id];
        if f.in_test {
            continue;
        }
        for p in &f.panics {
            push_at(
                findings,
                files,
                "R1",
                &f.rel_path,
                p.line,
                format!(
                    "panic site ({}) reachable from request/experiment root: {}",
                    p.what,
                    chain_text(graph, &parents, id)
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- R2

fn check_r2(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    for (id, f) in graph.fns.iter().enumerate() {
        if f.in_test || !cfg.r2_crates.iter().any(|c| c == &f.crate_name) {
            continue;
        }
        let Some(file) = file_of(files, f) else { continue };
        if file.kind != FileKind::Lib {
            continue;
        }
        let mut resolved: BTreeMap<usize, Vec<FnId>> = BTreeMap::new();
        for e in &graph.edges[id] {
            resolved.entry(e.call_idx).or_default().push(e.to);
        }
        // A call is "definitely fallible" when it resolved to at least
        // one workspace fn and every candidate returns Result — the
        // conservative direction for a *discard* lint is to stay quiet
        // on ambiguity, not to cry wolf on `()`-returning overloads.
        let returns_result = |call_idx: usize| -> bool {
            resolved.get(&call_idx).is_some_and(|cands| {
                !cands.is_empty() && cands.iter().all(|&c| graph.fns[c].returns_result)
            })
        };
        for stmt in statements(&file.toks, f.body.clone()) {
            let toks = &file.toks;
            let discarded = match discard_shape(toks, stmt.clone()) {
                Some(d) => d,
                None => continue,
            };
            for (call_idx, call) in f.calls.iter().enumerate() {
                if !stmt.contains(&call.tok) || !returns_result(call_idx) {
                    continue;
                }
                let how = match discarded {
                    Discard::LetUnderscore => "bound to `_`",
                    Discard::BareStatement => "dropped by a bare statement",
                };
                push_at(
                    findings,
                    files,
                    "R2",
                    &f.rel_path,
                    call.line,
                    format!(
                        "`Result` from `{}` is {how} — handle it or propagate with `?`",
                        call.name
                    ),
                );
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Discard {
    LetUnderscore,
    BareStatement,
}

/// Split a body token range into `;`-terminated statement spans. Spans
/// are *flat*: nested blocks contribute their own statements, and a
/// statement containing a block (e.g. `if .. { .. }`) is not produced.
fn statements(toks: &[Tok], body: std::ops::Range<usize>) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let end = body.end.min(toks.len());
    let mut start = body.start;
    let mut i = body.start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('}') {
            start = i + 1;
        } else if t.is_punct(';') {
            if start < i {
                out.push(start..i);
            }
            start = i + 1;
        }
        i += 1;
    }
    out
}

/// Does this statement span discard its value? `let _ = ...` always
/// does; a bare call statement (`f(x);` / `x.f();` / `T::f(x);`) does
/// unless the value is consumed (`?`, `=`, control flow, `.await`).
fn discard_shape(toks: &[Tok], stmt: std::ops::Range<usize>) -> Option<Discard> {
    let s = stmt.start;
    if toks.get(s).is_some_and(|t| t.is_ident("let"))
        && toks.get(s + 1).is_some_and(|t| t.kind == TokKind::Ident && t.text == "_")
        && toks.get(s + 2).is_some_and(|t| t.is_punct('='))
        && !toks.get(s + 3).is_some_and(|t| t.is_punct('='))
    {
        return Some(Discard::LetUnderscore);
    }
    let first = toks.get(s)?;
    let head_ok = first.kind == TokKind::Ident
        && !matches!(
            first.text.as_str(),
            "let" | "if" | "else" | "match" | "for" | "while" | "loop" | "return" | "break"
                | "continue" | "use" | "fn" | "struct" | "enum" | "impl" | "trait" | "mod"
                | "const" | "static" | "type" | "unsafe" | "pub" | "assert" | "debug_assert"
        );
    if !head_ok {
        return None;
    }
    let consumes = stmt.clone().any(|i| {
        let t = &toks[i];
        t.is_punct('?') || t.is_punct('=') || t.is_ident("await") || t.is_ident("return")
    });
    if consumes {
        return None;
    }
    Some(Discard::BareStatement)
}

// ---------------------------------------------------------------- R3

fn check_r3(files: &[SourceFile], graph: &CallGraph, findings: &mut Vec<Finding>) {
    let roots: Vec<FnId> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_hot && !f.in_test)
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return;
    }
    let parents = graph.reach_with_parents(&roots);
    for &id in parents.keys() {
        let f = &graph.fns[id];
        if f.in_test {
            continue;
        }
        let Some(file) = file_of(files, f) else { continue };
        for (line, what) in allocation_sites(&file.toks, f.body.clone()) {
            push_at(
                findings,
                files,
                "R3",
                &f.rel_path,
                line,
                format!(
                    "allocation ({what}) on a hot path: {}",
                    chain_text(graph, &parents, id)
                ),
            );
        }
    }
}

/// Allocation sites (line, description) in a body token range.
fn allocation_sites(toks: &[Tok], body: std::ops::Range<usize>) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let end = body.end.min(toks.len());
    for i in body.start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if ALLOC_METHODS.contains(&t.text.as_str())
            && i >= 1
            && toks[i - 1].is_punct('.')
            && next_non_turbofish_is_paren(toks, i + 1, end)
        {
            out.push((t.line, format!(".{}()", t.text)));
            continue;
        }
        if ALLOC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push((t.line, format!("{}!", t.text)));
            continue;
        }
        if let Some((ty, ctor)) = ALLOC_CTORS.iter().find(|(ty, _)| t.is_ident(ty)) {
            // `Vec::new(..)` — possibly with a turbofish on the type.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 2).is_some_and(|n| n.is_punct('<'))
            {
                j = skip_angle(toks, j + 2, end);
                if !(toks.get(j).is_some_and(|n| n.is_punct(':'))
                    && toks.get(j + 1).is_some_and(|n| n.is_punct(':')))
                {
                    continue;
                }
            }
            if toks.get(j).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 2).is_some_and(|n| n.is_ident(ctor))
            {
                out.push((t.line, format!("{ty}::{ctor}")));
            }
        }
    }
    out
}

/// After `.name`, is the next thing `(` — allowing `::<T>` in between?
fn next_non_turbofish_is_paren(toks: &[Tok], mut j: usize, end: usize) -> bool {
    if toks.get(j).is_some_and(|n| n.is_punct(':'))
        && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
        && toks.get(j + 2).is_some_and(|n| n.is_punct('<'))
    {
        j = skip_angle(toks, j + 2, end);
    }
    toks.get(j).is_some_and(|n| n.is_punct('('))
}

/// Index just past the `>` matching the `<` at `open`.
fn skip_angle(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

// ---------------------------------------------------------------- R4

fn check_r4(files: &[SourceFile], cfg: &Config, findings: &mut Vec<Finding>) {
    for file in files {
        if file.kind != FileKind::Lib || !cfg.r4_crates.iter().any(|c| c == &file.crate_name) {
            continue;
        }
        // The helper itself is the one place allowed to accumulate.
        if file.rel_path.ends_with("core/src/math.rs") {
            continue;
        }
        check_r4_file(file, findings);
    }
}

const R4_HINT: &str = "route through tsda_core::math::sum_stable so accumulation order is pinned";

fn check_r4_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.toks;
    let n = toks.len();
    // Loop body brace ranges, for the `+=`-accumulator check.
    let loop_ranges = loop_body_ranges(toks);
    // Locals declared with a float initialiser or ascription.
    let float_locals = float_local_names(toks);

    for i in 0..n {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        // `.sum::<f32>()` / `.sum()` on a float expression.
        if t.is_ident("sum") && i >= 1 && toks[i - 1].is_punct('.') {
            let flagged = match turbofish_types(toks, i + 1) {
                Some(types) => types.iter().any(|ty| ty == "f32" || ty == "f64"),
                // Untyped `.sum()`: only flag when the statement gives a
                // float hint (`let x: f64 = ...` / `as f32`), so integer
                // count sums stay legal.
                None => statement_mentions_float(toks, i),
            };
            if flagged && toks_call_follows(toks, i + 1) {
                findings.push(finding_at(file, t.line, format!("float `.sum()` — {R4_HINT}")));
            }
            continue;
        }
        // `.fold(0.0, |acc, x| acc + x)`-style float folds. Folds whose
        // closure runs max/min are order-insensitive selections, not
        // accumulations, and stay legal.
        if t.is_ident("fold")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
            && toks.get(i + 2).is_some_and(|z| z.kind == TokKind::Num && z.text.contains('.'))
            && !fold_is_selection(toks, i + 1)
        {
            findings.push(finding_at(file, t.line, format!("float `.fold()` — {R4_HINT}")));
            continue;
        }
        // `acc += term` on a float local inside a loop body.
        if t.is_punct('+')
            && toks.get(i + 1).is_some_and(|e| e.is_punct('='))
            && i >= 1
            && toks[i - 1].kind == TokKind::Ident
            && float_locals.contains(&toks[i - 1].text)
            && loop_ranges.iter().any(|r| r.contains(&i))
        {
            findings.push(finding_at(
                file,
                t.line,
                format!("float `+=` accumulation in a loop — {R4_HINT}"),
            ));
        }
    }
}

fn finding_at(file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule: "R4",
        path: file.rel_path.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
    }
}

/// `::<A, B>` starting at `j`: the top-level type names, else `None`.
fn turbofish_types(toks: &[Tok], j: usize) -> Option<Vec<String>> {
    if !(toks.get(j).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 2).is_some_and(|t| t.is_punct('<')))
    {
        return None;
    }
    let close = skip_angle(toks, j + 2, toks.len());
    let names = toks[j + 3..close.saturating_sub(1)]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    Some(names)
}

/// Is the token at/after `j` (past an optional turbofish) a `(`?
fn toks_call_follows(toks: &[Tok], j: usize) -> bool {
    next_non_turbofish_is_paren(toks, j, toks.len())
}

/// Does the `.fold(...)` call whose `(` sits at `open` select rather
/// than accumulate — i.e. call `.max(`/`.min(` inside its argument
/// list? Scans to the matching close paren.
fn fold_is_selection(toks: &[Tok], open: usize) -> bool {
    let mut depth = 0usize;
    for j in open..toks.len() {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if (toks[j].is_ident("max") || toks[j].is_ident("min"))
            && j >= 1
            && toks[j - 1].is_punct('.')
        {
            return true;
        }
    }
    false
}

/// Does the statement around token `i` mention `f32`/`f64`?
fn statement_mentions_float(toks: &[Tok], i: usize) -> bool {
    let start = (0..i).rev().find(|&j| {
        toks[j].is_punct(';') || toks[j].is_punct('{') || toks[j].is_punct('}')
    });
    let end = (i..toks.len())
        .find(|&j| toks[j].is_punct(';') || toks[j].is_punct('{') || toks[j].is_punct('}'))
        .unwrap_or(toks.len());
    let start = start.map_or(0, |s| s + 1);
    toks[start..end].iter().any(|t| t.is_ident("f32") || t.is_ident("f64"))
}

/// Names of locals declared with a float hint: `let mut x = 0.0`,
/// `let mut x: f64 = ...`, `let mut x = 0f32`.
fn float_local_names(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else { continue };
        // Scan the declaration up to `;` for a float hint.
        let end = (j..toks.len()).find(|&k| toks[k].is_punct(';')).unwrap_or(toks.len());
        let is_float = toks[j + 1..end].iter().any(|t| {
            t.is_ident("f32")
                || t.is_ident("f64")
                || (t.kind == TokKind::Num
                    && (t.text.contains('.') || t.text.ends_with("f32") || t.text.ends_with("f64")))
        });
        if is_float {
            names.push(name.text.clone());
        }
    }
    names
}

/// Brace ranges of `for`/`while`/`loop` bodies (token index ranges).
fn loop_body_ranges(toks: &[Tok]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("for") || t.is_ident("while") || t.is_ident("loop")) {
            continue;
        }
        // The loop body is the first `{` after the header (this
        // codebase never puts a struct literal in a loop header).
        let open = (i + 1..toks.len()).find(|&j| toks[j].is_punct('{'));
        if let Some(open) = open {
            let mut depth = 0usize;
            let mut j = open;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            out.push(open..j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lib_file(crate_name: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let in_test = vec![false; toks.len()];
        SourceFile {
            crate_name: crate_name.into(),
            rel_path: format!("crates/{crate_name}/src/lib.rs"),
            kind: FileKind::Lib,
            lines: src.lines().map(str::to_string).collect(),
            toks,
            in_test,
        }
    }

    fn run(files: Vec<SourceFile>, cfg: &Config) -> Vec<Finding> {
        let graph = CallGraph::build(&files);
        let mut findings = Vec::new();
        run_interproc(&files, &graph, cfg, &mut findings);
        findings
    }

    fn cfg_with(f: impl FnOnce(&mut Config)) -> Config {
        let mut cfg = Config::default();
        f(&mut cfg);
        cfg
    }

    #[test]
    fn r1_reports_cross_crate_chain_to_panic() {
        let files = vec![
            lib_file("a", "pub fn serve_loop() {\n    tsda_b::decode();\n}\n"),
            lib_file("b", "pub fn decode() {\n    inner()\n}\nfn inner() {\n    data.unwrap();\n}\n"),
        ];
        let cfg = cfg_with(|c| c.r1_roots = vec!["a::serve_loop".into()]);
        let findings = run(files, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, "R1");
        assert_eq!(f.path, "crates/b/src/lib.rs");
        assert_eq!(f.line, 5);
        assert!(f.message.contains("a::serve_loop (crates/a/src/lib.rs:2)"), "{}", f.message);
        assert!(f.message.contains("b::decode (crates/b/src/lib.rs:2)"), "{}", f.message);
        assert!(f.message.contains("b::inner"), "{}", f.message);
    }

    #[test]
    fn r1_unmatched_root_is_a_finding() {
        let files = vec![lib_file("a", "pub fn fine() {}\n")];
        let cfg = cfg_with(|c| c.r1_roots = vec!["a::gone".into()]);
        let findings = run(files, &cfg);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("matches no function"), "{}", findings[0].message);
    }

    #[test]
    fn r1_ignores_unreachable_panics() {
        let files = vec![lib_file(
            "a",
            "pub fn root() { safe() }\nfn safe() {}\nfn cold() { boom.unwrap(); }\n",
        )];
        let cfg = cfg_with(|c| c.r1_roots = vec!["a::root".into()]);
        assert!(run(files, &cfg).is_empty());
    }

    #[test]
    fn r2_flags_let_underscore_and_bare_statement_discards() {
        let files = vec![lib_file(
            "a",
            "pub fn fallible() -> Result<u8, ()> { Ok(1) }\n\
             pub fn ok_consumer() -> Result<u8, ()> { fallible() }\n\
             pub fn discards() {\n\
                 let _ = fallible();\n\
                 fallible();\n\
             }\n\
             pub fn handles() -> Result<(), ()> {\n\
                 let v = fallible()?;\n\
                 if fallible().is_ok() { drop(v); }\n\
                 Ok(())\n\
             }\n",
        )];
        let cfg = cfg_with(|c| c.r2_crates = vec!["a".into()]);
        let findings = run(files, &cfg);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![4, 5], "{findings:?}");
        assert!(findings[0].message.contains("bound to `_`"));
        assert!(findings[1].message.contains("bare statement"));
    }

    #[test]
    fn r2_skips_non_result_and_unresolved_calls() {
        let files = vec![lib_file(
            "a",
            "pub fn infallible() {}\n\
             pub fn go(w: Worker) {\n\
                 infallible();\n\
                 let _ = w.join();\n\
             }\n",
        )];
        let cfg = cfg_with(|c| c.r2_crates = vec!["a".into()]);
        assert!(run(files, &cfg).is_empty());
    }

    #[test]
    fn r3_flags_allocation_reached_from_hot_fn() {
        let files = vec![lib_file(
            "a",
            "#[doc(alias = \"tsda::hot\")]\n\
             pub fn kernel(out: &mut [f64]) {\n\
                 helper(out);\n\
             }\n\
             fn helper(out: &mut [f64]) {\n\
                 let mut v = Vec::new();\n\
                 v.push(out[0]);\n\
             }\n\
             fn cold() { let s = format!(\"fine here\"); }\n",
        )];
        let findings = run(files, &Config::default());
        let r3: Vec<&Finding> = findings.iter().filter(|f| f.rule == "R3").collect();
        assert_eq!(r3.len(), 2, "{findings:?}");
        assert!(r3[0].message.contains("Vec::new"), "{}", r3[0].message);
        assert!(r3[1].message.contains(".push()"), "{}", r3[1].message);
        assert!(r3[0].message.contains("a::kernel (crates/a/src/lib.rs:3)"), "{}", r3[0].message);
        assert!(findings.iter().all(|f| !f.snippet.contains("fine here")));
    }

    #[test]
    fn r4_flags_unpinned_reductions_and_accepts_sum_stable() {
        let files = vec![lib_file(
            "a",
            "pub fn mean(xs: &[f64]) -> f64 {\n\
                 xs.iter().sum::<f64>() / xs.len() as f64\n\
             }\n\
             pub fn count(xs: &[usize]) -> usize {\n\
                 xs.iter().sum::<usize>()\n\
             }\n\
             pub fn untyped(xs: &[f64]) -> f64 {\n\
                 let total: f64 = xs.iter().copied().sum();\n\
                 total\n\
             }\n\
             pub fn folded(xs: &[f64]) -> f64 {\n\
                 xs.iter().fold(0.0, |a, b| a + b)\n\
             }\n\
             pub fn looped(xs: &[f64]) -> f64 {\n\
                 let mut acc = 0.0;\n\
                 for x in xs { acc += x; }\n\
                 acc\n\
             }\n\
             pub fn pinned(xs: &[f64]) -> f64 {\n\
                 tsda_core::math::sum_stable(xs.iter().copied())\n\
             }\n\
             pub fn peak(xs: &[f64]) -> f64 {\n\
                 xs.iter().fold(0.0_f64, |m, v| m.max(v.abs()))\n\
             }\n",
        )];
        let cfg = cfg_with(|c| c.r4_crates = vec!["a".into()]);
        let findings = run(files, &cfg);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 8, 12, 16], "{findings:?}");
    }

    #[test]
    fn r4_skips_other_crates() {
        let src = "pub fn mean(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        let files = vec![lib_file("other", src)];
        let cfg = cfg_with(|c| c.r4_crates = vec!["a".into()]);
        assert!(run(files, &cfg).is_empty());
    }
}
