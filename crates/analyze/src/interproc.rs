//! The interprocedural rules: R1 (panic reachability), R2 (fallibility
//! hygiene), R3 (hot-path allocation), R4 (float-accumulation order),
//! A1 (scratch discipline).
//!
//! Where D1/P1/U1/F1 judge one line at a time, these rules run over the
//! [call graph](crate::callgraph): what matters is not whether a
//! function *contains* a panic, but whether the serving path or the
//! experiment harness can *reach* one. Scoping:
//!
//! | rule | question | scope |
//! |------|----------|-------|
//! | R1 | can a configured root (`[rules.R1].roots`) transitively reach a panic site? | whole graph, test fns excluded |
//! | R2 | is a workspace `Result` discarded (`let _ =` / bare statement)? | `[rules.R2].crates`, lib, non-test |
//! | R3 | can a `#[doc(alias = "tsda::hot")]` fn transitively reach a *steady-state* allocation? | whole graph, test fns excluded |
//! | R4 | is a float reduction not routed through `tsda_core::math::sum_stable`? | `[rules.R4].crates`, lib, non-test |
//! | A1 | does a hot-reachable fn in a scratch-disciplined crate allocate outside a `Scratch` receiver? | `[rules.A1].crates`, non-test |
//!
//! R1/R3/A1 findings point at the offending *site* and carry the full
//! call chain from the root in the message, so the fix target and the
//! reason it matters are both in one line of CI output. Resolution is
//! conservative (see [`crate::callgraph`]): a finding may name a chain
//! the types would rule out, and the allowlist entry for such a site
//! must say *why* the chain is impossible — that justification is the
//! point of the rule.
//!
//! ## R3v2: escape clearing
//!
//! R3 no longer flags every allocation a hot root can reach — it flags
//! the ones that are *steady-state churn*. A site is cleared when the
//! segment-level backward taint (same machinery family as
//! [`crate::dataflow`]) proves the allocation escapes the call:
//!
//! * it flows into a caller-provided `&mut` out-param or a
//!   `Scratch`-typed param (amortized into caller-owned storage);
//! * it flows into the fn's return value (a constructor path — the
//!   allocation is the API's output, audited at the caller);
//! * it sits inside a `get_or_init`/`get_or_try_init` closure (a
//!   one-time `OnceLock` path);
//! * its receiver path goes through a `Scratch` binding (`scratch.buf
//!   .push(..)` — growth amortizes into the arena).
//!
//! The taint is scope-aware: closure bodies are separate scopes with
//! empty seeds, so an allocation inside a worker closure never clears
//! through the *enclosing* fn's return, and flat `;`-segments
//! over-approximate control flow in the conservative direction.

use crate::callgraph::{CallGraph, FnId};
use crate::config::Config;
use crate::lexer::{Tok, TokKind};
use crate::parser::FnDef;
use crate::rules::Finding;
use crate::workspace::{FileKind, SourceFile};
use std::collections::BTreeMap;

/// Method names whose call allocates (on the receiver's buffer or a
/// fresh one). `collect` is included: hot kernels must write into
/// preallocated output, not grow containers per element.
const ALLOC_METHODS: &[&str] =
    &["push", "to_vec", "to_owned", "to_string", "collect", "extend", "insert"];

/// `Type::ctor` pairs that allocate.
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("String", "from"),
    ("Box", "new"),
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Methods A1 bans outright in scratch-disciplined crates. Narrower
/// than R3's list on purpose: `vec![0.0; n]` staging through
/// `Tensor::zeros`-style constructors is R3's business; A1 polices the
/// *incidental* per-request allocations that creep into serving code.
const A1_METHODS: &[&str] = &["to_vec", "clone"];

/// `Type::ctor` pairs A1 bans.
const A1_CTORS: &[(&str, &str)] =
    &[("Vec", "new"), ("Vec", "with_capacity"), ("Box", "new")];

/// Macros A1 bans.
const A1_MACROS: &[&str] = &["format"];

/// Run R1–R4 and append findings. `files` must be the same slice the
/// graph was built from (findings quote source lines through it).
pub fn run_interproc(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    check_r1(files, graph, cfg, findings);
    check_r2(files, graph, cfg, findings);
    check_r3(files, graph, findings);
    check_r4(files, cfg, findings);
    check_a1(files, graph, cfg, findings);
}

/// [`run_interproc`] with per-rule wall time (ms) appended to `timings`.
pub fn run_interproc_timed(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
    timings: &mut Vec<(String, f64)>,
) {
    let t0 = std::time::Instant::now();
    check_r1(files, graph, cfg, findings);
    timings.push(("R1".to_string(), crate::rules::ms_since(t0)));
    let t0 = std::time::Instant::now();
    check_r2(files, graph, cfg, findings);
    timings.push(("R2".to_string(), crate::rules::ms_since(t0)));
    let t0 = std::time::Instant::now();
    check_r3(files, graph, findings);
    timings.push(("R3".to_string(), crate::rules::ms_since(t0)));
    let t0 = std::time::Instant::now();
    check_r4(files, cfg, findings);
    timings.push(("R4".to_string(), crate::rules::ms_since(t0)));
    let t0 = std::time::Instant::now();
    check_a1(files, graph, cfg, findings);
    timings.push(("A1".to_string(), crate::rules::ms_since(t0)));
}

pub(crate) fn file_of<'a>(files: &'a [SourceFile], f: &FnDef) -> Option<&'a SourceFile> {
    files.iter().find(|s| s.rel_path == f.rel_path)
}

pub(crate) fn push_at(
    findings: &mut Vec<Finding>,
    files: &[SourceFile],
    rule: &'static str,
    rel_path: &str,
    line: u32,
    message: String,
) {
    let snippet = files
        .iter()
        .find(|s| s.rel_path == rel_path)
        .map_or(String::new(), |s| s.line_text(line).to_string());
    findings.push(Finding { rule, path: rel_path.to_string(), line, message, snippet });
}

/// Render a parent chain as `root (site) -> ... -> target`.
pub(crate) fn chain_text(
    graph: &CallGraph,
    parents: &BTreeMap<FnId, Option<(FnId, usize)>>,
    id: FnId,
) -> String {
    graph.chain_to(parents, id).join(" -> ")
}

// ---------------------------------------------------------------- R1

fn check_r1(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    if cfg.r1_roots.is_empty() {
        return;
    }
    let mut roots: Vec<FnId> = Vec::new();
    for key in &cfg.r1_roots {
        let matched = graph.roots_matching(key);
        if matched.is_empty() {
            // A root that matches nothing is a rotted config: the path
            // it was guarding is no longer protected. Hard finding, not
            // a warning.
            findings.push(Finding {
                rule: "R1",
                path: "analyze.toml".to_string(),
                line: 0,
                message: format!(
                    "R1 root {key:?} matches no function in the workspace \
                     (expected `crate::fn_name`)"
                ),
                snippet: key.clone(),
            });
        }
        roots.extend(matched);
    }
    let parents = graph.reach_with_parents(&roots);
    for &id in parents.keys() {
        let f = &graph.fns[id];
        if f.in_test {
            continue;
        }
        for p in &f.panics {
            push_at(
                findings,
                files,
                "R1",
                &f.rel_path,
                p.line,
                format!(
                    "panic site ({}) reachable from request/experiment root: {}",
                    p.what,
                    chain_text(graph, &parents, id)
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- R2

fn check_r2(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    for (id, f) in graph.fns.iter().enumerate() {
        if f.in_test || !cfg.r2_crates.iter().any(|c| c == &f.crate_name) {
            continue;
        }
        let Some(file) = file_of(files, f) else { continue };
        if file.kind != FileKind::Lib {
            continue;
        }
        let mut resolved: BTreeMap<usize, Vec<FnId>> = BTreeMap::new();
        for e in &graph.edges[id] {
            resolved.entry(e.call_idx).or_default().push(e.to);
        }
        // A call is "definitely fallible" when it resolved to at least
        // one workspace fn and every candidate returns Result — the
        // conservative direction for a *discard* lint is to stay quiet
        // on ambiguity, not to cry wolf on `()`-returning overloads.
        let returns_result = |call_idx: usize| -> bool {
            resolved.get(&call_idx).is_some_and(|cands| {
                !cands.is_empty() && cands.iter().all(|&c| graph.fns[c].returns_result)
            })
        };
        for stmt in statements(&file.toks, f.body.clone()) {
            let toks = &file.toks;
            let discarded = match discard_shape(toks, stmt.clone()) {
                Some(d) => d,
                None => continue,
            };
            for (call_idx, call) in f.calls.iter().enumerate() {
                if !stmt.contains(&call.tok) || !returns_result(call_idx) {
                    continue;
                }
                let how = match discarded {
                    Discard::LetUnderscore => "bound to `_`",
                    Discard::BareStatement => "dropped by a bare statement",
                };
                push_at(
                    findings,
                    files,
                    "R2",
                    &f.rel_path,
                    call.line,
                    format!(
                        "`Result` from `{}` is {how} — handle it or propagate with `?`",
                        call.name
                    ),
                );
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Discard {
    LetUnderscore,
    BareStatement,
}

/// Split a body token range into `;`-terminated statement spans. Spans
/// are *flat*: nested blocks contribute their own statements, and a
/// statement containing a block (e.g. `if .. { .. }`) is not produced.
fn statements(toks: &[Tok], body: std::ops::Range<usize>) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let end = body.end.min(toks.len());
    let mut start = body.start;
    let mut i = body.start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('}') {
            start = i + 1;
        } else if t.is_punct(';') {
            if start < i {
                out.push(start..i);
            }
            start = i + 1;
        }
        i += 1;
    }
    out
}

/// Does this statement span discard its value? `let _ = ...` always
/// does; a bare call statement (`f(x);` / `x.f();` / `T::f(x);`) does
/// unless the value is consumed (`?`, `=`, control flow, `.await`).
fn discard_shape(toks: &[Tok], stmt: std::ops::Range<usize>) -> Option<Discard> {
    let s = stmt.start;
    if toks.get(s).is_some_and(|t| t.is_ident("let"))
        && toks.get(s + 1).is_some_and(|t| t.kind == TokKind::Ident && t.text == "_")
        && toks.get(s + 2).is_some_and(|t| t.is_punct('='))
        && !toks.get(s + 3).is_some_and(|t| t.is_punct('='))
    {
        return Some(Discard::LetUnderscore);
    }
    let first = toks.get(s)?;
    let head_ok = first.kind == TokKind::Ident
        && !matches!(
            first.text.as_str(),
            "let" | "if" | "else" | "match" | "for" | "while" | "loop" | "return" | "break"
                | "continue" | "use" | "fn" | "struct" | "enum" | "impl" | "trait" | "mod"
                | "const" | "static" | "type" | "unsafe" | "pub" | "assert" | "debug_assert"
        );
    if !head_ok {
        return None;
    }
    let consumes = stmt.clone().any(|i| {
        let t = &toks[i];
        t.is_punct('?') || t.is_punct('=') || t.is_ident("await") || t.is_ident("return")
    });
    if consumes {
        return None;
    }
    Some(Discard::BareStatement)
}

// ---------------------------------------------------------------- R3

fn check_r3(files: &[SourceFile], graph: &CallGraph, findings: &mut Vec<Finding>) {
    let roots: Vec<FnId> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_hot && !f.in_test)
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return;
    }
    let parents = graph.reach_with_parents(&roots);
    for &id in parents.keys() {
        let f = &graph.fns[id];
        if f.in_test {
            continue;
        }
        let Some(file) = file_of(files, f) else { continue };
        let sites = allocation_sites(&file.toks, f.body.clone(), ALLOC_SETS);
        if sites.is_empty() {
            continue;
        }
        let flow = EscapeFlow::new(&file.toks, f);
        for (tok, line, what) in sites {
            if flow.cleared(tok) {
                continue;
            }
            push_at(
                findings,
                files,
                "R3",
                &f.rel_path,
                line,
                format!(
                    "allocation ({what}) on a hot path: {}",
                    chain_text(graph, &parents, id)
                ),
            );
        }
    }
}

/// Which method/ctor/macro names count as allocation sites.
struct AllocSets {
    methods: &'static [&'static str],
    ctors: &'static [(&'static str, &'static str)],
    macros: &'static [&'static str],
}

const ALLOC_SETS: &AllocSets =
    &AllocSets { methods: ALLOC_METHODS, ctors: ALLOC_CTORS, macros: ALLOC_MACROS };

const A1_SETS: &AllocSets =
    &AllocSets { methods: A1_METHODS, ctors: A1_CTORS, macros: A1_MACROS };

/// Allocation sites (token index, line, description) in a body range.
fn allocation_sites(
    toks: &[Tok],
    body: std::ops::Range<usize>,
    sets: &AllocSets,
) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    let end = body.end.min(toks.len());
    for i in body.start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if sets.methods.contains(&t.text.as_str())
            && i >= 1
            && toks[i - 1].is_punct('.')
            && next_non_turbofish_is_paren(toks, i + 1, end)
        {
            out.push((i, t.line, format!(".{}()", t.text)));
            continue;
        }
        if sets.macros.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push((i, t.line, format!("{}!", t.text)));
            continue;
        }
        if let Some((ty, ctor)) = sets.ctors.iter().find(|(ty, _)| t.is_ident(ty)) {
            // `Vec::new(..)` — possibly with a turbofish on the type.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 2).is_some_and(|n| n.is_punct('<'))
            {
                j = skip_angle(toks, j + 2, end);
                if !(toks.get(j).is_some_and(|n| n.is_punct(':'))
                    && toks.get(j + 1).is_some_and(|n| n.is_punct(':')))
                {
                    continue;
                }
            }
            if toks.get(j).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(j + 2).is_some_and(|n| n.is_ident(ctor))
            {
                out.push((i, t.line, format!("{ty}::{ctor}")));
            }
        }
    }
    out
}

/// Per-fn escape analysis for R3v2 and A1 (see module docs): statement
/// groups at the outer scope, closure-body scoping, and a backward
/// taint fixpoint from the fn's escape surfaces (`&mut`/`Scratch`
/// params, return value, tail expression).
///
/// A *group* is one statement of a scope: the span between `;`/brace
/// boundaries at that scope's nesting level. The fn body is scope 0;
/// every braced closure body is its own scope. Boundaries inside a
/// nested closure, a closure's own braces, and the braces delimiting a
/// `match` body are all transparent, so
/// `let dims = xs.map(|m| {..}).collect();` stays ONE group — the
/// trailing `.collect()` shares the `let dims` write and the closure's
/// captured reads (`warp`, `imputed`, ...) feed the taint.
///
/// Clearing is per scope: a site clears when its group's spine writes a
/// tainted binding, or when its group is the scope's tail/`return` AND
/// the scope *delivers* — the fn body always delivers; a closure
/// delivers when the statement that owns it clears or escapes (its
/// per-element results become the statement's value, e.g. the vectors
/// built inside a `.map(|m| {..})` that `.collect()`s into the return
/// value). A closure whose value goes nowhere tainted clears nothing.
struct EscapeFlow<'a> {
    toks: &'a [Tok],
    /// Closure body ranges, parallel to `scopes[1..]`.
    closures: Vec<std::ops::Range<usize>>,
    /// Scope 0 is the fn body; scope `1 + k` is `closures[k]`.
    scopes: Vec<ScopeFlow>,
    /// `get_or_init(..)` argument spans (one-time init paths).
    oncelock: Vec<std::ops::Range<usize>>,
    /// `Scratch`-typed params and locals (plus the `scratch`-named
    /// field convention).
    scratch: std::collections::BTreeSet<String>,
}

/// Escape state of one scope's statement groups (see [`EscapeFlow`]).
struct ScopeFlow {
    groups: Vec<std::ops::Range<usize>>,
    /// Per-group: does its spine write a binding in the flow set?
    cleared: Vec<bool>,
    /// Per-group: this scope's tail/`return` statement?
    escaping: Vec<bool>,
    /// Does this scope's value reach the fn's escape surface?
    delivers: bool,
}

impl<'a> EscapeFlow<'a> {
    fn new(toks: &'a [Tok], f: &FnDef) -> EscapeFlow<'a> {
        let body = f.body.start..f.body.end.min(toks.len());
        let closures = closure_body_ranges(toks, body.clone());
        let loops: Vec<std::ops::Range<usize>> = loop_body_ranges(toks)
            .into_iter()
            .filter(|r| r.start >= body.start && r.end <= body.end)
            .collect();
        let scratch = scratch_names(toks, body.clone(), &f.scratch_params);
        let match_braces = match_brace_spans(toks, body.clone());

        // Innermost-closure scope of a token (0 = the fn body).
        let scope_of = |at: usize| -> usize {
            closures
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(&at))
                .min_by_key(|(_, r)| r.end - r.start)
                .map_or(0, |(k, _)| k + 1)
        };
        // A closure range is `open+1..close`, so the braces themselves
        // sit just outside it and must not split the statement either.
        let closure_brace =
            |at: usize| closures.iter().any(|r| at + 1 == r.start || at == r.end);
        let range_of = |s: usize| -> std::ops::Range<usize> {
            if s == 0 { body.clone() } else { closures[s - 1].clone() }
        };

        // Statement groups per scope.
        let n_scopes = closures.len() + 1;
        let groups_by: Vec<Vec<std::ops::Range<usize>>> = (0..n_scopes)
            .map(|s| {
                let r = range_of(s);
                let mut gs = Vec::new();
                let mut start = r.start;
                // `;` inside `()`/`[]` is not a statement end — it is
                // the repeat form (`vec![0.0; n]`, `[T; N]`).
                let mut depth = 0usize;
                for i in r.clone() {
                    let t = &toks[i];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth = depth.saturating_sub(1);
                    }
                    let boundary = (t.is_punct(';') || t.is_punct('{') || t.is_punct('}'))
                        && depth == 0
                        && scope_of(i) == s
                        && !closure_brace(i)
                        && !match_braces.contains(&i);
                    if boundary {
                        if start < i {
                            gs.push(start..i);
                        }
                        start = i + 1;
                    }
                }
                if start < r.end {
                    gs.push(start..r.end);
                }
                gs
            })
            .collect();

        // Spine writes: `let`/assignment/dot-receiver/`for`-pattern
        // targets at this scope's own level (child closures excluded).
        let spine_writes = |s: usize, g: &std::ops::Range<usize>| -> Vec<String> {
            let mut w = Vec::new();
            let mut i = g.start;
            while i < g.end {
                if scope_of(i) != s {
                    i += 1;
                    continue;
                }
                let run_end = (i..g.end).find(|&j| scope_of(j) != s).unwrap_or(g.end);
                w.extend(segment_writes(toks, i..run_end));
                i = run_end;
            }
            w
        };

        // Escaping groups: same-scope `return` statements (a `return`
        // inside a nested closure leaves the closure, not this scope),
        // and tail expressions (not inside a same-scope loop body — a
        // loop's last statement is followed only by `}`s but does not
        // produce the scope's value).
        let escaping_by: Vec<Vec<bool>> = (0..n_scopes)
            .map(|s| {
                let r = range_of(s);
                groups_by[s]
                    .iter()
                    .map(|g| {
                        g.clone().any(|i| scope_of(i) == s && toks[i].is_ident("return"))
                            || (!loops
                                .iter()
                                .any(|l| scope_of(l.start) == s && l.contains(&g.start))
                                && is_tail_segment(toks, g.end, r.end))
                    })
                    .collect()
            })
            .collect();

        // Backward taint, outer scopes first (a closure inherits its
        // parent's flow set — captured bindings — and seeds its own
        // tail only when its value lands somewhere tainted). Any group
        // whose spine writes a tainted binding taints ALL its idents,
        // including closure-body reads (captures flowing into the
        // statement's result).
        let mut order: Vec<usize> = (0..n_scopes).collect();
        order.sort_by_key(|&s| std::cmp::Reverse(range_of(s).len()));
        let mut flow: Vec<std::collections::BTreeSet<String>> =
            vec![std::collections::BTreeSet::new(); n_scopes];
        let mut scopes: Vec<Option<ScopeFlow>> = (0..n_scopes).map(|_| None).collect();
        for s in order {
            let delivers = if s == 0 {
                true
            } else {
                // The statement that owns this closure, in the parent.
                let r = range_of(s);
                let p = scope_of(r.start - 1);
                let owner = scopes[p].as_ref().expect("parent scope computed first");
                match owner.groups.iter().position(|g| g.contains(&r.start)) {
                    Some(k) => {
                        owner.cleared[k] || (owner.escaping[k] && owner.delivers)
                    }
                    None => false,
                }
            };
            let mut fs = if s == 0 {
                let mut fs = std::collections::BTreeSet::new();
                for p in f.mut_params.iter().chain(&f.scratch_params) {
                    fs.insert(p.clone());
                }
                fs
            } else {
                flow[scope_of(range_of(s).start - 1)].clone()
            };
            if delivers {
                for (k, g) in groups_by[s].iter().enumerate() {
                    if escaping_by[s][k] {
                        for t in &toks[g.clone()] {
                            if t.kind == TokKind::Ident {
                                fs.insert(t.text.clone());
                            }
                        }
                    }
                }
            }
            loop {
                let mut changed = false;
                for g in groups_by[s].iter().rev() {
                    if spine_writes(s, g).iter().any(|w| fs.contains(w)) {
                        for t in &toks[g.clone()] {
                            if t.kind == TokKind::Ident && fs.insert(t.text.clone()) {
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            let cleared: Vec<bool> = groups_by[s]
                .iter()
                .map(|g| spine_writes(s, g).iter().any(|w| fs.contains(w)))
                .collect();
            scopes[s] = Some(ScopeFlow {
                groups: groups_by[s].clone(),
                cleared,
                escaping: escaping_by[s].clone(),
                delivers,
            });
            flow[s] = fs;
        }
        let scopes: Vec<ScopeFlow> =
            scopes.into_iter().map(|s| s.expect("all scopes computed")).collect();

        let oncelock = oncelock_arg_spans(toks, body);
        EscapeFlow { toks, closures, scopes, oncelock, scratch }
    }

    /// Is the allocation at token `at` cleared — proven to escape into
    /// caller-owned storage, the return value, a one-time init, or a
    /// scratch arena?
    fn cleared(&self, at: usize) -> bool {
        if self.oncelock.iter().any(|r| r.contains(&at)) {
            return true;
        }
        if self.scratch_receiver(at) {
            return true;
        }
        let s = self
            .closures
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains(&at))
            .min_by_key(|(_, r)| r.end - r.start)
            .map_or(0, |(k, _)| k + 1);
        let scope = &self.scopes[s];
        match scope.groups.iter().position(|g| g.contains(&at)) {
            Some(k) => scope.cleared[k] || (scope.escaping[k] && scope.delivers),
            None => false,
        }
    }

    /// Does the receiver path of the (method) site at `at` go through
    /// a scratch binding? `scratch.jobs.push(..)`, `self.scratch.buf
    /// .extend(..)`.
    fn scratch_receiver(&self, at: usize) -> bool {
        crate::traitobj::receiver_components(self.toks, at)
            .iter()
            .any(|c| self.scratch.contains(c) || c == "scratch" || c.ends_with("_scratch"))
    }
}

/// Split a body into flat spans at `;`, `{`, `}`. Unlike
/// [`statements`], spans adjacent to braces (loop/if headers, tail
/// expressions) are kept, so every non-delimiter token belongs to
/// exactly one span.
fn segments(toks: &[Tok], body: std::ops::Range<usize>) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let end = body.end.min(toks.len());
    let mut start = body.start;
    for (i, t) in toks.iter().enumerate().take(end).skip(body.start) {
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            if start < i {
                out.push(start..i);
            }
            start = i + 1;
        }
    }
    if start < end {
        out.push(start..end);
    }
    out
}

/// Token indices of the `{`/`}` delimiting `match` bodies. Statement
/// grouping treats them as transparent, so a match expression stays
/// part of the statement that consumes its value — otherwise every arm
/// would become its own group, divorcing an arm allocation
/// (`WindowKind::Rectangular => vec![1.0; len]`) from the `let`/tail
/// that receives it. Braces of arm *blocks* (`=> { .. }`) still split.
fn match_brace_spans(
    toks: &[Tok],
    body: std::ops::Range<usize>,
) -> std::collections::BTreeSet<usize> {
    let mut out = std::collections::BTreeSet::new();
    let end = body.end.min(toks.len());
    for i in body.start..end {
        if !toks[i].is_ident("match") {
            continue;
        }
        // Scrutinee: scan to the first `{` outside `()`/`[]` nesting.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < end {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                break;
            }
            j += 1;
        }
        if j >= end {
            continue;
        }
        let open = j;
        let mut braces = 0i32;
        while j < end {
            if toks[j].is_punct('{') {
                braces += 1;
            } else if toks[j].is_punct('}') {
                braces -= 1;
                if braces == 0 {
                    out.insert(open);
                    out.insert(j);
                    break;
                }
            }
            j += 1;
        }
    }
    out
}

/// Is the segment ending at `seg_end` in tail position — followed only
/// by closing braces and complete `else {..}` continuations up to the
/// end of the body?
fn is_tail_segment(toks: &[Tok], seg_end: usize, body_end: usize) -> bool {
    let end = body_end.min(toks.len());
    let mut i = seg_end;
    while i < end {
        let t = &toks[i];
        if t.is_punct('}') {
            i += 1;
            continue;
        }
        if t.is_ident("else") {
            // Skip the complete `else [if ..] { .. }` block.
            let Some(open) = (i + 1..end).find(|&j| toks[j].is_punct('{')) else {
                return false;
            };
            let mut depth = 0usize;
            let mut j = open;
            while j < end {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        return false;
    }
    true
}

/// Bindings a segment writes: `let` declarations, `for`-loop patterns,
/// assignments (plain, compound, indexed), `&mut x` borrows, and
/// dot-receivers (potential interior mutation). An index *read*
/// (`v[i]` with no following `=`) is not a write — that distinction is
/// what keeps `v.push(out[0])` on a dead local flagged while
/// `out[i] = v` clears.
fn segment_writes(toks: &[Tok], seg: std::ops::Range<usize>) -> Vec<String> {
    let mut out = Vec::new();
    let end = seg.end.min(toks.len());
    let mut i = seg.start;
    while i < end {
        let t = &toks[i];
        if t.is_ident("for") {
            // `for <pat> in <iter>` binds the pattern's idents — the
            // iterated value flows into them, so a tainted loop var
            // taints what it iterates (`for &seg in &order` links
            // `order` to `seg`).
            let mut j = i + 1;
            while j < end && !toks[j].is_ident("in") {
                let p = &toks[j];
                if p.kind == TokKind::Ident && !p.is_ident("mut") && !p.is_ident("ref") {
                    out.push(p.text.clone());
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            if let Some(n) = toks.get(j).filter(|n| n.kind == TokKind::Ident) {
                out.push(n.text.clone());
                i = j + 1;
                continue;
            }
        }
        if t.kind == TokKind::Ident {
            if i >= 2 && toks[i - 1].is_ident("mut") && toks[i - 2].is_punct('&') {
                out.push(t.text.clone());
            }
            if ident_is_assigned(toks, i, end) {
                out.push(t.text.clone());
            }
            if toks.get(i + 1).is_some_and(|n| n.is_punct('.')) {
                out.push(t.text.clone());
            }
        }
        i += 1;
    }
    out
}

/// Is the ident at `i` the target of `=`, a compound assign, a shift
/// assign, or an indexed store (`x[..] = ..`)?
fn ident_is_assigned(toks: &[Tok], i: usize, end: usize) -> bool {
    let assigns_at = |j: usize| -> bool {
        let Some(t) = toks.get(j) else { return false };
        // `=` but not `==`.
        if t.is_punct('=') {
            return !toks.get(j + 1).is_some_and(|n| n.is_punct('='));
        }
        // `+=` etc., but not `<=`/`>=`/`!=` comparisons.
        if "+-*/%|&^".chars().any(|c| t.is_punct(c))
            && toks.get(j + 1).is_some_and(|n| n.is_punct('='))
            && !toks.get(j + 2).is_some_and(|n| n.is_punct('='))
        {
            return true;
        }
        // `<<=` / `>>=` (the lexer never fuses puncts).
        "<>".chars().any(|c| {
            t.is_punct(c)
                && toks.get(j + 1).is_some_and(|n| n.is_punct(c))
                && toks.get(j + 2).is_some_and(|n| n.is_punct('='))
        })
    };
    let Some(next) = toks.get(i + 1) else { return false };
    if !next.is_punct('[') {
        return assigns_at(i + 1);
    }
    // `x[..]... = ` — skip index brackets, then require an assignment.
    let mut j = i + 1;
    let mut depth = 0usize;
    while j < end {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    assigns_at(j + 1)
}

/// `Scratch`-typed bindings visible in the body: the fn's
/// `Scratch`-typed params plus locals whose `let` declaration mentions
/// a `*Scratch` type.
fn scratch_names(
    toks: &[Tok],
    body: std::ops::Range<usize>,
    scratch_params: &[String],
) -> std::collections::BTreeSet<String> {
    let mut names: std::collections::BTreeSet<String> =
        scratch_params.iter().cloned().collect();
    let end = body.end.min(toks.len());
    for i in body.start..end {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else { continue };
        let decl_end = (j..end).find(|&k| toks[k].is_punct(';')).unwrap_or(end);
        if toks[j + 1..decl_end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.ends_with("Scratch"))
        {
            names.insert(name.text.clone());
        }
    }
    names
}

/// Brace-delimited closure body ranges inside `body`. Detection is
/// token-local: a `|` in closure position (after `(`, `,`, `=`, `{`,
/// `;`, `:` or `move`), a closing `|` nearby with no statement
/// boundary between, then `{` (optionally past a `-> Type`). Braceless
/// closures merge into their surrounding segment, which is the
/// conservative direction (their allocations only clear through
/// scratch receivers).
fn closure_body_ranges(
    toks: &[Tok],
    body: std::ops::Range<usize>,
) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let end = body.end.min(toks.len());
    let mut i = body.start;
    while i < end {
        if !toks[i].is_punct('|') {
            i += 1;
            continue;
        }
        let closure_position = if i == body.start {
            true
        } else {
            let p = &toks[i - 1];
            p.is_punct('(')
                || p.is_punct(',')
                || p.is_punct('=')
                || p.is_punct('{')
                || p.is_punct(';')
                || p.is_punct(':')
                || p.is_ident("move")
        };
        if !closure_position {
            i += 1;
            continue;
        }
        // Closing `|`: nearby, no statement boundary or `=` between
        // (an `=` means we were looking at a match arm or bit-or).
        let close = (i + 1..end.min(i + 40)).find(|&j| toks[j].is_punct('|'));
        let close = match close {
            Some(c)
                if !toks[i + 1..c].iter().any(|t| {
                    t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct('=')
                }) =>
            {
                c
            }
            _ => {
                i += 1;
                continue;
            }
        };
        let mut k = close + 1;
        if toks.get(k).is_some_and(|t| t.is_punct('-'))
            && toks.get(k + 1).is_some_and(|t| t.is_punct('>'))
        {
            // `-> Type {`: the return type of this codebase's closures
            // is short; scan a bounded window for the `{`.
            k = (k + 2..end.min(k + 14))
                .find(|&j| toks[j].is_punct('{'))
                .unwrap_or(end);
        }
        if toks.get(k).is_some_and(|t| t.is_punct('{')) {
            let mut depth = 0usize;
            let mut j = k;
            while j < end {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            out.push(k + 1..j);
        }
        i = close + 1;
    }
    out
}

/// Argument spans of `get_or_init(..)` / `get_or_try_init(..)` calls —
/// one-time `OnceLock` initialization paths.
fn oncelock_arg_spans(
    toks: &[Tok],
    body: std::ops::Range<usize>,
) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let end = body.end.min(toks.len());
    for i in body.start..end {
        if !(toks[i].is_ident("get_or_init") || toks[i].is_ident("get_or_try_init")) {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|t| t.is_punct('(')).map(|_| i + 1) else {
            continue;
        };
        let mut depth = 0usize;
        let mut j = open;
        while j < end {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        out.push(open + 1..j);
    }
    out
}

// ---------------------------------------------------------------- A1

fn check_a1(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    if cfg.a1_crates.is_empty() {
        return;
    }
    let roots: Vec<FnId> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_hot && !f.in_test)
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return;
    }
    let parents = graph.reach_with_parents(&roots);
    for &id in parents.keys() {
        let f = &graph.fns[id];
        if f.in_test || !cfg.a1_crates.iter().any(|c| c == &f.crate_name) {
            continue;
        }
        // A scratch arena's own methods are the one place allowed to
        // allocate — that is where capacity lives.
        if f.owner.as_deref().is_some_and(|o| o.ends_with("Scratch")) {
            continue;
        }
        let Some(file) = file_of(files, f) else { continue };
        let toks = &file.toks;
        let body = f.body.start..f.body.end.min(toks.len());
        let sites = allocation_sites(toks, body.clone(), A1_SETS);
        if sites.is_empty() {
            continue;
        }
        let scratch = scratch_names(toks, body.clone(), &f.scratch_params);
        let segs = segments(toks, body);
        let approved = |at: usize| -> bool {
            let through_scratch = crate::traitobj::receiver_components(toks, at)
                .iter()
                .any(|c| scratch.contains(c) || c == "scratch" || c.ends_with("_scratch"));
            if through_scratch {
                return true;
            }
            // The site's whole statement works on a scratch binding
            // (`scratch.staging.extend(series.to_vec())`-style flows).
            segs.iter().find(|s| s.contains(&at)).is_some_and(|seg| {
                toks[seg.clone()].iter().any(|t| {
                    t.kind == TokKind::Ident
                        && (scratch.contains(&t.text) || t.text.ends_with("Scratch"))
                })
            })
        };
        for (tok, line, what) in sites {
            if approved(tok) {
                continue;
            }
            push_at(
                findings,
                files,
                "A1",
                &f.rel_path,
                line,
                format!(
                    "scratch-discipline violation ({what}) in a hot-reachable fn: {}",
                    chain_text(graph, &parents, id)
                ),
            );
        }
    }
}

/// After `.name`, is the next thing `(` — allowing `::<T>` in between?
fn next_non_turbofish_is_paren(toks: &[Tok], mut j: usize, end: usize) -> bool {
    if toks.get(j).is_some_and(|n| n.is_punct(':'))
        && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
        && toks.get(j + 2).is_some_and(|n| n.is_punct('<'))
    {
        j = skip_angle(toks, j + 2, end);
    }
    toks.get(j).is_some_and(|n| n.is_punct('('))
}

/// Index just past the `>` matching the `<` at `open`.
fn skip_angle(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

// ---------------------------------------------------------------- R4

fn check_r4(files: &[SourceFile], cfg: &Config, findings: &mut Vec<Finding>) {
    for file in files {
        if file.kind != FileKind::Lib || !cfg.r4_crates.iter().any(|c| c == &file.crate_name) {
            continue;
        }
        // The helper itself is the one place allowed to accumulate.
        if file.rel_path.ends_with("core/src/math.rs") {
            continue;
        }
        check_r4_file(file, findings);
    }
}

const R4_HINT: &str = "route through tsda_core::math::sum_stable so accumulation order is pinned";

fn check_r4_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.toks;
    let n = toks.len();
    // Loop body brace ranges, for the `+=`-accumulator check.
    let loop_ranges = loop_body_ranges(toks);
    // Locals declared with a float initialiser or ascription.
    let float_locals = float_local_names(toks);

    for i in 0..n {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        // `.sum::<f32>()` / `.sum()` on a float expression.
        if t.is_ident("sum") && i >= 1 && toks[i - 1].is_punct('.') {
            let flagged = match turbofish_types(toks, i + 1) {
                Some(types) => types.iter().any(|ty| ty == "f32" || ty == "f64"),
                // Untyped `.sum()`: only flag when the statement gives a
                // float hint (`let x: f64 = ...` / `as f32`), so integer
                // count sums stay legal.
                None => statement_mentions_float(toks, i),
            };
            if flagged && toks_call_follows(toks, i + 1) {
                findings.push(finding_at(file, t.line, format!("float `.sum()` — {R4_HINT}")));
            }
            continue;
        }
        // `.fold(0.0, |acc, x| acc + x)`-style float folds. Folds whose
        // closure runs max/min are order-insensitive selections, not
        // accumulations, and stay legal.
        if t.is_ident("fold")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
            && toks.get(i + 2).is_some_and(|z| z.kind == TokKind::Num && z.text.contains('.'))
            && !fold_is_selection(toks, i + 1)
        {
            findings.push(finding_at(file, t.line, format!("float `.fold()` — {R4_HINT}")));
            continue;
        }
        // `acc += term` on a float local inside a loop body.
        if t.is_punct('+')
            && toks.get(i + 1).is_some_and(|e| e.is_punct('='))
            && i >= 1
            && toks[i - 1].kind == TokKind::Ident
            && float_locals.contains(&toks[i - 1].text)
            && loop_ranges.iter().any(|r| r.contains(&i))
        {
            findings.push(finding_at(
                file,
                t.line,
                format!("float `+=` accumulation in a loop — {R4_HINT}"),
            ));
        }
    }
}

fn finding_at(file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule: "R4",
        path: file.rel_path.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
    }
}

/// `::<A, B>` starting at `j`: the top-level type names, else `None`.
fn turbofish_types(toks: &[Tok], j: usize) -> Option<Vec<String>> {
    if !(toks.get(j).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 2).is_some_and(|t| t.is_punct('<')))
    {
        return None;
    }
    let close = skip_angle(toks, j + 2, toks.len());
    let names = toks[j + 3..close.saturating_sub(1)]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    Some(names)
}

/// Is the token at/after `j` (past an optional turbofish) a `(`?
fn toks_call_follows(toks: &[Tok], j: usize) -> bool {
    next_non_turbofish_is_paren(toks, j, toks.len())
}

/// Does the `.fold(...)` call whose `(` sits at `open` select rather
/// than accumulate — i.e. call `.max(`/`.min(` inside its argument
/// list? Scans to the matching close paren.
fn fold_is_selection(toks: &[Tok], open: usize) -> bool {
    let mut depth = 0usize;
    for j in open..toks.len() {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if (toks[j].is_ident("max") || toks[j].is_ident("min"))
            && j >= 1
            && toks[j - 1].is_punct('.')
        {
            return true;
        }
    }
    false
}

/// Does the statement around token `i` mention `f32`/`f64`?
fn statement_mentions_float(toks: &[Tok], i: usize) -> bool {
    let start = (0..i).rev().find(|&j| {
        toks[j].is_punct(';') || toks[j].is_punct('{') || toks[j].is_punct('}')
    });
    let end = (i..toks.len())
        .find(|&j| toks[j].is_punct(';') || toks[j].is_punct('{') || toks[j].is_punct('}'))
        .unwrap_or(toks.len());
    let start = start.map_or(0, |s| s + 1);
    toks[start..end].iter().any(|t| t.is_ident("f32") || t.is_ident("f64"))
}

/// Names of locals declared with a float hint: `let mut x = 0.0`,
/// `let mut x: f64 = ...`, `let mut x = 0f32`.
fn float_local_names(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else { continue };
        // Scan the declaration up to `;` for a float hint.
        let end = (j..toks.len()).find(|&k| toks[k].is_punct(';')).unwrap_or(toks.len());
        let is_float = toks[j + 1..end].iter().any(|t| {
            t.is_ident("f32")
                || t.is_ident("f64")
                || (t.kind == TokKind::Num
                    && (t.text.contains('.') || t.text.ends_with("f32") || t.text.ends_with("f64")))
        });
        if is_float {
            names.push(name.text.clone());
        }
    }
    names
}

/// Brace ranges of `for`/`while`/`loop` bodies (token index ranges).
fn loop_body_ranges(toks: &[Tok]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("for") || t.is_ident("while") || t.is_ident("loop")) {
            continue;
        }
        // The loop body is the first `{` after the header (this
        // codebase never puts a struct literal in a loop header).
        let open = (i + 1..toks.len()).find(|&j| toks[j].is_punct('{'));
        if let Some(open) = open {
            let mut depth = 0usize;
            let mut j = open;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            out.push(open..j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lib_file(crate_name: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let in_test = vec![false; toks.len()];
        SourceFile {
            crate_name: crate_name.into(),
            rel_path: format!("crates/{crate_name}/src/lib.rs"),
            kind: FileKind::Lib,
            lines: src.lines().map(str::to_string).collect(),
            toks,
            in_test,
        }
    }

    fn run(files: Vec<SourceFile>, cfg: &Config) -> Vec<Finding> {
        let graph = CallGraph::build(&files);
        let mut findings = Vec::new();
        run_interproc(&files, &graph, cfg, &mut findings);
        findings
    }

    fn cfg_with(f: impl FnOnce(&mut Config)) -> Config {
        let mut cfg = Config::default();
        f(&mut cfg);
        cfg
    }

    #[test]
    fn r1_reports_cross_crate_chain_to_panic() {
        let files = vec![
            lib_file("a", "pub fn serve_loop() {\n    tsda_b::decode();\n}\n"),
            lib_file("b", "pub fn decode() {\n    inner()\n}\nfn inner() {\n    data.unwrap();\n}\n"),
        ];
        let cfg = cfg_with(|c| c.r1_roots = vec!["a::serve_loop".into()]);
        let findings = run(files, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, "R1");
        assert_eq!(f.path, "crates/b/src/lib.rs");
        assert_eq!(f.line, 5);
        assert!(f.message.contains("a::serve_loop (crates/a/src/lib.rs:2)"), "{}", f.message);
        assert!(f.message.contains("b::decode (crates/b/src/lib.rs:2)"), "{}", f.message);
        assert!(f.message.contains("b::inner"), "{}", f.message);
    }

    #[test]
    fn r1_unmatched_root_is_a_finding() {
        let files = vec![lib_file("a", "pub fn fine() {}\n")];
        let cfg = cfg_with(|c| c.r1_roots = vec!["a::gone".into()]);
        let findings = run(files, &cfg);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("matches no function"), "{}", findings[0].message);
    }

    #[test]
    fn r1_ignores_unreachable_panics() {
        let files = vec![lib_file(
            "a",
            "pub fn root() { safe() }\nfn safe() {}\nfn cold() { boom.unwrap(); }\n",
        )];
        let cfg = cfg_with(|c| c.r1_roots = vec!["a::root".into()]);
        assert!(run(files, &cfg).is_empty());
    }

    #[test]
    fn r2_flags_let_underscore_and_bare_statement_discards() {
        let files = vec![lib_file(
            "a",
            "pub fn fallible() -> Result<u8, ()> { Ok(1) }\n\
             pub fn ok_consumer() -> Result<u8, ()> { fallible() }\n\
             pub fn discards() {\n\
                 let _ = fallible();\n\
                 fallible();\n\
             }\n\
             pub fn handles() -> Result<(), ()> {\n\
                 let v = fallible()?;\n\
                 if fallible().is_ok() { drop(v); }\n\
                 Ok(())\n\
             }\n",
        )];
        let cfg = cfg_with(|c| c.r2_crates = vec!["a".into()]);
        let findings = run(files, &cfg);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![4, 5], "{findings:?}");
        assert!(findings[0].message.contains("bound to `_`"));
        assert!(findings[1].message.contains("bare statement"));
    }

    #[test]
    fn r2_skips_non_result_and_unresolved_calls() {
        let files = vec![lib_file(
            "a",
            "pub fn infallible() {}\n\
             pub fn go(w: Worker) {\n\
                 infallible();\n\
                 let _ = w.join();\n\
             }\n",
        )];
        let cfg = cfg_with(|c| c.r2_crates = vec!["a".into()]);
        assert!(run(files, &cfg).is_empty());
    }

    #[test]
    fn r3_flags_allocation_reached_from_hot_fn() {
        let files = vec![lib_file(
            "a",
            "#[doc(alias = \"tsda::hot\")]\n\
             pub fn kernel(out: &mut [f64]) {\n\
                 helper(out);\n\
             }\n\
             fn helper(out: &mut [f64]) {\n\
                 let mut v = Vec::new();\n\
                 v.push(out[0]);\n\
             }\n\
             fn cold() { let s = format!(\"fine here\"); }\n",
        )];
        let findings = run(files, &Config::default());
        let r3: Vec<&Finding> = findings.iter().filter(|f| f.rule == "R3").collect();
        assert_eq!(r3.len(), 2, "{findings:?}");
        assert!(r3[0].message.contains("Vec::new"), "{}", r3[0].message);
        assert!(r3[1].message.contains(".push()"), "{}", r3[1].message);
        assert!(r3[0].message.contains("a::kernel (crates/a/src/lib.rs:3)"), "{}", r3[0].message);
        assert!(findings.iter().all(|f| !f.snippet.contains("fine here")));
    }

    #[test]
    fn r3v2_clears_escaping_allocations() {
        let files = vec![lib_file(
            "a",
            "#[doc(alias = \"tsda::hot\")]\n\
             pub fn kernel(out: &mut Vec<f64>, scratch: &mut AugScratch) {\n\
                 fills(out);\n\
                 let v = builder();\n\
                 staged(scratch);\n\
                 closure_alloc(out);\n\
                 once();\n\
             }\n\
             fn fills(out: &mut Vec<f64>) {\n\
                 let staging = compute().to_vec();\n\
                 out.extend(staging);\n\
             }\n\
             fn builder() -> Vec<f64> {\n\
                 let mut b = Vec::with_capacity(4);\n\
                 b.push(1.0);\n\
                 b\n\
             }\n\
             fn staged(s: &mut AugScratch) {\n\
                 s.buf.push(1.0);\n\
             }\n\
             fn closure_alloc(out: &mut Vec<f64>) {\n\
                 run(|| {\n\
                     let mut tmp = Vec::new();\n\
                     tmp.push(2.0);\n\
                 });\n\
             }\n\
             fn once() {\n\
                 CACHE.get_or_init(|| vec![0.0; 8]);\n\
             }\n",
        )];
        let findings = run(files, &Config::default());
        let r3: Vec<&Finding> = findings.iter().filter(|f| f.rule == "R3").collect();
        // Out-param flow (fills), return/tail flow (builder), scratch
        // receiver (staged), and the OnceLock closure (once) all
        // clear; only the dead-local allocation inside the worker
        // closure is steady-state churn.
        let lines: Vec<u32> = r3.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![23, 24], "{r3:?}");
        assert!(r3[0].message.contains("Vec::new"), "{}", r3[0].message);
        assert!(r3[1].message.contains(".push()"), "{}", r3[1].message);
        assert!(r3[0].message.contains("a::kernel"), "{}", r3[0].message);
    }

    #[test]
    fn r3v2_clears_closure_allocations_that_feed_the_result() {
        // The per-dim vectors built inside `.map(|m| {..})` become the
        // collected value, which is the fn's tail — they escape. The
        // sibling closure whose value is discarded does not deliver, so
        // its allocation stays flagged.
        let files = vec![lib_file(
            "a",
            "#[doc(alias = \"tsda::hot\")]\n\
             pub fn kernel(n: usize) -> Vec<Vec<f64>> {\n\
                 transform(n)\n\
             }\n\
             fn transform(n: usize) -> Vec<Vec<f64>> {\n\
                 sink(|m| {\n\
                     let mut waste = Vec::new();\n\
                     waste.push(m as f64);\n\
                 });\n\
                 let dims: Vec<Vec<f64>> = (0..n)\n\
                     .map(|m| {\n\
                         let mut d = Vec::with_capacity(n);\n\
                         d.push(m as f64);\n\
                         d\n\
                     })\n\
                     .collect();\n\
                 dims\n\
             }\n",
        )];
        let findings = run(files, &Config::default());
        let r3: Vec<&Finding> = findings.iter().filter(|f| f.rule == "R3").collect();
        let lines: Vec<u32> = r3.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![7, 8], "{r3:?}");
        assert!(r3[0].message.contains("Vec::new"), "{}", r3[0].message);
    }

    #[test]
    fn r3v2_clears_match_arm_allocations_in_tail_position() {
        // A match body's own braces do not split the statement, so an
        // arm allocation (`=> vec![..]`) shares the tail that returns
        // the match's value — including the repeat form's inner `;`.
        let files = vec![lib_file(
            "a",
            "#[doc(alias = \"tsda::hot\")]\n\
             pub fn kernel(k: u8, n: usize) -> Vec<f64> {\n\
                 window(k, n)\n\
             }\n\
             fn window(k: u8, n: usize) -> Vec<f64> {\n\
                 let mut junk = Vec::new();\n\
                 junk.push(0.0);\n\
                 match k {\n\
                     0 => vec![1.0; n],\n\
                     _ => Vec::with_capacity(n),\n\
                 }\n\
             }\n",
        )];
        let findings = run(files, &Config::default());
        let r3: Vec<&Finding> = findings.iter().filter(|f| f.rule == "R3").collect();
        let lines: Vec<u32> = r3.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![6, 7], "{r3:?}");
    }

    #[test]
    fn r3v2_taints_through_for_loop_patterns() {
        // `for &seg in &order` binds `seg` from `order`; the segments
        // feed `d`, which feeds the returned `dims` — so the `order`
        // collect participates in the result and clears.
        let files = vec![lib_file(
            "a",
            "#[doc(alias = \"tsda::hot\")]\n\
             pub fn kernel(n: usize) -> Vec<f64> {\n\
                 permute(n)\n\
             }\n\
             fn permute(n: usize) -> Vec<f64> {\n\
                 let order: Vec<usize> = (0..n).collect();\n\
                 let mut d = Vec::with_capacity(n);\n\
                 for &seg in &order {\n\
                     d.push(seg as f64);\n\
                 }\n\
                 d\n\
             }\n",
        )];
        let findings = run(files, &Config::default());
        let r3: Vec<&Finding> = findings.iter().filter(|f| f.rule == "R3").collect();
        assert!(r3.is_empty(), "{r3:?}");
    }

    #[test]
    fn a1_flags_banned_allocations_outside_scratch_receivers() {
        let files = vec![lib_file(
            "serve",
            "#[doc(alias = \"tsda::hot\")]\n\
             pub fn submit(scratch: &mut WorkerScratch, series: &[f64]) {\n\
                 let staged = scratch.staging.to_vec();\n\
                 scratch.grow();\n\
                 helper(series);\n\
             }\n\
             impl WorkerScratch {\n\
                 pub fn grow(&mut self) {\n\
                     self.staging = Vec::with_capacity(64);\n\
                 }\n\
             }\n\
             fn helper(series: &[f64]) -> Vec<f64> {\n\
                 let copy = series.to_vec();\n\
                 let msg = format!(\"n={}\", copy.len());\n\
                 copy\n\
             }\n",
        )];
        let cfg = cfg_with(|c| c.a1_crates = vec!["serve".into()]);
        let findings = run(files, &cfg);
        let a1: Vec<&Finding> = findings.iter().filter(|f| f.rule == "A1").collect();
        // The scratch-receiver `.to_vec()` is approved, the arena's own
        // `grow` is exempt; `helper`'s copies are violations — note R3
        // clears the returned `copy` (constructor flow) but A1 still
        // bans it in a scratch-disciplined crate.
        let lines: Vec<u32> = a1.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![13, 14], "{a1:?}");
        assert!(a1[0].message.contains("scratch-discipline violation (.to_vec())"));
        assert!(a1[1].message.contains("format!"), "{}", a1[1].message);
        assert!(a1[0].message.contains("serve::submit"), "{}", a1[0].message);
    }

    #[test]
    fn a1_is_silent_without_crate_opt_in() {
        let files = vec![lib_file(
            "serve",
            "#[doc(alias = \"tsda::hot\")]\n\
             pub fn submit(series: &[f64]) { let c = series.to_vec(); }\n",
        )];
        let findings = run(files, &Config::default());
        assert!(findings.iter().all(|f| f.rule != "A1"), "{findings:?}");
    }

    #[test]
    fn r4_flags_unpinned_reductions_and_accepts_sum_stable() {
        let files = vec![lib_file(
            "a",
            "pub fn mean(xs: &[f64]) -> f64 {\n\
                 xs.iter().sum::<f64>() / xs.len() as f64\n\
             }\n\
             pub fn count(xs: &[usize]) -> usize {\n\
                 xs.iter().sum::<usize>()\n\
             }\n\
             pub fn untyped(xs: &[f64]) -> f64 {\n\
                 let total: f64 = xs.iter().copied().sum();\n\
                 total\n\
             }\n\
             pub fn folded(xs: &[f64]) -> f64 {\n\
                 xs.iter().fold(0.0, |a, b| a + b)\n\
             }\n\
             pub fn looped(xs: &[f64]) -> f64 {\n\
                 let mut acc = 0.0;\n\
                 for x in xs { acc += x; }\n\
                 acc\n\
             }\n\
             pub fn pinned(xs: &[f64]) -> f64 {\n\
                 tsda_core::math::sum_stable(xs.iter().copied())\n\
             }\n\
             pub fn peak(xs: &[f64]) -> f64 {\n\
                 xs.iter().fold(0.0_f64, |m, v| m.max(v.abs()))\n\
             }\n",
        )];
        let cfg = cfg_with(|c| c.r4_crates = vec!["a".into()]);
        let findings = run(files, &cfg);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 8, 12, 16], "{findings:?}");
    }

    #[test]
    fn r4_skips_other_crates() {
        let src = "pub fn mean(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        let files = vec![lib_file("other", src)];
        let cfg = cfg_with(|c| c.r4_crates = vec!["a".into()]);
        assert!(run(files, &cfg).is_empty());
    }
}
