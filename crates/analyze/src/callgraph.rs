//! Workspace-wide call graph over the parsed function items.
//!
//! Resolution is *name-based and conservative*: the lexer-level parser
//! has no type information, so a call edge is drawn to **every**
//! workspace function the callee name could plausibly mean. For
//! interprocedural safety rules this is the correct direction to be
//! wrong in — an over-approximated graph can only report a panic as
//! reachable when it might not be, never miss one that is.
//!
//! Candidate narrowing, in order:
//!
//! * crate dependency closure — a call in crate A never resolves into
//!   a crate A does not (transitively) depend on; Rust could not link
//!   such a call, so dropping it loses nothing.
//! * turbofish calls (`f::<T>(..)`) — only generic functions.
//! * `Type::method(..)` — only functions whose `impl`/`trait` owner is
//!   `Type`; `Self::method(..)` — only the calling fn's own owner.
//!   A qualifier naming a well-known std container/primitive
//!   (`Vec::new`, `Box::new`, `String::from`, ...) resolves to no
//!   workspace function at all — without this, every `Vec::new()`
//!   in the tree would edge into every workspace fn named `new`.
//!   Other non-owner qualifiers (module paths, generic params) fall
//!   back to all `method` definitions, e.g. `f64::from_bits`.
//! * `.method(..)` — every workspace function named `method` that has
//!   an owner *and* a `self` receiver (method-call syntax can invoke
//!   neither a free fn nor a receiver-less associated fn).
//! * trait-object receivers — a method call whose receiver is an
//!   unambiguous `dyn Trait`-typed slot (struct field, `let`
//!   ascription, or fn param) resolves only to implementors of that
//!   trait admitted by the workspace coercion census, plus the trait's
//!   own default methods (see [`crate::traitobj`]).
//! * container-local receivers — a method call whose receiver is a
//!   local provably bound to a std container in every binding
//!   (`let mut dims = Vec::new(); ... dims.push(x)`), or a literal,
//!   cannot invoke a workspace method; such calls produce no edges
//!   (see [`crate::dataflow::container_locals`]).
//! * `free(..)` — every workspace function named `free`; same-crate
//!   definitions are preferred when any exist, since cross-crate calls
//!   in this workspace are written with an explicit path.
//!
//! Calls that resolve to no workspace function (std, vendored deps,
//! macro-generated kernels) produce no edges; the *allocation* and
//! *panic* properties of well-known std names are judged at the call
//! site by the rules themselves.

use crate::lexer::TokKind;
use crate::parser::{parse_fns, FnDef};
use crate::workspace::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Stable function id: index into [`CallGraph::fns`].
pub type FnId = usize;

/// Std types whose associated-fn calls (`Vec::new`, `Box::new`, ...)
/// never land in workspace code. Only consulted when the qualifier is
/// not a workspace owner, so a workspace type shadowing one of these
/// names still resolves normally.
const STD_QUALIFIERS: &[&str] = &[
    "Arc", "AtomicBool", "AtomicU32", "AtomicU64", "AtomicUsize", "BTreeMap", "BTreeSet",
    "BinaryHeap", "Box", "Cell", "Condvar", "Cow", "Duration", "HashMap", "HashSet", "Instant",
    "LazyLock", "Mutex", "OnceCell", "OnceLock", "Option", "OsString", "Path", "PathBuf", "Rc",
    "RefCell", "Result", "RwLock", "String", "SystemTime", "TcpListener", "TcpStream", "Vec",
    "VecDeque",
];

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee function.
    pub to: FnId,
    /// Index into the caller's `calls` vec (for line/site reporting).
    pub call_idx: usize,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All parsed functions, in deterministic (path, line) order.
    pub fns: Vec<FnDef>,
    /// Outgoing resolved edges per function.
    pub edges: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Build the graph from already-loaded workspace files, with no
    /// crate-dependency information (every cross-crate edge allowed).
    pub fn build(files: &[SourceFile]) -> CallGraph {
        Self::build_with_deps(files, &BTreeMap::new())
    }

    /// Build the graph with crate-dependency narrowing: a call in
    /// crate A only resolves into crate B when B is in A's transitive
    /// dependency closure (see [`crate::workspace::crate_dep_closure`]).
    /// This is not a heuristic — Rust cannot link a call into a crate
    /// the caller does not depend on. Crates absent from `deps` are
    /// not narrowed.
    pub fn build_with_deps(
        files: &[SourceFile],
        deps: &BTreeMap<String, BTreeSet<String>>,
    ) -> CallGraph {
        let mut fns: Vec<FnDef> = files.iter().flat_map(parse_fns).collect();
        fns.sort_by(|a, b| (&a.rel_path, a.line, &a.name).cmp(&(&b.rel_path, b.line, &b.name)));

        // Name → candidate ids; owner narrowing happens per call site.
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(id);
        }
        let owner_names: std::collections::BTreeSet<&str> =
            fns.iter().filter_map(|f| f.owner.as_deref()).collect();
        let file_by_path: BTreeMap<&str, &SourceFile> =
            files.iter().map(|s| (s.rel_path.as_str(), s)).collect();
        let container_locals: Vec<BTreeSet<String>> = fns
            .iter()
            .map(|f| match file_by_path.get(f.rel_path.as_str()) {
                Some(file) => crate::dataflow::container_locals(&file.toks, f.body.clone()),
                None => BTreeSet::new(),
            })
            .collect();
        let tobj = crate::traitobj::TraitObjects::collect(files, &fns);

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        for (id, f) in fns.iter().enumerate() {
            let reachable_crates = deps.get(f.crate_name.as_str());
            let file = file_by_path.get(f.rel_path.as_str());
            for (call_idx, call) in f.calls.iter().enumerate() {
                let Some(candidates) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                // A `.method(..)` on a receiver pinned to a std
                // container (or a literal) cannot hit workspace code.
                if call.is_method && call.tok >= 2 {
                    let recv = file
                        .filter(|s| s.toks[call.tok - 1].is_punct('.'))
                        .map(|s| &s.toks[call.tok - 2]);
                    if let Some(recv) = recv {
                        let container = recv.kind == TokKind::Ident
                            && container_locals[id].contains(&recv.text);
                        if container || matches!(recv.kind, TokKind::Str | TokKind::Num) {
                            continue;
                        }
                    }
                }
                // Hard filters first — each one rules candidates *out*
                // on grounds the language guarantees, never on type
                // inference the parser cannot do:
                //  * dependency closure: A cannot call into a crate it
                //    does not depend on;
                //  * a turbofish call (`f::<T>(..)`) only invokes a
                //    generic function;
                //  * method syntax (`.f(..)`) only invokes a function
                //    with a `self` receiver.
                let candidates: Vec<FnId> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| {
                        fns[c].crate_name == f.crate_name
                            || reachable_crates
                                .is_none_or(|r| r.contains(fns[c].crate_name.as_str()))
                    })
                    .filter(|&c| !call.has_turbofish || fns[c].is_generic)
                    .filter(|&c| !call.is_method || fns[c].has_self)
                    .collect();
                let narrowed: Vec<FnId> = if let Some(q) = &call.qualifier {
                    if q == "Self" {
                        candidates
                            .iter()
                            .copied()
                            .filter(|&c| fns[c].owner.is_some() && fns[c].owner == f.owner)
                            .collect()
                    } else if owner_names.contains(q.as_str()) {
                        candidates
                            .iter()
                            .copied()
                            .filter(|&c| fns[c].owner.as_deref() == Some(q.as_str()))
                            .collect()
                    } else if STD_QUALIFIERS.contains(&q.as_str()) {
                        // `Vec::new(..)` etc. can only be the std type:
                        // the workspace defines no owner by that name.
                        Vec::new()
                    } else {
                        // `f64::from_bits`-style std qualifier, or a
                        // module path: keep every candidate.
                        candidates
                    }
                } else if call.is_method {
                    match file.and_then(|s| tobj.narrow(&s.toks, call)) {
                        // `dyn Trait` slot receiver: only admitted
                        // implementors and the trait's default methods.
                        Some((tr, admitted)) => candidates
                            .iter()
                            .copied()
                            .filter(|&c| {
                                let owner = fns[c].owner.as_deref();
                                (fns[c].impl_trait.as_deref() == Some(tr)
                                    && owner.is_some_and(|o| admitted.contains(o)))
                                    || (fns[c].owner_is_trait && owner == Some(tr))
                            })
                            .collect(),
                        None => candidates
                            .iter()
                            .copied()
                            .filter(|&c| fns[c].owner.is_some())
                            .collect(),
                    }
                } else {
                    let same_crate: Vec<FnId> = candidates
                        .iter()
                        .copied()
                        .filter(|&c| fns[c].crate_name == f.crate_name)
                        .collect();
                    if same_crate.is_empty() { candidates } else { same_crate }
                };
                for to in narrowed {
                    edges[id].push(Edge { to, call_idx });
                }
            }
        }
        CallGraph { fns, edges }
    }

    /// Ids of functions matching a `crate::name` root key.
    pub fn roots_matching(&self, key: &str) -> Vec<FnId> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.root_key() == key)
            .map(|(id, _)| id)
            .collect()
    }

    /// BFS over the graph from `roots`, returning for every reached
    /// function the id of the edge-parent it was first reached through
    /// (roots map to `None`). Cycles are handled by the visited set.
    pub fn reach_with_parents(&self, roots: &[FnId]) -> BTreeMap<FnId, Option<(FnId, usize)>> {
        let mut parent: BTreeMap<FnId, Option<(FnId, usize)>> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(r) {
                v.insert(None);
                queue.push_back(r);
            }
        }
        while let Some(at) = queue.pop_front() {
            for e in &self.edges[at] {
                if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(e.to) {
                    v.insert(Some((at, e.call_idx)));
                    queue.push_back(e.to);
                }
            }
        }
        parent
    }

    /// The call chain `root -> ... -> target` recovered from a
    /// `reach_with_parents` map, as `(fn_id, line-of-call-into-next)`
    /// display strings.
    pub fn chain_to(
        &self,
        parents: &BTreeMap<FnId, Option<(FnId, usize)>>,
        target: FnId,
    ) -> Vec<String> {
        let mut rev: Vec<String> = Vec::new();
        let mut at = target;
        rev.push(self.fns[at].qual_name());
        while let Some(Some((from, call_idx))) = parents.get(&at) {
            let call = &self.fns[*from].calls[*call_idx];
            rev.push(format!(
                "{} ({}:{})",
                self.fns[*from].qual_name(),
                self.fns[*from].rel_path,
                call.line
            ));
            at = *from;
        }
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::workspace::FileKind;

    fn file(crate_name: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let in_test = vec![false; toks.len()];
        SourceFile {
            crate_name: crate_name.into(),
            rel_path: format!("crates/{crate_name}/src/lib.rs"),
            kind: FileKind::Lib,
            lines: src.lines().map(str::to_string).collect(),
            toks,
            in_test,
        }
    }

    fn id(g: &CallGraph, qual: &str) -> FnId {
        g.fns
            .iter()
            .position(|f| f.qual_name() == qual)
            .unwrap_or_else(|| panic!("{qual} not in graph: {:?}",
                g.fns.iter().map(FnDef::qual_name).collect::<Vec<_>>()))
    }

    #[test]
    fn cross_crate_edges_resolve() {
        let files = vec![
            file("a", "pub fn top() { tsda_b::deep(); }\n"),
            file("b", "pub fn deep() { inner() }\nfn inner() {}\n"),
        ];
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::top")]);
        assert!(parents.contains_key(&id(&g, "b::deep")));
        assert!(parents.contains_key(&id(&g, "b::inner")));
    }

    #[test]
    fn same_crate_free_fns_shadow_cross_crate_ones() {
        let files = vec![
            file("a", "pub fn go() { helper() }\nfn helper() {}\n"),
            file("b", "pub fn helper() { danger() }\npub fn danger() {}\n"),
        ];
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::go")]);
        assert!(parents.contains_key(&id(&g, "a::helper")));
        assert!(!parents.contains_key(&id(&g, "b::helper")));
        assert!(!parents.contains_key(&id(&g, "b::danger")));
    }

    #[test]
    fn method_calls_hit_every_same_name_method_conservatively() {
        let files = vec![file(
            "a",
            "pub struct X; pub struct Y;\n\
             impl X { pub fn run(&self) {} }\n\
             impl Y { pub fn run(&self) { boom() } }\n\
             fn boom() {}\n\
             pub fn go(x: &X) { x.run(); }\n",
        )];
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::go")]);
        // No receiver types: both X::run and Y::run are candidates.
        assert!(parents.contains_key(&id(&g, "a::X::run")));
        assert!(parents.contains_key(&id(&g, "a::Y::run")));
        assert!(parents.contains_key(&id(&g, "a::boom")));
    }

    #[test]
    fn qualified_calls_narrow_to_the_owner() {
        let files = vec![file(
            "a",
            "pub struct X; pub struct Y;\n\
             impl X { pub fn make() {} }\n\
             impl Y { pub fn make() { boom() } }\n\
             fn boom() {}\n\
             pub fn go() { X::make(); }\n",
        )];
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::go")]);
        assert!(parents.contains_key(&id(&g, "a::X::make")));
        assert!(!parents.contains_key(&id(&g, "a::Y::make")));
        assert!(!parents.contains_key(&id(&g, "a::boom")));
    }

    #[test]
    fn std_qualifiers_resolve_to_nothing() {
        // `Vec::new()` can only be the std type; it must not edge into
        // a workspace `new` on some unrelated owner.
        let files = vec![file(
            "a",
            "pub struct Eig;\n\
             impl Eig { pub fn new() { boom() } }\n\
             fn boom() {}\n\
             pub fn go() { let _v: Vec<u8> = Vec::new(); }\n",
        )];
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::go")]);
        assert!(!parents.contains_key(&id(&g, "a::Eig::new")));
        assert!(!parents.contains_key(&id(&g, "a::boom")));
    }

    #[test]
    fn self_qualified_calls_resolve_to_the_calling_fns_owner() {
        let files = vec![file(
            "a",
            "pub struct X; pub struct Y;\n\
             impl X { pub fn make() {} pub fn go() { Self::make(); } }\n\
             impl Y { pub fn make() { boom() } }\n\
             fn boom() {}\n",
        )];
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::X::go")]);
        assert!(parents.contains_key(&id(&g, "a::X::make")));
        assert!(!parents.contains_key(&id(&g, "a::Y::make")));
        assert!(!parents.contains_key(&id(&g, "a::boom")));
    }

    #[test]
    fn dependency_closure_prunes_unlinkable_crates() {
        // `a` depends on `b` only; an unqualified method call in `a`
        // must not resolve into `c`, which `a` could never link.
        let files = vec![
            file("a", "pub fn go(m: &M) { m.get(); }\n"),
            file("b", "pub struct G;\nimpl G { pub fn get(&self) { reached() } }\npub fn reached() {}\n"),
            file("c", "pub struct H;\nimpl H { pub fn get(&self) { vetoed() } }\npub fn vetoed() {}\n"),
        ];
        let mut deps = BTreeMap::new();
        deps.insert("a".to_string(), BTreeSet::from(["b".to_string()]));
        deps.insert("b".to_string(), BTreeSet::new());
        deps.insert("c".to_string(), BTreeSet::new());
        let g = CallGraph::build_with_deps(&files, &deps);
        let parents = g.reach_with_parents(&[id(&g, "a::go")]);
        assert!(parents.contains_key(&id(&g, "b::reached")));
        assert!(!parents.contains_key(&id(&g, "c::vetoed")));
        // Without dependency info the same call keeps both candidates.
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::go")]);
        assert!(parents.contains_key(&id(&g, "c::vetoed")));
    }

    #[test]
    fn method_syntax_skips_receiverless_associated_fns() {
        // `limit.get()` cannot invoke `Limit::get()` — that associated
        // fn has no `self` receiver, so only `Map::get` is a candidate.
        let files = vec![file(
            "a",
            "pub struct Limit; pub struct Map;\n\
             impl Limit { pub fn get() { assoc_only() } }\n\
             impl Map { pub fn get(&self) { via_self() } }\n\
             fn assoc_only() {}\n\
             fn via_self() {}\n\
             pub fn go(m: &Map) { m.get(); }\n\
             pub fn go_assoc() { Limit::get(); }\n",
        )];
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::go")]);
        assert!(parents.contains_key(&id(&g, "a::via_self")));
        assert!(!parents.contains_key(&id(&g, "a::assoc_only")));
        // The qualified form still reaches the receiver-less fn.
        let parents = g.reach_with_parents(&[id(&g, "a::go_assoc")]);
        assert!(parents.contains_key(&id(&g, "a::assoc_only")));
    }

    #[test]
    fn turbofish_calls_only_target_generic_fns() {
        // `s.parse::<f64>()` (std str::parse) cannot invoke the
        // non-generic workspace `Reader::parse`.
        let files = vec![file(
            "a",
            "pub struct Reader;\n\
             impl Reader { pub fn parse(&mut self) { concrete() } }\n\
             fn concrete() {}\n\
             pub fn lex<T>(s: &str) -> T { todo!() }\n\
             pub fn go(s: &str) { s.parse::<f64>(); lex::<f64>(s); }\n\
             pub fn go_plain(r: &mut Reader) { r.parse(); }\n",
        )];
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::go")]);
        assert!(!parents.contains_key(&id(&g, "a::Reader::parse")));
        assert!(parents.contains_key(&id(&g, "a::lex")), "generic fns stay turbofish-callable");
        let parents = g.reach_with_parents(&[id(&g, "a::go_plain")]);
        assert!(parents.contains_key(&id(&g, "a::Reader::parse")));
    }

    #[test]
    fn dyn_slot_calls_narrow_to_coerced_implementors() {
        let files = vec![file(
            "a",
            "pub trait Step { fn apply(&self, x: u8) -> u8; }\n\
             pub struct Fast; pub struct Cold;\n\
             impl Step for Fast { fn apply(&self, x: u8) -> u8 { x } }\n\
             impl Step for Cold { fn apply(&self, x: u8) -> u8 { cold_helper(); x } }\n\
             fn cold_helper() {}\n\
             pub struct Stage { pub choose: Vec<Box<dyn Step>> }\n\
             pub fn build() -> Stage { Stage { choose: vec![Box::new(Fast)] } }\n\
             pub fn go(s: &Stage) -> u8 { s.choose[0].apply(1) }\n",
        )];
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::go")]);
        // Only `Fast` is coerced into `dyn Step` anywhere in the
        // workspace, so `Cold::apply` (and its helper) drop out.
        assert!(parents.contains_key(&id(&g, "a::Fast::apply")));
        assert!(!parents.contains_key(&id(&g, "a::Cold::apply")));
        assert!(!parents.contains_key(&id(&g, "a::cold_helper")));
    }

    #[test]
    fn dyn_narrowing_keeps_trait_default_methods() {
        let files = vec![file(
            "a",
            "pub trait Step { fn apply(&self) { default_helper() } fn id(&self) -> u8; }\n\
             fn default_helper() {}\n\
             pub struct Fast;\n\
             impl Step for Fast { fn id(&self) -> u8 { 1 } }\n\
             pub fn build() -> Box<dyn Step> { Box::new(Fast) }\n\
             pub fn go(s: &Box<dyn Step>) { s.apply() }\n",
        )];
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::go")]);
        assert!(parents.contains_key(&id(&g, "a::Step::apply")));
        assert!(parents.contains_key(&id(&g, "a::default_helper")));
    }

    #[test]
    fn recursion_cycles_terminate() {
        let files = vec![file(
            "a",
            "pub fn ping(n: usize) { if n > 0 { pong(n - 1) } }\n\
             pub fn pong(n: usize) { ping(n) }\n",
        )];
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::ping")]);
        assert_eq!(parents.len(), 2);
    }

    #[test]
    fn chains_read_root_to_target_with_call_sites() {
        let files = vec![
            file("a", "pub fn top() {\n    mid();\n}\nfn mid() {\n    tsda_b::leaf();\n}\n"),
            file("b", "pub fn leaf() {}\n"),
        ];
        let g = CallGraph::build(&files);
        let parents = g.reach_with_parents(&[id(&g, "a::top")]);
        let chain = g.chain_to(&parents, id(&g, "b::leaf"));
        assert_eq!(
            chain,
            vec![
                "a::top (crates/a/src/lib.rs:2)",
                "a::mid (crates/a/src/lib.rs:5)",
                "b::leaf",
            ],
            "{chain:?}"
        );
    }
}
