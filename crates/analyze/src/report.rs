//! Allowlist application and report rendering.
//!
//! The JSON schema (format version 1) is stable for CI consumers:
//!
//! ```json
//! {
//!   "version": 1,
//!   "findings": [
//!     {"rule": "P1", "path": "crates/x/src/lib.rs", "line": 3,
//!      "message": "...", "snippet": "o.unwrap()"}
//!   ],
//!   "allowed": [
//!     {"rule": "D1", "path": "...", "line": 9, "message": "...",
//!      "snippet": "...", "reason": "batching timers"}
//!   ],
//!   "unused_allow": [
//!     {"rule": "P1", "path": "...", "contains": "...", "reason": "..."}
//!   ],
//!   "summary": {"total": 1,
//!               "by_rule": {"D1": 0, "F1": 0, "P1": 1, "U1": 0,
//!                           "R1": 0, "R2": 0, "R3": 0, "R4": 0,
//!                           "A1": 0, "L1": 0, "L2": 0, "T1": 0,
//!                           "C1": 0},
//!               "timings_ms": {"D1": 1.2, "...": 0.0}}
//! }
//! ```
//!
//! `findings` are the *unallowlisted* violations; a non-empty list is
//! exit code 1. `allowed` records every tolerated site with its
//! justification so reviewers can audit the debt. `unused_allow` lists
//! stale entries (warning only: they rot silently otherwise).

use crate::config::{AllowEntry, Config};
use crate::rules::Finding;
use serde::Value;

/// One allowlisted finding with the entry's justification.
#[derive(Debug, Clone)]
pub struct AllowedFinding {
    /// The underlying finding.
    pub finding: Finding,
    /// Reason from the matching allowlist entry.
    pub reason: String,
}

/// The analyzer's complete verdict.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Violations not covered by the allowlist (failures).
    pub findings: Vec<Finding>,
    /// Violations covered by the allowlist (tolerated, audited).
    pub allowed: Vec<AllowedFinding>,
    /// Allowlist entries that matched nothing (stale).
    pub unused_allow: Vec<AllowEntry>,
    /// Per-rule wall time in milliseconds, in execution order (empty
    /// when the caller didn't measure).
    pub timings: Vec<(String, f64)>,
}

impl Report {
    /// Split raw findings by the allowlist.
    pub fn from_findings(raw: Vec<Finding>, cfg: &Config) -> Report {
        let mut used = vec![false; cfg.allow.len()];
        let mut report = Report::default();
        for finding in raw {
            let hit = cfg
                .allow
                .iter()
                .position(|a| a.matches(finding.rule, &finding.path, &finding.snippet));
            match hit {
                Some(i) => {
                    used[i] = true;
                    report
                        .allowed
                        .push(AllowedFinding { finding, reason: cfg.allow[i].reason.clone() });
                }
                None => report.findings.push(finding),
            }
        }
        report.unused_allow = cfg
            .allow
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|(a, _)| a.clone())
            .collect();
        report
    }

    /// True when the tree is clean (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Count of unallowlisted findings for `rule`.
    pub fn count(&self, rule: &str) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Human-readable report. `verbose` additionally lists every
    /// allowlisted site with its justification.
    pub fn to_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: {}: {}\n    {}\n",
                f.path, f.line, f.rule, f.message, f.snippet
            ));
        }
        if verbose {
            for a in &self.allowed {
                let f = &a.finding;
                out.push_str(&format!(
                    "{}:{}: {} (allowed: {})\n",
                    f.path, f.line, f.rule, a.reason
                ));
            }
        }
        for a in &self.unused_allow {
            out.push_str(&format!(
                "warning: unused allowlist entry: rule {} path {:?} contains {:?}\n",
                a.rule, a.path, a.contains
            ));
        }
        out.push_str(&format!(
            "{} finding(s), {} allowlisted, {} unused allowlist entrie(s)\n",
            self.findings.len(),
            self.allowed.len(),
            self.unused_allow.len()
        ));
        out
    }

    /// Render the stable JSON schema described in the module docs.
    pub fn to_json_value(&self) -> Value {
        let finding_value = |f: &Finding| {
            Value::Object(vec![
                ("rule".into(), Value::Str(f.rule.to_string())),
                ("path".into(), Value::Str(f.path.clone())),
                ("line".into(), Value::Num(f.line as f64)),
                ("message".into(), Value::Str(f.message.clone())),
                ("snippet".into(), Value::Str(f.snippet.clone())),
            ])
        };
        let allowed_value = |a: &AllowedFinding| {
            let Value::Object(mut pairs) = finding_value(&a.finding) else {
                return Value::Null;
            };
            pairs.push(("reason".into(), Value::Str(a.reason.clone())));
            Value::Object(pairs)
        };
        let mut by_rule = Vec::new();
        for rule in ["D1", "F1", "P1", "U1", "R1", "R2", "R3", "R4", "A1", "L1", "L2", "T1", "C1"] {
            by_rule.push((rule.to_string(), Value::Num(self.count(rule) as f64)));
        }
        let timings = Value::Object(
            self.timings
                .iter()
                .map(|(rule, ms)| {
                    // Round to µs so the value is stable to print and
                    // diff while still meaningful for a linter pass.
                    (rule.clone(), Value::Num((ms * 1e3).round() / 1e3))
                })
                .collect(),
        );
        Value::Object(vec![
            ("version".into(), Value::Num(1.0)),
            (
                "findings".into(),
                Value::Array(self.findings.iter().map(finding_value).collect()),
            ),
            (
                "allowed".into(),
                Value::Array(self.allowed.iter().map(allowed_value).collect()),
            ),
            (
                "unused_allow".into(),
                Value::Array(
                    self.unused_allow
                        .iter()
                        .map(|a| {
                            Value::Object(vec![
                                ("rule".into(), Value::Str(a.rule.clone())),
                                ("path".into(), Value::Str(a.path.clone())),
                                ("contains".into(), Value::Str(a.contains.clone())),
                                ("reason".into(), Value::Str(a.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "summary".into(),
                Value::Object(vec![
                    ("total".into(), Value::Num(self.findings.len() as f64)),
                    ("by_rule".into(), Value::Object(by_rule)),
                    ("timings_ms".into(), timings),
                ]),
            ),
        ])
    }

    /// JSON text (pretty), with a serialisation fallback that can never
    /// panic — this is the tool that polices panics, after all.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_json_value())
            .unwrap_or_else(|_| "{\"version\":1,\"error\":\"serialisation failed\"}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line: 3,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn allowlist_splits_and_tracks_usage() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"P1\"\npath = \"crates/a\"\ncontains = \"ok\"\nreason = \"r\"\n\
             [[allow]]\nrule = \"U1\"\npath = \"crates/never\"\nreason = \"stale\"\n",
        )
        .expect("cfg");
        let raw = vec![
            finding("P1", "crates/a/src/lib.rs", "this is ok here"),
            finding("P1", "crates/a/src/lib.rs", "not covered"),
        ];
        let report = Report::from_findings(raw, &cfg);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(report.unused_allow.len(), 1);
        assert!(!report.is_clean());
        assert_eq!(report.count("P1"), 1);
    }

    #[test]
    fn json_schema_has_the_stable_keys() {
        let report = Report::from_findings(
            vec![finding("D1", "crates/a/src/lib.rs", "s")],
            &Config::default(),
        );
        let v = serde_json::parse_value(&report.to_json()).expect("valid json");
        assert_eq!(v.get("version").and_then(Value::as_f64), Some(1.0));
        let findings = v.get("findings").expect("findings key");
        let Value::Array(items) = findings else { panic!("findings is an array") };
        let f = items.first().expect("one finding");
        for key in ["rule", "path", "line", "message", "snippet"] {
            assert!(f.get(key).is_some(), "missing key {key}");
        }
        assert!(v.get("summary").and_then(|s| s.get("by_rule")).is_some());
        assert_eq!(
            v.get("summary").and_then(|s| s.get("total")).and_then(Value::as_f64),
            Some(1.0)
        );
    }
}
