//! A small hand-rolled Rust lexer.
//!
//! The build container has no crates.io access, so `syn`/`proc-macro2`
//! are out of reach; the lint rules in this crate only need a faithful
//! *token* view of the source anyway (identifiers, punctuation, and
//! literal boundaries), never a full parse tree. The lexer therefore
//! handles exactly the places where naive substring matching goes
//! wrong — string/char/byte literals (including raw strings with any
//! number of `#`s), nested block comments, lifetimes vs. char literals,
//! and numeric literals with `.`/exponent — and emits everything else
//! as identifier or single-character punctuation tokens.
//!
//! Comments are consumed but not emitted: rules that care about comment
//! text (the `// SAFETY:` check) read the raw source lines instead.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `HashMap`, ...).
    Ident,
    /// Lifetime such as `'a` (kept distinct so `'a'` stays a char).
    Lifetime,
    /// Numeric literal.
    Num,
    /// String literal of any flavour (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`.`, `:`, `!`, `[`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text. For `Str` this is the *unquoted* content so rules
    /// can match on literal keys; for everything else the raw spelling.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `source` into tokens. Never fails: unterminated literals simply
/// swallow the rest of the file, which is the useful behaviour for a
/// linter that must not panic on the code it is judging.
pub fn lex(source: &str) -> Vec<Tok> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let n = chars.len();
    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line comment (incl. doc comments): skip to newline.
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment, nesting like Rust's.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (text, next, lines) = scan_string(&chars, i + 1);
                toks.push(Tok { kind: TokKind::Str, text, line: start_line });
                line += lines;
                i = next;
            }
            'r' if starts_raw_ident(&chars, i) => {
                // Raw identifier `r#ident`: semantically the same name
                // as `ident` (that is what `r#` means), so the token
                // text drops the prefix and rules match it like any
                // other spelling of the identifier.
                let start = i + 2;
                let mut j = start;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..j].iter().collect(),
                    line,
                });
                i = j;
            }
            'r' | 'b' if starts_raw_or_byte_literal(&chars, i) => {
                let start_line = line;
                let (kind, text, next, lines) = scan_prefixed_literal(&chars, i);
                toks.push(Tok { kind, text, line: start_line });
                line += lines;
                i = next;
            }
            '\'' => {
                // Lifetime or char literal. `'a` followed by a
                // non-quote is a lifetime; otherwise a char literal.
                let mut j = i + 1;
                let mut ident = String::new();
                while j < n && is_ident_continue(chars[j]) {
                    ident.push(chars[j]);
                    j += 1;
                }
                let is_lifetime = !ident.is_empty()
                    && is_ident_start(ident.chars().next().unwrap_or('_'))
                    && (j >= n || chars[j] != '\'');
                if is_lifetime {
                    toks.push(Tok { kind: TokKind::Lifetime, text: ident, line });
                    i = j;
                } else {
                    let start_line = line;
                    let (text, next, lines) = scan_char(&chars, i + 1);
                    toks.push(Tok { kind: TokKind::Char, text, line: start_line });
                    line += lines;
                    i = next;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < n && (is_ident_continue(chars[i])) {
                    i += 1;
                }
                // Fraction part only when the `.` cannot be a method
                // call or range: `1.max(2)` and `0..n` keep their `.`
                // as punctuation, but `1_000.5`, `1.e3` (dot + bare
                // exponent), and a trailing-dot float like `1.` are all
                // one numeric token.
                if i < n && chars[i] == '.' {
                    let after = chars.get(i + 1).copied();
                    let exp_digit = |k: usize| {
                        matches!(chars.get(k), Some(d) if d.is_ascii_digit())
                            || (matches!(chars.get(k), Some('+') | Some('-'))
                                && matches!(chars.get(k + 1), Some(d) if d.is_ascii_digit()))
                    };
                    if after.is_some_and(|c| c.is_ascii_digit()) {
                        i += 1;
                        while i < n && is_ident_continue(chars[i]) {
                            i += 1;
                        }
                    } else if matches!(after, Some('e' | 'E')) && exp_digit(i + 2) {
                        // `1.e3` / `1.E-3`: dot straight into an
                        // exponent. `2.exp()` stays a method call
                        // because no digit follows the `e`.
                        i += 2;
                        if matches!(chars.get(i), Some('+') | Some('-')) {
                            i += 1;
                        }
                        while i < n && is_ident_continue(chars[i]) {
                            i += 1;
                        }
                    } else if !matches!(after, Some(c) if is_ident_start(c) || c == '.') {
                        // Trailing-dot float (`1.;`, `vec![1., 2.]`, or
                        // `1.` at EOF): the dot belongs to the number.
                        i += 1;
                    }
                }
                // Signed exponent (`1e-5`); unsigned is eaten above.
                if i + 1 < n
                    && (chars[i] == '-' || chars[i] == '+')
                    && matches!(chars.get(i.wrapping_sub(1)), Some('e' | 'E'))
                    && chars[i + 1].is_ascii_digit()
                {
                    i += 1;
                    while i < n && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            other => {
                toks.push(Tok { kind: TokKind::Punct, text: other.to_string(), line });
                i += 1;
            }
        }
    }
    toks
}

/// Does `r#...` at `i` begin a raw identifier (`r#type`, `r#match`),
/// as opposed to a raw string (`r#"..."#`)?
fn starts_raw_ident(chars: &[char], i: usize) -> bool {
    chars.get(i + 1) == Some(&'#')
        && matches!(chars.get(i + 2), Some(&c) if is_ident_start(c))
}

/// Does `r...` / `b...` at `i` begin a raw string, byte string, or byte
/// char (as opposed to a plain identifier starting with r/b)?
fn starts_raw_or_byte_literal(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        match chars.get(j) {
            Some('\'') | Some('"') => return true,
            Some('r') => j += 1,
            _ => return false,
        }
    } else {
        // 'r'
        j += 1;
    }
    // After `r` / `br`: any number of '#' then '"'.
    while matches!(chars.get(j), Some('#')) {
        j += 1;
    }
    matches!(chars.get(j), Some('"'))
}

/// Scan a literal starting with `r`, `b`, or `br` at `i`. Returns
/// `(kind, content, next_index, newline_count)`.
fn scan_prefixed_literal(chars: &[char], i: usize) -> (TokKind, String, usize, u32) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            let (text, next, lines) = scan_char(chars, j + 1);
            return (TokKind::Char, text, next, lines);
        }
        if chars.get(j) == Some(&'"') {
            let (text, next, lines) = scan_string(chars, j + 1);
            return (TokKind::Str, text, next, lines);
        }
        j += 1; // skip the 'r' of `br`
    } else {
        j += 1; // skip the 'r'
    }
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote (guaranteed by starts_raw_or_byte_literal)
    let mut text = String::new();
    let mut lines = 0u32;
    let n = chars.len();
    while j < n {
        if chars[j] == '"' {
            // Need `hashes` trailing '#'s to close.
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (TokKind::Str, text, k, lines);
            }
        }
        if chars[j] == '\n' {
            lines += 1;
        }
        text.push(chars[j]);
        j += 1;
    }
    (TokKind::Str, text, n, lines)
}

/// Scan a normal string body starting just after the opening quote.
fn scan_string(chars: &[char], mut i: usize) -> (String, usize, u32) {
    let mut text = String::new();
    let mut lines = 0u32;
    let n = chars.len();
    while i < n {
        match chars[i] {
            '"' => return (text, i + 1, lines),
            '\\' if i + 1 < n => {
                text.push(chars[i]);
                if chars[i + 1] == '\n' {
                    lines += 1;
                }
                text.push(chars[i + 1]);
                i += 2;
            }
            c => {
                if c == '\n' {
                    lines += 1;
                }
                text.push(c);
                i += 1;
            }
        }
    }
    (text, n, lines)
}

/// Scan a char literal body starting just after the opening quote.
fn scan_char(chars: &[char], mut i: usize) -> (String, usize, u32) {
    let mut text = String::new();
    let mut lines = 0u32;
    let n = chars.len();
    while i < n {
        match chars[i] {
            '\'' => return (text, i + 1, lines),
            '\\' if i + 1 < n => {
                text.push(chars[i]);
                text.push(chars[i + 1]);
                i += 2;
            }
            c => {
                if c == '\n' {
                    lines += 1;
                }
                text.push(c);
                i += 1;
            }
        }
    }
    (text, n, lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_punct() {
        let toks = kinds("let x = foo.unwrap();");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Ident, "foo".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "unwrap".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Punct, ")".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents_from_ident_rules() {
        let toks = kinds(r#"let s = "panic! unwrap() unsafe";"#);
        assert!(toks.iter().all(|(k, t)| *k != TokKind::Ident || t != "unsafe"));
        assert_eq!(toks[3], (TokKind::Str, "panic! unwrap() unsafe".into()));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let s = r#"a "quoted" b"#; let b = b"xy"; let c = br"z";"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, vec![r#"a "quoted" b"#, "xy", "z"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "a"));
        let toks = kinds(r"let c = '\''; let d = '\n';");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn comments_are_dropped_including_nested_blocks() {
        let toks = kinds("a // unwrap()\n/* panic! /* nested */ still */ b");
        assert_eq!(
            toks,
            vec![(TokKind::Ident, "a".into()), (TokKind::Ident, "b".into())]
        );
    }

    #[test]
    fn float_literals_keep_method_call_dots() {
        let toks = kinds("let a = 1.0_f64; let b = 2.sqrt(); let r = 0..n;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1.0_f64"));
        // `2.sqrt()` lexes as Num(2) Punct(.) Ident(sqrt).
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "sqrt"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "2"));
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident("b")).expect("b lexed");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        assert!(!lex("let s = \"never closed").is_empty());
        assert!(!lex("let s = r#\"never closed").is_empty());
    }

    #[test]
    fn raw_identifiers_lex_as_their_unprefixed_name() {
        // `r#ident` IS the identifier `ident`; the prefix only exists
        // to escape keywords, so rules must see one token, same name.
        let toks = kinds("let r#type = r#match.r#unwrap();");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "type"), "{toks:?}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unwrap"), "{toks:?}");
        // No stray `r` / `#` fragments left behind.
        assert!(toks.iter().all(|(k, t)| !(*k == TokKind::Ident && t == "r")), "{toks:?}");
        assert!(toks.iter().all(|(k, t)| !(*k == TokKind::Punct && t == "#")), "{toks:?}");
        // Raw *strings* are unaffected.
        let toks = kinds(r##"let s = r#"body"#;"##);
        assert_eq!(toks[3], (TokKind::Str, "body".into()));
    }

    #[test]
    fn double_gt_in_nested_generics_stays_split() {
        // The parser closes nested generics one `>` at a time, so the
        // lexer must never fuse `>>` into a shift token.
        let toks = kinds("fn f() -> Result<Vec<u8>, E> { g::<Vec<Vec<u8>>>() }");
        let gts = toks.iter().filter(|(k, t)| *k == TokKind::Punct && t == ">").count();
        // One from `->`, two closing `Result<Vec<u8>, E>`, three
        // closing the `::<Vec<Vec<u8>>>` turbofish.
        assert_eq!(gts, 6, "{toks:?}");
        assert!(toks.iter().all(|(k, t)| !(*k == TokKind::Punct && t == ">>")), "{toks:?}");
    }

    #[test]
    fn bare_exponent_and_trailing_dot_floats() {
        // `1.e3`: dot straight into an exponent is one number.
        let toks = kinds("let a = 1.e3; let b = 1.E-3;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1.e3"), "{toks:?}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1.E-3"), "{toks:?}");
        // Underscored float with fraction.
        let toks = kinds("let c = 1_000.5;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1_000.5"), "{toks:?}");
        // Trailing-dot float keeps its dot; method calls and ranges do not.
        let toks = kinds("let d = 1.; let e = vec![2., 3.]; let f = 2.sqrt(); let r = 0..9;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1."), "{toks:?}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "2."), "{toks:?}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "sqrt"), "{toks:?}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "2"), "{toks:?}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"), "{toks:?}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "9"), "{toks:?}");
        // `1.e3x` style (exponent then ident chars) still terminates.
        let toks = kinds("let g = 2.exp();");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "exp"), "{toks:?}");
    }
}
