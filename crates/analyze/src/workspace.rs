//! Workspace walking and file classification.
//!
//! The analyzer scans the configured roots (normally just `crates/`),
//! treats every first-level directory as one crate (named after its
//! directory, matching the `tsda-<dir>` packages), and classifies each
//! `.rs` file so rules can scope themselves:
//!
//! * **Lib** — `src/**` except bin targets: the code production traffic
//!   runs through, held to the strictest rules.
//! * **Bin** — `src/bin/**`, `src/main.rs`, `build.rs`: driver code
//!   where timers and exits are legitimate.
//! * **Test** — `tests/**`, `benches/**`, `examples/**`: panics are the
//!   idiomatic failure mode here.
//!
//! Inline `#[cfg(test)]` regions inside library files are detected on
//! the token stream and marked so per-token rules can skip them.
//!
//! Vendored dependency stand-ins under `vendor/` are deliberately out
//! of scope: they mirror external crates.io surfaces (including
//! `rand::thread_rng`) and are not this workspace's code.

use crate::lexer::{lex, Tok, TokKind};
use std::path::{Path, PathBuf};

/// How a file's rules should be scoped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/**`, not a bin target).
    Lib,
    /// Binary / build-script code.
    Bin,
    /// Test, bench, or example code.
    Test,
}

/// One lexed source file ready for the rule engine.
pub struct SourceFile {
    /// Crate directory name (`core`, `serve`, ...).
    pub crate_name: String,
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Rule scoping class.
    pub kind: FileKind,
    /// Raw source lines (1-based access via `line_text`).
    pub lines: Vec<String>,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// `in_test[i]` is true when token `i` sits in a `#[cfg(test)]`
    /// region of a non-test file.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// The trimmed text of 1-based line `line` (empty when out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get((line as usize).saturating_sub(1))
            .map_or("", |s| s.trim())
    }
}

/// Walk the configured scan roots and lex every `.rs` file found.
pub fn load_workspace(
    root: &Path,
    scan: &[String],
    skip: &[String],
) -> Result<Vec<SourceFile>, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for rel in scan {
        let dir = root.join(rel);
        if !dir.is_dir() {
            return Err(format!("scan root {} is not a directory", dir.display()));
        }
        collect_rs_files(&dir, &mut paths)?;
    }
    paths.sort();

    let mut files = Vec::new();
    for path in paths {
        let rel_path = relative_slash_path(root, &path);
        if skip.iter().any(|s| rel_path.starts_with(s.as_str())) {
            continue;
        }
        let Some((crate_name, kind)) = classify(&rel_path) else {
            continue;
        };
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let toks = lex(&text);
        let in_test = if kind == FileKind::Test {
            vec![true; toks.len()]
        } else {
            mark_cfg_test_regions(&toks)
        };
        files.push(SourceFile {
            crate_name,
            rel_path,
            kind,
            lines: text.lines().map(str::to_string).collect(),
            toks,
            in_test,
        });
    }
    Ok(files)
}

/// Transitive crate-dependency closure, read from each scanned crate's
/// `Cargo.toml`. `closure["serve"]` holds every crate directory `serve`
/// can reach through `tsda-*` dependency edges (dev- and
/// build-dependencies included, since the call graph spans test code).
///
/// The call graph uses this to drop name-resolution candidates that
/// Rust itself could never link: a call in crate A cannot target a
/// function in a crate A does not depend on. Crates whose manifest is
/// missing or unreadable get no entry, which the graph treats as
/// "don't narrow" — absence of evidence stays conservative.
pub fn crate_dep_closure(
    root: &Path,
    scan: &[String],
) -> std::collections::BTreeMap<String, std::collections::BTreeSet<String>> {
    let mut direct: std::collections::BTreeMap<String, std::collections::BTreeSet<String>> =
        std::collections::BTreeMap::new();
    for rel in scan {
        let dir = root.join(rel);
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if !path.is_dir() {
                continue;
            }
            let crate_name = entry.file_name().to_string_lossy().into_owned();
            let Ok(manifest) = std::fs::read_to_string(path.join("Cargo.toml")) else {
                continue;
            };
            direct.insert(crate_name, manifest_tsda_deps(&manifest));
        }
    }
    // Transitive closure by per-crate BFS; the graph is tiny.
    let mut closure = std::collections::BTreeMap::new();
    for name in direct.keys() {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack: Vec<&String> = vec![name];
        while let Some(at) = stack.pop() {
            let Some(deps) = direct.get(at) else { continue };
            for d in deps {
                if seen.insert(d.clone()) {
                    stack.push(d);
                }
            }
        }
        closure.insert(name.clone(), seen);
    }
    closure
}

/// `tsda-*` dependency directory names declared in a manifest: both
/// `tsda-core = { path = "../core" }` table lines and
/// `[dependencies.tsda-core]` section headers.
fn manifest_tsda_deps(manifest: &str) -> std::collections::BTreeSet<String> {
    let mut deps = std::collections::BTreeSet::new();
    for line in manifest.lines() {
        let line = line.trim();
        let key = if let Some(rest) = line.strip_prefix("[dependencies.") {
            rest.strip_suffix(']').unwrap_or(rest)
        } else if let Some(rest) = line.strip_prefix("[dev-dependencies.") {
            rest.strip_suffix(']').unwrap_or(rest)
        } else if let Some(rest) = line.strip_prefix("[build-dependencies.") {
            rest.strip_suffix(']').unwrap_or(rest)
        } else if let Some(eq) = line.find('=') {
            line[..eq].trim()
        } else {
            continue;
        };
        if let Some(dep_dir) = key.strip_prefix("tsda-") {
            if !dep_dir.is_empty() && dep_dir.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
                deps.insert(dep_dir.to_string());
            }
        }
    }
    deps
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            // `target/` never holds source we authored.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Map a workspace-relative path to `(crate_name, kind)`. Files outside
/// the `<root>/<crate>/{src,tests,benches,examples}` shape (e.g. a
/// crate's own `build.rs`) still classify; stray files do not.
fn classify(rel_path: &str) -> Option<(String, FileKind)> {
    let mut parts = rel_path.split('/');
    let _scan_root = parts.next()?;
    let crate_name = parts.next()?.to_string();
    let section = parts.next()?;
    let rest: Vec<&str> = parts.collect();
    let kind = match section {
        "src" => {
            if rest.first() == Some(&"bin") || rest == ["main.rs"] {
                FileKind::Bin
            } else {
                FileKind::Lib
            }
        }
        "tests" | "benches" | "examples" => FileKind::Test,
        "build.rs" if rest.is_empty() => FileKind::Bin,
        _ => return None,
    };
    Some((crate_name, kind))
}

/// Mark tokens inside `#[cfg(test)]`-gated items.
fn mark_cfg_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !is_cfg_test_attr_start(toks, i) {
            i += 1;
            continue;
        }
        // Skip this attribute and any further `#[...]` attributes.
        let mut j = skip_attr(toks, i);
        while is_attr_start(toks, j) {
            j = skip_attr(toks, j);
        }
        // The gated item runs to the first top-level `;`, or across the
        // matching braces of its first `{`.
        let mut depth = 0usize;
        let mut end = j;
        while end < toks.len() {
            let t = &toks[end];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    end += 1;
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                end += 1;
                break;
            }
            end += 1;
        }
        for flag in in_test.iter_mut().take(end).skip(i) {
            *flag = true;
        }
        i = end;
    }
    in_test
}

/// Is `#[ ... ]` starting at `i` (not an inner `#![...]` attribute)?
fn is_attr_start(toks: &[Tok], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct('#'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
}

/// Does the attribute starting at `i` gate on `cfg(... test ...)`?
fn is_cfg_test_attr_start(toks: &[Tok], i: usize) -> bool {
    if !is_attr_start(toks, i) {
        return false;
    }
    let end = skip_attr(toks, i);
    let body = &toks[i..end];
    body.iter().any(|t| t.is_ident("cfg"))
        && body
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test")
}

/// Index just past the `]` closing the attribute that starts at `i`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1; // at '['
    let mut depth = 0usize;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layouts_in_this_repo() {
        assert_eq!(
            classify("crates/core/src/parallel.rs"),
            Some(("core".into(), FileKind::Lib))
        );
        assert_eq!(
            classify("crates/serve/src/bin/tsda_client.rs"),
            Some(("serve".into(), FileKind::Bin))
        );
        assert_eq!(
            classify("crates/classify/tests/determinism.rs"),
            Some(("classify".into(), FileKind::Test))
        );
        assert_eq!(
            classify("crates/core/src/generative/latent.rs"),
            Some(("core".into(), FileKind::Lib))
        );
        assert_eq!(classify("crates/core/build.rs"), Some(("core".into(), FileKind::Bin)));
        assert_eq!(classify("crates/core/Cargo.toml"), None);
    }

    #[test]
    fn cfg_test_regions_cover_the_test_module_only() {
        let src = r#"
            pub fn real() -> usize { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { real().checked_add(1).unwrap(); }
            }
            pub fn after() -> usize { 2 }
        "#;
        let toks = lex(src);
        let marks = mark_cfg_test_regions(&toks);
        let at = |name: &str| {
            toks.iter()
                .position(|t| t.is_ident(name))
                .expect("token present")
        };
        assert!(!marks[at("real")]);
        assert!(marks[at("unwrap")]);
        assert!(!marks[at("after")]);
    }

    #[test]
    fn cfg_test_on_single_items_and_stacked_attrs() {
        let src = r#"
            #[cfg(test)]
            #[allow(dead_code)]
            fn helper() { panic!("only in tests") }
            fn live() {}
            #[cfg(all(test, unix))]
            use std::collections::HashMap;
            fn live2() {}
        "#;
        let toks = lex(src);
        let marks = mark_cfg_test_regions(&toks);
        let at = |name: &str| toks.iter().position(|t| t.is_ident(name)).expect("tok");
        assert!(marks[at("panic")]);
        assert!(!marks[at("live")]);
        assert!(marks[at("HashMap")]);
        assert!(!marks[at("live2")]);
    }
}
