//! The lint rules: D1 (determinism), P1 (panic-freedom), U1 (unsafe
//! hygiene), F1 (float-reduction order).
//!
//! Rules run over the token stream of each [`SourceFile`]; the engine
//! afterwards matches raw findings against the allowlist. The scoping
//! table (which crates and file kinds each check applies to):
//!
//! | check                         | crates              | kinds       | `#[cfg(test)]` |
//! |-------------------------------|---------------------|-------------|----------------|
//! | D1 unseeded RNG               | all                 | all         | scanned        |
//! | D1 wall-clock (`Instant`, …)  | `[rules.D1].time`   | lib         | skipped        |
//! | D1 hash-order (`HashMap`, …)  | `[rules.D1].hash`   | lib         | skipped        |
//! | P1 panic sites                | `[rules.P1].crates` | lib         | skipped        |
//! | U1 undocumented `unsafe`      | all                 | all         | scanned        |
//! | U1 missing `forbid` in lib.rs | all                 | crate-level | —              |
//! | F1 raw threading              | `[rules.F1].crates` | lib         | skipped        |
//!
//! Unseeded RNG and undocumented `unsafe` are scanned even in test
//! code: a clock-seeded test is exactly the kind of flake the 5-seed
//! `G_r` protocol cannot tolerate, and an unsound test block corrupts
//! memory as happily as production code does.

use crate::config::Config;
use crate::workspace::{FileKind, SourceFile};
use std::collections::BTreeMap;

/// One raw lint finding (allowlist not yet applied).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id: `D1`, `P1`, `U1`, or `F1`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Trimmed source line the finding points at.
    pub snippet: String,
}

/// Identifiers whose presence means unseeded / ambient randomness.
const RNG_IDENTS: &[(&str, &str)] = &[
    ("thread_rng", "clock/OS-seeded generator; derive a seed via tsda_core::rng instead"),
    ("from_entropy", "OS-entropy seeding defeats run-to-run reproducibility"),
    ("try_from_entropy", "OS-entropy seeding defeats run-to-run reproducibility"),
    ("OsRng", "OS randomness is unseedable"),
    ("ThreadRng", "clock/OS-seeded generator type"),
    ("RandomState", "randomized hasher state changes iteration order every process"),
];

/// Identifiers that read the wall clock.
const TIME_IDENTS: &[&str] = &["Instant", "SystemTime"];

/// Hash collections whose iteration order is unspecified.
const HASH_IDENTS: &[(&str, &str)] = &[
    ("HashMap", "BTreeMap"),
    ("HashSet", "BTreeSet"),
];

/// Macros that abort the thread.
pub(crate) const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Run every token-stream rule over `files`, returning findings sorted
/// by `(path, line, rule)`.
pub fn run_rules(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let (mut findings, _) = run_rules_timed(files, cfg);
    sort_dedup(&mut findings);
    findings
}

/// Like [`run_rules`] but unsorted, with per-rule wall time in
/// milliseconds. (Timing the linter is legal even though D1 bans
/// wall-clock reads in result-producing crates: rule duration is
/// diagnostics, and `analyze` is not in any D1 scope.)
pub fn run_rules_timed(
    files: &[SourceFile],
    cfg: &Config,
) -> (Vec<Finding>, Vec<(String, f64)>) {
    let mut findings = Vec::new();
    let mut timings = Vec::new();

    let t0 = std::time::Instant::now();
    for file in files {
        check_d1(file, cfg, &mut findings);
    }
    timings.push(("D1".to_string(), ms_since(t0)));

    let t0 = std::time::Instant::now();
    for file in files {
        check_p1(file, cfg, &mut findings);
    }
    timings.push(("P1".to_string(), ms_since(t0)));

    let t0 = std::time::Instant::now();
    for file in files {
        check_u1_safety_comments(file, &mut findings);
    }
    check_u1_forbid(files, &mut findings);
    timings.push(("U1".to_string(), ms_since(t0)));

    let t0 = std::time::Instant::now();
    for file in files {
        check_f1(file, cfg, &mut findings);
    }
    timings.push(("F1".to_string(), ms_since(t0)));

    (findings, timings)
}

pub(crate) fn ms_since(t0: std::time::Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// Sort findings by `(path, line, rule)` and drop repeats.
pub fn sort_dedup(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule))
    });
    // Two tokens on one line (`HashMap::<..>::new()` twice) are one
    // violation to fix, not two.
    findings.dedup_by(|a, b| {
        a.rule == b.rule && a.path == b.path && a.line == b.line && a.message == b.message
    });
}

fn in_list(list: &[String], crate_name: &str) -> bool {
    list.iter().any(|c| c == crate_name)
}

fn push(findings: &mut Vec<Finding>, file: &SourceFile, rule: &'static str, line: u32, message: String) {
    findings.push(Finding {
        rule,
        path: file.rel_path.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
    });
}

fn check_d1(file: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    let time_scope = in_list(&cfg.d1_time, &file.crate_name) && file.kind == FileKind::Lib;
    let hash_scope = in_list(&cfg.d1_hash, &file.crate_name) && file.kind == FileKind::Lib;
    for (i, t) in file.toks.iter().enumerate() {
        if let Some((_, why)) = RNG_IDENTS.iter().find(|(name, _)| t.is_ident(name)) {
            push(
                findings,
                file,
                "D1",
                t.line,
                format!("nondeterministic randomness: `{}` ({why})", t.text),
            );
            continue;
        }
        if file.in_test[i] {
            continue;
        }
        if time_scope && TIME_IDENTS.iter().any(|name| t.is_ident(name)) {
            push(
                findings,
                file,
                "D1",
                t.line,
                format!(
                    "wall-clock read: `{}` in a result-producing crate makes outputs \
                     timing-dependent",
                    t.text
                ),
            );
        }
        if hash_scope {
            if let Some((_, ordered)) = HASH_IDENTS.iter().find(|(name, _)| t.is_ident(name)) {
                push(
                    findings,
                    file,
                    "D1",
                    t.line,
                    format!(
                        "`{}` iteration order is unspecified; use `{ordered}` (or allowlist \
                         with a justification that iteration never feeds ordered output)",
                        t.text
                    ),
                );
            }
        }
    }
}

fn check_p1(file: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    if !in_list(&cfg.p1_crates, &file.crate_name) || file.kind != FileKind::Lib {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        // `.unwrap(` / `.expect(` — a method call, not a definition.
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            push(
                findings,
                file,
                "P1",
                t.line,
                format!(
                    "`.{}()` in library code can panic; return a TsdaError (or allowlist a \
                     startup-time/infallible-by-construction site with a reason)",
                    t.text
                ),
            );
            continue;
        }
        // panic!/unreachable!/todo!/unimplemented!
        if PANIC_MACROS.iter().any(|m| t.is_ident(m))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            push(
                findings,
                file,
                "P1",
                t.line,
                format!("`{}!` aborts the calling thread; return a TsdaError instead", t.text),
            );
            continue;
        }
        // `thing["key"]` — indexing a map by literal key panics on a
        // missing entry; `.get("key")` is the fallible spelling.
        if t.is_punct('[')
            && toks.get(i + 1).is_some_and(|n| n.kind == crate::lexer::TokKind::Str)
            && toks.get(i + 2).is_some_and(|n| n.is_punct(']'))
            && i > 0
            && (toks[i - 1].kind == crate::lexer::TokKind::Ident || toks[i - 1].is_punct(')'))
        {
            push(
                findings,
                file,
                "P1",
                t.line,
                "string-keyed `[...]` indexing panics on a missing entry; use `.get(...)`"
                    .to_string(),
            );
        }
    }
}

/// Every `unsafe` token needs `// SAFETY:` in the comment block on the
/// lines immediately above it.
fn check_u1_safety_comments(file: &SourceFile, findings: &mut Vec<Finding>) {
    for t in &file.toks {
        if !t.is_ident("unsafe") {
            continue;
        }
        if !has_safety_comment_above(&file.lines, t.line) {
            push(
                findings,
                file,
                "U1",
                t.line,
                "`unsafe` without a `// SAFETY:` comment on the preceding line(s)".to_string(),
            );
        }
    }
}

fn has_safety_comment_above(lines: &[String], line: u32) -> bool {
    // Walk upward through the contiguous `//` comment block (doc
    // comments and attributes may sit between it and the unsafe line).
    let mut idx = (line as usize).saturating_sub(1); // 0-based index of the unsafe line
    while idx > 0 {
        idx -= 1;
        let text = lines.get(idx).map_or("", |s| s.trim());
        if text.starts_with("//") {
            if text.contains("SAFETY:") {
                return true;
            }
        } else if text.starts_with("#[") || text.starts_with("#![") {
            // Attributes between the comment and the item are fine.
            continue;
        } else {
            return false;
        }
    }
    false
}

/// Crates with no `unsafe` anywhere must pin that down with
/// `#![forbid(unsafe_code)]` in their `src/lib.rs`.
fn check_u1_forbid(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let mut has_unsafe: BTreeMap<&str, bool> = BTreeMap::new();
    for file in files {
        let e = has_unsafe.entry(&file.crate_name).or_insert(false);
        *e |= file.toks.iter().any(|t| t.is_ident("unsafe"));
    }
    for file in files {
        if !file.rel_path.ends_with("/src/lib.rs") {
            continue;
        }
        if has_unsafe.get(file.crate_name.as_str()).copied().unwrap_or(false) {
            continue;
        }
        if !declares_forbid_unsafe(file) {
            push(
                findings,
                file,
                "U1",
                1,
                format!(
                    "crate `{}` contains no unsafe code but src/lib.rs does not declare \
                     `#![forbid(unsafe_code)]`",
                    file.crate_name
                ),
            );
        }
    }
}

fn declares_forbid_unsafe(file: &SourceFile) -> bool {
    let toks = &file.toks;
    (0..toks.len()).any(|i| {
        toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("forbid") || t.is_ident("deny"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
    })
}

/// Raw threading outside the blessed deterministic pool: a parallel
/// float reduction whose combine order depends on scheduling is the
/// textbook source of run-to-run drift.
fn check_f1(file: &SourceFile, cfg: &Config, findings: &mut Vec<Finding>) {
    if !in_list(&cfg.f1_crates, &file.crate_name) || file.kind != FileKind::Lib {
        return;
    }
    if cfg.f1_blessed.contains(&file.rel_path) {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        if toks[i].is_ident("thread")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|t| t.is_ident("spawn") || t.is_ident("scope") || t.is_ident("Builder"))
        {
            push(
                findings,
                file,
                "F1",
                toks[i].line,
                format!(
                    "raw `thread::{}` outside tsda_core::parallel; parallel reductions must \
                     go through the deterministic Pool helpers (fixed chunking, ordered combine)",
                    toks[i + 3].text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lib_file(crate_name: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let in_test = vec![false; toks.len()];
        SourceFile {
            crate_name: crate_name.into(),
            rel_path: format!("crates/{crate_name}/src/lib.rs"),
            kind: FileKind::Lib,
            lines: src.lines().map(str::to_string).collect(),
            toks,
            in_test,
        }
    }

    fn cfg_all(name: &str) -> Config {
        Config {
            d1_time: vec![name.into()],
            d1_hash: vec![name.into()],
            p1_crates: vec![name.into()],
            f1_crates: vec![name.into()],
            ..Config::default()
        }
    }

    #[test]
    fn p1_spots_method_panics_but_not_combinators() {
        let f = lib_file(
            "x",
            "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n\
             fn g(o: Option<u8>) -> u8 { o.unwrap_or(0) }\n\
             fn h(o: Option<u8>) -> u8 { o.expect(\"set\") }\n",
        );
        let found = run_rules(&[f], &cfg_all("x"));
        let p1: Vec<_> = found.iter().filter(|f| f.rule == "P1").collect();
        assert_eq!(p1.len(), 2, "{p1:?}");
    }

    #[test]
    fn p1_macros_and_string_indexing() {
        let f = lib_file(
            "x",
            "fn f() { panic!(\"boom\") }\n\
             fn g(m: &std::collections::BTreeMap<String, u8>) -> u8 { m[\"key\"] }\n\
             fn h() -> [u8; 2] { [0, 1] }\n",
        );
        let found = run_rules(&[f], &cfg_all("x"));
        let p1: Vec<_> = found.iter().filter(|f| f.rule == "P1").collect();
        assert_eq!(p1.len(), 2, "{p1:?}");
    }

    #[test]
    fn d1_rng_fires_even_in_tests_and_time_only_in_lib_scope() {
        let src = "fn f() { let r = rand::thread_rng(); }\n";
        let f = lib_file("x", src);
        let found = run_rules(&[f], &cfg_all("x"));
        assert_eq!(found.iter().filter(|f| f.rule == "D1").count(), 1);

        // Instant in a non-time-scoped crate: clean.
        let f = lib_file("y", "fn f() { let t = std::time::Instant::now(); }\n");
        let found = run_rules(&[f], &cfg_all("x"));
        assert!(found.iter().all(|f| f.rule != "D1"), "{found:?}");
    }

    #[test]
    fn u1_requires_safety_comment_and_forbid() {
        let documented = lib_file(
            "x",
            "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n",
        );
        let found = run_rules(&[documented], &cfg_all("x"));
        assert!(found.iter().all(|f| f.rule != "U1"), "{found:?}");

        let undocumented = lib_file("x", "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
        let found = run_rules(&[undocumented], &cfg_all("x"));
        assert_eq!(found.iter().filter(|f| f.rule == "U1").count(), 1);

        // No unsafe at all: lib.rs must forbid.
        let clean = lib_file("x", "pub fn f() {}\n");
        let found = run_rules(&[clean], &cfg_all("x"));
        assert_eq!(found.iter().filter(|f| f.rule == "U1").count(), 1);
        let forbidding = lib_file("x", "#![forbid(unsafe_code)]\npub fn f() {}\n");
        let found = run_rules(&[forbidding], &cfg_all("x"));
        assert!(found.iter().all(|f| f.rule != "U1"), "{found:?}");
    }

    #[test]
    fn f1_flags_raw_threads_outside_blessed_files() {
        let src = "fn f() { std::thread::spawn(|| ()); }\n#![forbid(unsafe_code)]\n";
        let f = lib_file("x", src);
        let found = run_rules(&[f], &cfg_all("x"));
        assert_eq!(found.iter().filter(|f| f.rule == "F1").count(), 1);

        let mut cfg = cfg_all("x");
        cfg.f1_blessed = vec!["crates/x/src/lib.rs".into()];
        let f = lib_file("x", src);
        let found = run_rules(&[f], &cfg);
        assert!(found.iter().all(|f| f.rule != "F1"), "{found:?}");
    }
}
