//! `analyze.toml`: rule scoping and the allowlist.
//!
//! The container has no crates.io access, so this module includes a
//! hand-rolled parser for the small TOML subset the config actually
//! uses: `[table]` headers, `[[array-of-table]]` headers, string /
//! string-array / bool / integer values, and `#` comments. Anything
//! outside that subset is a hard error with a line number — a config
//! typo must fail the build, not silently relax a lint.
//!
//! The checked-in `analyze.toml` at the workspace root documents the
//! full schema inline; in short:
//!
//! ```toml
//! [paths]
//! scan = ["crates"]          # roots scanned, relative to the workspace
//! skip = ["crates/analyze/tests/fixtures"]   # subtrees never scanned
//!
//! [rules.D1]
//! time = ["core", ...]       # crates where wall-clock reads are banned
//! hash = ["core", ...]       # crates where HashMap/HashSet are banned
//!
//! [rules.P1]
//! crates = ["core", ...]     # crates whose library code must not panic
//!
//! [rules.F1]
//! crates = ["core", ...]     # crates that must use the blessed pool
//! blessed = ["crates/core/src/parallel.rs"]
//!
//! [rules.R1]
//! roots = ["serve::handle_connection", ...]  # panic-reachability roots
//!
//! [rules.R2]
//! crates = ["core", ...]     # crates checked for discarded Results
//!
//! [rules.R4]
//! crates = ["core", ...]     # crates checked for unpinned reductions
//!
//! [rules.A1]
//! crates = ["serve", ...]    # scratch-disciplined crates: hot-reachable
//!                            # fns may only allocate through Scratch
//!                            # receivers
//!
//! [rules.L1]
//! crates = ["serve", ...]    # crates whose guards feed the lock-order graph
//!
//! [rules.L2]
//! crates = ["serve", ...]    # crates checked for guards held across blocking
//!
//! [rules.T1]
//! paths = ["crates/serve/src/proto2.rs", ...]  # wire-decode files whose
//!                            # reader outputs are tainted (C1 shares this)
//!
//! [[allow]]                  # one entry per tolerated finding site
//! rule = "P1"                # which rule the entry silences
//! path = "crates/core/src/parallel.rs"   # file path prefix
//! contains = "filled every slot"         # optional: source-line substring
//! reason = "why this occurrence is sound"  # mandatory, non-empty
//! ```

use std::collections::BTreeMap;

/// One allowlist entry from `[[allow]]`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry applies to (`D1`, `P1`, `U1`, `F1`).
    pub rule: String,
    /// Path prefix (workspace-relative, `/`-separated) the entry covers.
    pub path: String,
    /// Optional substring the finding's source line must contain; an
    /// empty string matches every line in `path`.
    pub contains: String,
    /// Mandatory human justification.
    pub reason: String,
}

impl AllowEntry {
    /// Does this entry silence a finding of `rule` at `path` whose
    /// source line is `line_text`?
    pub fn matches(&self, rule: &str, path: &str, line_text: &str) -> bool {
        self.rule == rule
            && path.starts_with(&self.path)
            && (self.contains.is_empty() || line_text.contains(&self.contains))
    }
}

/// Parsed `analyze.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Scan roots, workspace-relative.
    pub scan: Vec<String>,
    /// Subtree prefixes excluded from scanning (fixtures).
    pub skip: Vec<String>,
    /// Crates (dir names under `crates/`) where D1 bans wall-clock.
    pub d1_time: Vec<String>,
    /// Crates where D1 bans `HashMap`/`HashSet`.
    pub d1_hash: Vec<String>,
    /// Crates whose non-test library code P1 requires panic-free.
    pub p1_crates: Vec<String>,
    /// Crates where F1 bans raw threading.
    pub f1_crates: Vec<String>,
    /// Files exempt from F1 (the deterministic pool itself).
    pub f1_blessed: Vec<String>,
    /// R1 reachability roots as `crate::fn_name` keys (the serve
    /// request path and the experiment harness entry points).
    pub r1_roots: Vec<String>,
    /// Crates whose library code R2 checks for discarded `Result`s.
    pub r2_crates: Vec<String>,
    /// Crates whose library code R4 checks for unpinned float
    /// reductions (the result-producing crates).
    pub r4_crates: Vec<String>,
    /// Scratch-disciplined crates: A1 bans `Vec::new`/`with_capacity`/
    /// `.to_vec()`/`.clone()`/`format!`/`Box::new` in hot-reachable fns
    /// of these crates unless the site goes through a `Scratch`-typed
    /// receiver.
    pub a1_crates: Vec<String>,
    /// Crates whose lock acquisitions feed the L1 lock-order graph
    /// (the concurrent crates — summaries still cover the whole graph).
    pub l1_crates: Vec<String>,
    /// Crates whose library code L2 checks for guards held across
    /// blocking calls.
    pub l2_crates: Vec<String>,
    /// Wire-decode files (exact workspace-relative paths) whose reader
    /// outputs T1 treats as tainted lengths; C1 shares this scope.
    pub t1_paths: Vec<String>,
    /// Allowlist entries in file order.
    pub allow: Vec<AllowEntry>,
}

/// Minimal TOML value for the supported subset.
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    Array(Vec<String>),
    Bool(bool),
    Int(i64),
}

impl Config {
    /// Parse a config from TOML text. Errors carry 1-based line numbers.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        // Current `[table]` path, and whether we are inside an
        // `[[allow]]` entry (the only array-of-tables supported).
        let mut table: Vec<String> = Vec::new();
        let mut in_allow = false;
        let mut current_allow: BTreeMap<String, String> = BTreeMap::new();

        let flush_allow = |entry: &mut BTreeMap<String, String>,
                               line_no: usize|
         -> Result<Option<AllowEntry>, String> {
            if entry.is_empty() {
                return Ok(None);
            }
            let rule = entry.remove("rule").unwrap_or_default();
            let path = entry.remove("path").unwrap_or_default();
            let contains = entry.remove("contains").unwrap_or_default();
            let reason = entry.remove("reason").unwrap_or_default();
            if let Some((k, _)) = entry.iter().next() {
                return Err(format!("line {line_no}: unknown [[allow]] key {k:?}"));
            }
            entry.clear();
            if rule.is_empty() || path.is_empty() {
                return Err(format!(
                    "line {line_no}: [[allow]] entry needs both \"rule\" and \"path\""
                ));
            }
            if reason.trim().is_empty() {
                return Err(format!(
                    "line {line_no}: [[allow]] entry for {rule} at {path:?} has no \"reason\" — \
                     every allowlisted finding must carry a justification"
                ));
            }
            Ok(Some(AllowEntry { rule, path, contains, reason }))
        };

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                if header.trim() != "allow" {
                    return Err(format!(
                        "line {line_no}: unsupported array-of-tables [[{header}]]"
                    ));
                }
                if let Some(entry) = flush_allow(&mut current_allow, line_no)? {
                    cfg.allow.push(entry);
                }
                in_allow = true;
                table.clear();
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                if let Some(entry) = flush_allow(&mut current_allow, line_no)? {
                    cfg.allow.push(entry);
                }
                in_allow = false;
                table = header.trim().split('.').map(|s| s.trim().to_string()).collect();
                continue;
            }
            let (key, value) = parse_key_value(&line, line_no)?;
            if in_allow {
                let TomlValue::Str(s) = value else {
                    return Err(format!("line {line_no}: [[allow]].{key} must be a string"));
                };
                current_allow.insert(key, s);
                continue;
            }
            let target = format!("{}.{}", table.join("."), key);
            match (target.as_str(), value) {
                ("paths.scan", TomlValue::Array(v)) => cfg.scan = v,
                ("paths.skip", TomlValue::Array(v)) => cfg.skip = v,
                ("rules.D1.time", TomlValue::Array(v)) => cfg.d1_time = v,
                ("rules.D1.hash", TomlValue::Array(v)) => cfg.d1_hash = v,
                ("rules.P1.crates", TomlValue::Array(v)) => cfg.p1_crates = v,
                ("rules.F1.crates", TomlValue::Array(v)) => cfg.f1_crates = v,
                ("rules.F1.blessed", TomlValue::Array(v)) => cfg.f1_blessed = v,
                ("rules.R1.roots", TomlValue::Array(v)) => cfg.r1_roots = v,
                ("rules.R2.crates", TomlValue::Array(v)) => cfg.r2_crates = v,
                ("rules.R4.crates", TomlValue::Array(v)) => cfg.r4_crates = v,
                ("rules.A1.crates", TomlValue::Array(v)) => cfg.a1_crates = v,
                ("rules.L1.crates", TomlValue::Array(v)) => cfg.l1_crates = v,
                ("rules.L2.crates", TomlValue::Array(v)) => cfg.l2_crates = v,
                ("rules.T1.paths", TomlValue::Array(v)) => cfg.t1_paths = v,
                (other, _) => {
                    return Err(format!("line {line_no}: unknown or mistyped key {other:?}"));
                }
            }
        }
        if let Some(entry) = flush_allow(&mut current_allow, text.lines().count())? {
            cfg.allow.push(entry);
        }
        if cfg.scan.is_empty() {
            cfg.scan.push("crates".to_string());
        }
        Ok(cfg)
    }
}

/// Rewrite config text with the given stale `[[allow]]` entries
/// removed (the `--fix-stale` flag). A block runs from its `[[allow]]`
/// header line to the line before the next `[`-header or EOF; a block
/// is dropped when its rule/path/contains triple equals a stale
/// entry's. Every other line — comments, ordering, formatting — is
/// preserved verbatim.
pub fn prune_stale(text: &str, stale: &[AllowEntry]) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let is_header = |l: &str| strip_comment(l).trim().starts_with('[');
    let mut out = String::new();
    let mut i = 0;
    while i < lines.len() {
        let stripped = strip_comment(lines[i]).trim().to_string();
        if stripped != "[[allow]]" {
            out.push_str(lines[i]);
            out.push('\n');
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < lines.len() && !is_header(lines[j]) {
            j += 1;
        }
        // Identity of this block: its rule/path/contains values.
        let mut rule = String::new();
        let mut path = String::new();
        let mut contains = String::new();
        for l in &lines[i + 1..j] {
            let l = strip_comment(l).trim().to_string();
            if let Some((key, TomlValue::Str(v))) =
                l.split_once('=').and_then(|(k, rest)| {
                    parse_value(rest.trim(), 0).ok().map(|v| (k.trim().to_string(), v))
                })
            {
                match key.as_str() {
                    "rule" => rule = v,
                    "path" => path = v,
                    "contains" => contains = v,
                    _ => {}
                }
            }
        }
        let drop = stale
            .iter()
            .any(|s| s.rule == rule && s.path == path && s.contains == contains);
        if !drop {
            for l in &lines[i..j] {
                out.push_str(l);
                out.push('\n');
            }
        }
        i = j;
    }
    out
}

/// Strip a trailing `#` comment, respecting `"..."` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_key_value(line: &str, line_no: usize) -> Result<(String, TomlValue), String> {
    let Some((key, rest)) = line.split_once('=') else {
        return Err(format!("line {line_no}: expected `key = value`, got {line:?}"));
    };
    let key = key.trim().to_string();
    if key.is_empty() {
        return Err(format!("line {line_no}: empty key"));
    }
    Ok((key, parse_value(rest.trim(), line_no)?))
}

fn parse_value(text: &str, line_no: usize) -> Result<TomlValue, String> {
    if let Some(body) = text.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(format!("line {line_no}: unterminated array (arrays must be single-line)"));
        };
        let mut items = Vec::new();
        for item in split_array_items(body) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item, line_no)? {
                TomlValue::Str(s) => items.push(s),
                _ => {
                    return Err(format!("line {line_no}: only string arrays are supported"));
                }
            }
        }
        return Ok(TomlValue::Array(items));
    }
    if let Some(body) = text.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(format!("line {line_no}: unterminated string"));
        };
        return Ok(TomlValue::Str(unescape(body)));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    text.parse::<i64>()
        .map(TomlValue::Int)
        .map_err(|_| format!("line {line_no}: unsupported value {text:?}"))
}

/// Split array items on commas outside of string quotes.
fn split_array_items(body: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in body.chars() {
        match c {
            '"' if !prev_backslash => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    items.push(current);
    items
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_schema() {
        let cfg = Config::parse(
            r#"
            # comment
            [paths]
            scan = ["crates"]          # trailing comment
            skip = ["crates/analyze/tests/fixtures"]

            [rules.D1]
            time = ["core", "linalg"]
            hash = ["core"]

            [rules.P1]
            crates = ["core"]

            [rules.F1]
            crates = ["core"]
            blessed = ["crates/core/src/parallel.rs"]

            [rules.L1]
            crates = ["serve"]

            [rules.L2]
            crates = ["serve"]

            [rules.T1]
            paths = ["crates/serve/src/proto2.rs"]

            [[allow]]
            rule = "P1"
            path = "crates/core/src/parallel.rs"
            contains = "every slot"
            reason = "infallible by construction"

            [[allow]]
            rule = "D1"
            path = "crates/serve/src"
            reason = "batching timers"
            "#,
        )
        .expect("config parses");
        assert_eq!(cfg.scan, vec!["crates"]);
        assert_eq!(cfg.d1_time, vec!["core", "linalg"]);
        assert_eq!(cfg.l1_crates, vec!["serve"]);
        assert_eq!(cfg.l2_crates, vec!["serve"]);
        assert_eq!(cfg.t1_paths, vec!["crates/serve/src/proto2.rs"]);
        assert_eq!(cfg.allow.len(), 2);
        assert!(cfg.allow[0].matches("P1", "crates/core/src/parallel.rs", "x every slot y"));
        assert!(!cfg.allow[0].matches("P1", "crates/core/src/parallel.rs", "other line"));
        assert!(cfg.allow[1].matches("D1", "crates/serve/src/batcher.rs", "anything"));
    }

    #[test]
    fn reason_is_mandatory() {
        let err = Config::parse(
            "[[allow]]\nrule = \"P1\"\npath = \"crates/core\"\n",
        )
        .unwrap_err();
        assert!(err.contains("reason"), "{err}");
        let err = Config::parse(
            "[[allow]]\nrule = \"P1\"\npath = \"crates/core\"\nreason = \"  \"\n",
        )
        .unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_keys_are_hard_errors() {
        assert!(Config::parse("[rules.P1]\ncreates = [\"core\"]\n").is_err());
        assert!(Config::parse("[[deny]]\nrule = \"P1\"\n").is_err());
        assert!(Config::parse("nonsense\n").is_err());
    }

    #[test]
    fn comment_hashes_inside_strings_survive() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"P1\"\npath = \"crates/x\"\ncontains = \"a # b\"\nreason = \"r\"\n",
        )
        .expect("parses");
        assert_eq!(cfg.allow[0].contains, "a # b");
    }

    #[test]
    fn default_scan_root() {
        assert_eq!(Config::parse("").expect("empty ok").scan, vec!["crates"]);
    }

    #[test]
    fn prune_stale_drops_only_matching_blocks() {
        let text = "\
# keep this comment\n\
[rules.P1]\n\
crates = [\"core\"]\n\
\n\
[[allow]]\n\
rule = \"P1\"  # justified\n\
path = \"crates/core/src/parallel.rs\"\n\
contains = \"every slot\"\n\
reason = \"infallible by construction\"\n\
\n\
[[allow]]\n\
rule = \"R3\"\n\
path = \"crates/signal/src\"\n\
reason = \"gone stale\"\n\
\n\
[[allow]]\n\
rule = \"D1\"\n\
path = \"crates/serve/src\"\n\
reason = \"batching timers\"\n";
        let stale = vec![AllowEntry {
            rule: "R3".into(),
            path: "crates/signal/src".into(),
            contains: String::new(),
            reason: "gone stale".into(),
        }];
        let pruned = prune_stale(text, &stale);
        assert!(pruned.contains("# keep this comment"));
        assert!(pruned.contains("every slot"), "{pruned}");
        assert!(!pruned.contains("signal"), "{pruned}");
        let cfg = Config::parse(&pruned).expect("pruned config still parses");
        assert_eq!(cfg.allow.len(), 2);
        assert_eq!(cfg.allow[0].rule, "P1");
        assert_eq!(cfg.allow[1].rule, "D1");
        // No stale entries: text unchanged.
        assert_eq!(prune_stale(text, &[]), text);
    }
}
