//! Trait-object call resolution: which concrete impls can a
//! `dyn Trait` method call actually reach?
//!
//! The conservative call graph resolves `.method(..)` to every
//! workspace method of that name — which drags whole subsystems into a
//! hot-path audit the moment one pipeline dispatches through
//! `Box<dyn SeriesTransform>`. This module recovers a *sound*
//! narrowing from three workspace-wide facts; the narrowing only fires
//! when all three agree, and every ambiguity falls back to the
//! conservative answer:
//!
//! * **dyn slots** — bindings declared with a `dyn Trait` type in an
//!   unambiguous *type position*: struct fields, `let` ascriptions,
//!   and fn parameters. `choose: Vec<Box<dyn SeriesTransform + Send>>`
//!   records slot `choose → SeriesTransform`. A name declared against
//!   two different traits anywhere in the workspace is dropped — the
//!   receiver ident alone cannot tell the declarations apart.
//! * **trait surface** — the methods a trait declares and the types
//!   implementing it (`impl Trait for Type`). A slot call narrows only
//!   when the trait actually declares the method; `choose.len()` (a
//!   std call on the *container* holding the objects) is untouched.
//! * **coercion census (RTA-lite)** — the concrete types observed
//!   boxed in non-test code. `Box::new(Type ...)` with a literal type
//!   head, anywhere in a non-test token region, admits `Type` for
//!   every trait it implements (boxing without coercing merely
//!   over-admits within the implementor set — harmless). A box whose
//!   source type the tokens cannot name (`Box::new(var)`, an `as`-cast
//!   to a dyn type) poisons every trait the surrounding *file* names
//!   as `dyn Trait`, and a poisoned trait falls back to "every
//!   implementor". Test-only coercions are ignored on purpose:
//!   reachability rules audit production roots, and a trait object
//!   built only by tests never flows into one. The census assumes an
//!   opaque coercion happens in a file that names the dyn type
//!   somewhere — true of every coercion in this workspace, and cheap
//!   to keep true.
//!
//! Residual imprecision is conservative by construction — a trait with
//! no parsed implementors (e.g. macro-generated impls the item parser
//! cannot see) never narrows at all.

use crate::lexer::{Tok, TokKind};
use crate::parser::{Call, FnDef};
use crate::workspace::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Workspace-wide trait-object facts (see module docs).
#[derive(Debug, Default)]
pub struct TraitObjects {
    /// Unambiguous `dyn Trait`-typed binding names → trait.
    pub slots: BTreeMap<String, String>,
    /// Trait → method names it declares (including default methods).
    pub methods: BTreeMap<String, BTreeSet<String>>,
    /// Trait → every implementing type name.
    pub impls: BTreeMap<String, BTreeSet<String>>,
    /// Trait → owner type names a narrowed candidate may have: the
    /// coercion census when it stayed sound, else all implementors.
    pub admitted: BTreeMap<String, BTreeSet<String>>,
}

impl TraitObjects {
    /// Build the facts from the same files/fns the call graph uses.
    pub fn collect(files: &[SourceFile], fns: &[FnDef]) -> TraitObjects {
        let mut t = TraitObjects::default();
        for f in fns {
            if f.owner_is_trait {
                if let Some(owner) = &f.owner {
                    t.methods.entry(owner.clone()).or_default().insert(f.name.clone());
                }
            }
            if let (Some(tr), Some(owner)) = (&f.impl_trait, &f.owner) {
                t.impls.entry(tr.clone()).or_default().insert(owner.clone());
            }
        }
        let traits: BTreeSet<&str> =
            t.methods.keys().chain(t.impls.keys()).map(String::as_str).collect();

        // dyn slots, with conflicting names dropped.
        let mut poisoned_slots: BTreeSet<String> = BTreeSet::new();
        let add_slot = |slots: &mut BTreeMap<String, String>,
                            poisoned: &mut BTreeSet<String>,
                            name: &str,
                            tr: &str| {
            match slots.get(name) {
                Some(prev) if prev != tr => {
                    poisoned.insert(name.to_string());
                }
                _ => {
                    slots.insert(name.to_string(), tr.to_string());
                }
            }
        };
        for file in files {
            collect_field_and_let_slots(&file.toks, &traits, &mut |name, tr| {
                add_slot(&mut t.slots, &mut poisoned_slots, name, tr);
            });
        }
        let file_by_path: BTreeMap<&str, &SourceFile> =
            files.iter().map(|s| (s.rel_path.as_str(), s)).collect();
        for f in fns {
            if let Some(file) = file_by_path.get(f.rel_path.as_str()) {
                collect_param_slots(&file.toks, f, &traits, &mut |name, tr| {
                    add_slot(&mut t.slots, &mut poisoned_slots, name, tr);
                });
            }
        }
        for name in &poisoned_slots {
            t.slots.remove(name);
        }

        // Coercion census over non-test token regions, file by file.
        let mut coerced: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut poisoned_traits: BTreeSet<String> = BTreeSet::new();
        for file in files {
            let toks = &file.toks;
            let mentioned: Vec<&str> = traits
                .iter()
                .copied()
                .filter(|tr| mentions_dyn(toks, 0..toks.len(), tr))
                .collect();
            for tr in &mentioned {
                if has_as_cast_to_dyn(toks, &file.in_test, 0..toks.len(), tr) {
                    poisoned_traits.insert((*tr).to_string());
                }
            }
            census_boxed(toks, &file.in_test, &traits, &mentioned, &t.impls, &mut |tr, ty| {
                match ty {
                    Some(ty) => {
                        coerced.entry(tr.to_string()).or_default().insert(ty.to_string());
                    }
                    None => {
                        poisoned_traits.insert(tr.to_string());
                    }
                }
            });
        }
        for tr in &traits {
            let all = t.impls.get(*tr).cloned().unwrap_or_default();
            let admitted = if poisoned_traits.contains(*tr) {
                all
            } else {
                coerced.remove(*tr).unwrap_or_default()
            };
            t.admitted.insert((*tr).to_string(), admitted);
        }
        t
    }

    /// When `call` is a method call on an unambiguous dyn-slot receiver
    /// whose trait declares the method (and has at least one parsed
    /// implementor), the trait and the owner-type names a candidate
    /// must match. `None` = no narrowing, keep the conservative set.
    pub fn narrow(&self, toks: &[Tok], call: &Call) -> Option<(&str, &BTreeSet<String>)> {
        if !call.is_method {
            return None;
        }
        let comps = receiver_components(toks, call.tok);
        let slot = comps.last()?;
        let tr = self.slots.get(slot)?;
        if !self.methods.get(tr).is_some_and(|m| m.contains(&call.name)) {
            return None;
        }
        // A trait whose impls the parser cannot see (macro-generated)
        // must not narrow: an empty implementor set would unsoundly
        // drop every candidate.
        if self.impls.get(tr).is_none_or(BTreeSet::is_empty) {
            return None;
        }
        Some((tr.as_str(), self.admitted.get(tr)?))
    }
}

/// The dotted receiver path of the method call whose callee ident sits
/// at `callee`: `a.b[i].m(..)` → `["a", "b"]`. Index brackets are
/// stripped; a chain fed by a call result or any other shape yields an
/// empty path (unknown receiver).
pub(crate) fn receiver_components(toks: &[Tok], callee: usize) -> Vec<String> {
    let mut comps: Vec<String> = Vec::new();
    if callee < 2 || !toks[callee - 1].is_punct('.') {
        return comps;
    }
    let mut m = callee - 2;
    loop {
        while toks[m].is_punct(']') {
            let Some(open) = rmatch(toks, m, '[', ']') else { return Vec::new() };
            if open == 0 {
                return Vec::new();
            }
            m = open - 1;
        }
        if toks[m].kind != TokKind::Ident {
            return Vec::new();
        }
        comps.push(toks[m].text.clone());
        if m >= 2 && toks[m - 1].is_punct('.') {
            m -= 2;
        } else {
            break;
        }
    }
    comps.reverse();
    comps
}

/// Index of the `open_c` matching the `close_c` at `close`, scanning
/// left.
fn rmatch(toks: &[Tok], close: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = close;
    loop {
        if toks[j].is_punct(close_c) {
            depth += 1;
        } else if toks[j].is_punct(open_c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

/// Does `span` contain the token sequence `dyn <tr>`?
fn mentions_dyn(toks: &[Tok], span: std::ops::Range<usize>, tr: &str) -> bool {
    let end = span.end.min(toks.len());
    (span.start..end.saturating_sub(1))
        .any(|i| toks[i].is_ident("dyn") && toks[i + 1].is_ident(tr))
}

/// Is any `dyn <tr>` in `span` the target of an `as` cast? Walking left
/// from `dyn` over type-position tokens (`&`, `<`, box-like idents,
/// `mut`, lifetimes, `(`), hitting `as` means the source expression's
/// type is invisible to the census. Test-region casts are skipped like
/// test-region `Box::new` heads: objects built only by tests cannot
/// reach production roots, so they must not poison the trait.
fn has_as_cast_to_dyn(
    toks: &[Tok],
    in_test: &[bool],
    span: std::ops::Range<usize>,
    tr: &str,
) -> bool {
    let end = span.end.min(toks.len());
    'site: for i in span.start..end.saturating_sub(1) {
        if !(toks[i].is_ident("dyn") && toks[i + 1].is_ident(tr)) {
            continue;
        }
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let mut m = i;
        while m > span.start {
            m -= 1;
            let t = &toks[m];
            let type_pos = t.is_punct('&')
                || t.is_punct('<')
                || t.is_punct('(')
                || t.kind == TokKind::Lifetime
                || t.is_ident("mut")
                || t.is_ident("Box")
                || t.is_ident("Rc")
                || t.is_ident("Arc");
            if t.is_ident("as") {
                return true;
            }
            if !type_pos {
                continue 'site;
            }
        }
    }
    false
}

/// Scan a file's non-test token regions for `Box::new(head ...)`
/// coercion evidence. An uppercase head is admitted for every trait it
/// implements; a head the tokens cannot type (a variable, a call
/// result, a parenthesised expression) poisons every trait this file
/// mentions as `dyn Trait`. Closure heads (`|`/`move`) cannot
/// implement a workspace trait and are skipped.
fn census_boxed(
    toks: &[Tok],
    in_test: &[bool],
    traits: &BTreeSet<&str>,
    mentioned: &[&str],
    impls: &BTreeMap<String, BTreeSet<String>>,
    record: &mut dyn FnMut(&str, Option<&str>),
) {
    for i in 0..toks.len() {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !(toks[i].is_ident("Box")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('(')))
        {
            continue;
        }
        let Some(head) = toks.get(i + 5) else { continue };
        if head.is_punct('|') || head.is_ident("move") {
            continue;
        }
        let named = head.kind == TokKind::Ident
            && head.text.chars().next().is_some_and(char::is_uppercase);
        if named {
            for tr in traits {
                if impls.get(*tr).is_some_and(|s| s.contains(&head.text)) {
                    record(tr, Some(&head.text));
                }
            }
        } else {
            for tr in mentioned {
                record(tr, None);
            }
        }
    }
}

/// Record struct-field and `let`-ascription dyn slots in one file.
fn collect_field_and_let_slots(
    toks: &[Tok],
    traits: &BTreeSet<&str>,
    record: &mut dyn FnMut(&str, &str),
) {
    let n = toks.len();
    for i in 0..n {
        let t = &toks[i];
        // `struct Name { field: Type, ... }` — brace-struct fields.
        if t.is_ident("struct") {
            let Some(name_at) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            let _ = name_at;
            let mut j = i + 2;
            if toks.get(j).is_some_and(|t| t.is_punct('<')) {
                j = skip_angle(toks, j, n);
            }
            // `where` clauses and tuple structs end elsewhere; only a
            // `{` directly after (or after the where clause) is a
            // field block.
            while j < n
                && !(toks[j].is_punct('{') || toks[j].is_punct(';') || toks[j].is_punct('('))
            {
                j += 1;
            }
            if !toks.get(j).is_some_and(|t| t.is_punct('{')) {
                continue;
            }
            let close = match_brace(toks, j, n);
            collect_decl_slots(toks, j + 1..close.saturating_sub(1), traits, record);
            continue;
        }
        // `let [mut] name : Type = ...` ascriptions.
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else { continue };
            if !toks.get(j + 1).is_some_and(|t| t.is_punct(':')) {
                continue;
            }
            // Type span to the `=` or `;` at bracket depth 0.
            let mut depth = 0usize;
            let mut k = j + 2;
            while k < n {
                let tk = &toks[k];
                if depth == 0 && (tk.is_punct('=') || tk.is_punct(';')) {
                    break;
                }
                if tk.is_punct('<') || tk.is_punct('(') || tk.is_punct('[') {
                    depth += 1;
                } else if tk.is_punct('>') || tk.is_punct(')') || tk.is_punct(']') {
                    depth = depth.saturating_sub(1);
                }
                k += 1;
            }
            if let Some(tr) = dyn_trait_in(toks, j + 2..k, traits) {
                record(&name.text, tr);
            }
        }
    }
}

/// Record `name: Type` declarations in a struct-field block: each field
/// runs from its name to the next top-level `,`.
fn collect_decl_slots(
    toks: &[Tok],
    block: std::ops::Range<usize>,
    traits: &BTreeSet<&str>,
    record: &mut dyn FnMut(&str, &str),
) {
    let end = block.end.min(toks.len());
    let mut i = block.start;
    while i < end {
        let t = &toks[i];
        // Skip visibility and attributes between fields.
        if t.is_ident("pub") {
            if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                i = match_paren(toks, i + 1, end);
            } else {
                i += 1;
            }
            continue;
        }
        if t.is_punct('#') && toks.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            i = match_delim(toks, i + 1, end, '[', ']');
            continue;
        }
        if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct(':')) {
            // Field type runs to the next `,` at depth 0.
            let mut depth = 0usize;
            let mut k = i + 2;
            while k < end {
                let tk = &toks[k];
                if depth == 0 && tk.is_punct(',') {
                    break;
                }
                if tk.is_punct('<') || tk.is_punct('(') || tk.is_punct('[') {
                    depth += 1;
                } else if tk.is_punct('>') || tk.is_punct(')') || tk.is_punct(']') {
                    depth = depth.saturating_sub(1);
                }
                k += 1;
            }
            if let Some(tr) = dyn_trait_in(toks, i + 2..k, traits) {
                record(&t.text, tr);
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }
}

/// Record fn-parameter dyn slots for one parsed fn: `name: &dyn Trait`
/// and `name: Box<dyn Trait>` parameters.
fn collect_param_slots(
    toks: &[Tok],
    f: &FnDef,
    traits: &BTreeSet<&str>,
    record: &mut dyn FnMut(&str, &str),
) {
    let header_end = if f.body.is_empty() { toks.len() } else { f.body.start };
    let mut j = f.sig_start + 2; // past `fn name`
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angle(toks, j, header_end);
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
        return;
    }
    let close = match_paren(toks, j, header_end);
    let inner = j + 1..close.saturating_sub(1);
    let mut depth = 0usize;
    let mut start = inner.start;
    let mut scan = |span: std::ops::Range<usize>| {
        let mut k = span.start;
        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let Some(name) = toks.get(k).filter(|t| t.kind == TokKind::Ident) else { return };
        if k + 2 > span.end || !toks[k + 1].is_punct(':') {
            return;
        }
        if let Some(tr) = dyn_trait_in(toks, k + 2..span.end, traits) {
            record(&name.text, tr);
        }
    };
    for p in inner.clone() {
        let t = &toks[p];
        if t.is_punct('(') || t.is_punct('<') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct('>') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct(',') {
            scan(start..p);
            start = p + 1;
        }
    }
    if start < inner.end {
        scan(start..inner.end);
    }
}

/// The known trait named by a `dyn Trait` inside a type span, if any.
fn dyn_trait_in<'t>(
    toks: &[Tok],
    span: std::ops::Range<usize>,
    traits: &BTreeSet<&'t str>,
) -> Option<&'t str> {
    let end = span.end.min(toks.len());
    for i in span.start..end.saturating_sub(1) {
        if toks[i].is_ident("dyn") && toks[i + 1].kind == TokKind::Ident {
            if let Some(tr) = traits.get(toks[i + 1].text.as_str()) {
                return Some(tr);
            }
        }
    }
    None
}

fn skip_angle(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

fn match_brace(toks: &[Tok], open: usize, end: usize) -> usize {
    match_delim(toks, open, end, '{', '}')
}

fn match_paren(toks: &[Tok], open: usize, end: usize) -> usize {
    match_delim(toks, open, end, '(', ')')
}

fn match_delim(toks: &[Tok], open: usize, end: usize, o: char, c: char) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        if toks[j].is_punct(o) {
            depth += 1;
        } else if toks[j].is_punct(c) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_fns;
    use crate::workspace::{FileKind, SourceFile};

    fn file(crate_name: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let in_test = vec![false; toks.len()];
        SourceFile {
            crate_name: crate_name.into(),
            rel_path: format!("crates/{crate_name}/src/lib.rs"),
            kind: FileKind::Lib,
            lines: src.lines().map(str::to_string).collect(),
            toks,
            in_test,
        }
    }

    fn collect(src: &str) -> (TraitObjects, SourceFile) {
        let f = file("a", src);
        let fns = parse_fns(&f);
        let files = vec![f];
        let t = TraitObjects::collect(&files, &fns);
        (t, files.into_iter().next().expect("one file"))
    }

    const PIPELINE: &str = "\
        pub trait Step { fn apply(&self, x: u8) -> u8; }\n\
        pub struct Fast; pub struct Slow; pub struct Cold;\n\
        impl Step for Fast { fn apply(&self, x: u8) -> u8 { x } }\n\
        impl Step for Slow { fn apply(&self, x: u8) -> u8 { x + 1 } }\n\
        impl Step for Cold { fn apply(&self, x: u8) -> u8 { x + 2 } }\n\
        pub struct Stage { pub choose: Vec<Box<dyn Step + Send>> }\n\
        pub fn build() -> Stage {\n\
            let mut choose: Vec<Box<dyn Step + Send>> = Vec::new();\n\
            choose.push(Box::new(Fast));\n\
            choose.push(Box::new(Slow));\n\
            Stage { choose }\n\
        }\n\
        pub fn run(s: &Stage, pick: usize) -> u8 { s.choose[pick].apply(3) }\n";

    #[test]
    fn slots_traits_and_census() {
        let (t, _) = collect(PIPELINE);
        assert_eq!(t.slots.get("choose").map(String::as_str), Some("Step"));
        assert!(t.methods.get("Step").is_some_and(|m| m.contains("apply")));
        let impls = t.impls.get("Step").expect("impls");
        assert_eq!(impls.len(), 3);
        // Census admits only the types actually boxed in non-test code.
        let admitted = t.admitted.get("Step").expect("admitted");
        assert!(admitted.contains("Fast") && admitted.contains("Slow"));
        assert!(!admitted.contains("Cold"));
    }

    #[test]
    fn narrow_fires_on_indexed_slot_receiver_only() {
        let (t, f) = collect(PIPELINE);
        let fns = parse_fns(&f);
        let run = fns.iter().find(|d| d.name == "run").expect("run");
        let call = run.calls.iter().find(|c| c.name == "apply").expect("apply call");
        let (tr, admitted) = t.narrow(&f.toks, call).expect("narrowed");
        assert_eq!(tr, "Step");
        assert_eq!(admitted.len(), 2);
        // `choose.push(..)` is a container call the trait does not
        // declare: no narrowing.
        let build = fns.iter().find(|d| d.name == "build").expect("build");
        let push = build.calls.iter().find(|c| c.name == "push").expect("push call");
        assert!(t.narrow(&f.toks, push).is_none());
    }

    #[test]
    fn opaque_coercions_poison_the_census() {
        let (t, _) = collect(
            "pub trait Step { fn apply(&self); }\n\
             pub struct Fast; pub struct Slow;\n\
             impl Step for Fast { fn apply(&self) {} }\n\
             impl Step for Slow { fn apply(&self) {} }\n\
             pub fn build(x: Fast) -> Box<dyn Step> { Box::new(x) }\n",
        );
        // `Box::new(x)` has no literal type head: all impls admitted.
        assert_eq!(t.admitted.get("Step").map(BTreeSet::len), Some(2));
    }

    #[test]
    fn as_casts_poison_the_census() {
        let (t, _) = collect(
            "pub trait Step { fn apply(&self); }\n\
             pub struct Fast; pub struct Slow;\n\
             impl Step for Fast { fn apply(&self) {} }\n\
             impl Step for Slow { fn apply(&self) {} }\n\
             pub fn build() -> Box<dyn Step> { Box::new(Fast) as Box<dyn Step> }\n",
        );
        assert_eq!(t.admitted.get("Step").map(BTreeSet::len), Some(2));
    }

    #[test]
    fn test_only_coercions_are_invisible() {
        let mut f = file(
            "a",
            "pub trait Step { fn apply(&self); }\n\
             pub struct Fast; pub struct Slow;\n\
             impl Step for Fast { fn apply(&self) {} }\n\
             impl Step for Slow { fn apply(&self) {} }\n\
             pub fn prod(s: &dyn Step) { s.apply() }\n\
             fn coerce() -> Box<dyn Step> { Box::new(Slow) }\n",
        );
        // Mark the `coerce` item's tokens as a test region, as the
        // workspace loader does for `#[cfg(test)]` code.
        let at = f.toks.iter().position(|t| t.is_ident("coerce")).expect("coerce fn");
        for flag in &mut f.in_test[at - 1..] {
            *flag = true;
        }
        let fns = parse_fns(&f);
        let files = vec![f];
        let t = TraitObjects::collect(&files, &fns);
        assert_eq!(t.admitted.get("Step").map(BTreeSet::len), Some(0));
    }

    #[test]
    fn conflicting_slot_names_are_dropped() {
        let (t, _) = collect(
            "pub trait A { fn go(&self); }\n\
             pub trait B { fn go(&self); }\n\
             pub struct X; impl A for X { fn go(&self) {} }\n\
             pub struct Y; impl B for Y { fn go(&self) {} }\n\
             pub struct S1 { item: Box<dyn A> }\n\
             pub struct S2 { item: Box<dyn B> }\n",
        );
        assert!(!t.slots.contains_key("item"));
    }

    #[test]
    fn receiver_components_shapes() {
        let toks = lex("a.b[i].m(1); (x + y).m(2); f().m(3); self.s.buf.push(4);");
        let find = |name: &str| {
            toks.iter().position(|t| t.is_ident(name)).expect("callee present")
        };
        assert_eq!(receiver_components(&toks, find("m")), vec!["a", "b"]);
        let all_m: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("m"))
            .map(|(i, _)| i)
            .collect();
        assert!(receiver_components(&toks, all_m[1]).is_empty());
        assert!(receiver_components(&toks, all_m[2]).is_empty());
        assert_eq!(receiver_components(&toks, find("push")), vec!["self", "s", "buf"]);
    }
}
