//! SARIF 2.1.0 rendering for GitHub code scanning.
//!
//! One run, one driver (`tsda-analyze`), rule metadata from the shared
//! [`docs`](crate::docs) table, and one `result` per unallowlisted
//! finding. Allowlisted findings are emitted too, with a SARIF
//! `suppressions` entry carrying the justification — code scanning then
//! shows them as suppressed instead of silently absent, which keeps the
//! audit trail visible in the same UI.
//!
//! The shape below is the minimal subset GitHub's upload action
//! requires (schema/version, `tool.driver.name`, `results[].message`,
//! `results[].locations[].physicalLocation`), pinned by a test in
//! `tests/sarif_shape.rs`.

use crate::docs::RULE_DOCS;
use crate::report::Report;
use crate::rules::Finding;
use serde::Value;

/// SARIF severity for every finding: the analyzer only reports things
/// that gate CI, so everything is an error.
const LEVEL: &str = "error";

/// Render a [`Report`] as a SARIF 2.1.0 JSON value.
pub fn to_sarif_value(report: &Report) -> Value {
    let rules: Vec<Value> = RULE_DOCS
        .iter()
        .map(|d| {
            Value::Object(vec![
                ("id".into(), Value::Str(d.id.to_string())),
                (
                    "shortDescription".into(),
                    Value::Object(vec![("text".into(), Value::Str(d.summary.to_string()))]),
                ),
                (
                    "help".into(),
                    Value::Object(vec![("text".into(), Value::Str(d.rationale.to_string()))]),
                ),
            ])
        })
        .collect();

    let mut results: Vec<Value> =
        report.findings.iter().map(|f| result_value(f, None)).collect();
    results.extend(
        report.allowed.iter().map(|a| result_value(&a.finding, Some(a.reason.as_str()))),
    );

    let driver = Value::Object(vec![
        ("name".into(), Value::Str("tsda-analyze".to_string())),
        ("informationUri".into(), Value::Str("README.md#static-analysis".to_string())),
        ("rules".into(), Value::Array(rules)),
    ]);
    let run = Value::Object(vec![
        ("tool".into(), Value::Object(vec![("driver".into(), driver)])),
        ("results".into(), Value::Array(results)),
    ]);
    Value::Object(vec![
        (
            "$schema".into(),
            Value::Str(
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                    .to_string(),
            ),
        ),
        ("version".into(), Value::Str("2.1.0".to_string())),
        ("runs".into(), Value::Array(vec![run])),
    ])
}

fn result_value(f: &Finding, suppressed_reason: Option<&str>) -> Value {
    let location = Value::Object(vec![(
        "physicalLocation".into(),
        Value::Object(vec![
            (
                "artifactLocation".into(),
                Value::Object(vec![
                    ("uri".into(), Value::Str(f.path.clone())),
                    ("uriBaseId".into(), Value::Str("%SRCROOT%".to_string())),
                ]),
            ),
            (
                "region".into(),
                Value::Object(vec![
                    // SARIF lines are 1-based; config-level findings
                    // (line 0) anchor to the file top.
                    ("startLine".into(), Value::Num(f.line.max(1) as f64)),
                ]),
            ),
        ]),
    )]);
    let mut pairs = vec![
        ("ruleId".into(), Value::Str(f.rule.to_string())),
        ("level".into(), Value::Str(LEVEL.to_string())),
        (
            "message".into(),
            Value::Object(vec![("text".into(), Value::Str(f.message.clone()))]),
        ),
        ("locations".into(), Value::Array(vec![location])),
    ];
    if let Some(reason) = suppressed_reason {
        pairs.push((
            "suppressions".into(),
            Value::Array(vec![Value::Object(vec![
                ("kind".into(), Value::Str("external".to_string())),
                ("justification".into(), Value::Str(reason.to_string())),
            ])]),
        ));
    }
    Value::Object(pairs)
}

/// SARIF JSON text (pretty). Panic-free like [`Report::to_json`].
pub fn to_sarif(report: &Report) -> String {
    serde_json::to_string_pretty(&to_sarif_value(report))
        .unwrap_or_else(|_| "{\"version\":\"2.1.0\",\"runs\":[]}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::AllowedFinding;

    fn finding(rule: &'static str, line: u32) -> Finding {
        Finding {
            rule,
            path: "crates/x/src/lib.rs".into(),
            line,
            message: "m".into(),
            snippet: "s".into(),
        }
    }

    #[test]
    fn results_cover_findings_and_suppressed_allowed() {
        let report = Report {
            findings: vec![finding("R1", 3)],
            allowed: vec![AllowedFinding { finding: finding("P1", 9), reason: "why".into() }],
            unused_allow: vec![],
            timings: vec![],
        };
        let v = to_sarif_value(&report);
        let runs = v.get("runs").expect("runs");
        let Value::Array(runs) = runs else { panic!("runs is array") };
        let results = runs[0].get("results").expect("results");
        let Value::Array(results) = results else { panic!("results is array") };
        assert_eq!(results.len(), 2);
        assert!(results[0].get("suppressions").is_none());
        assert!(results[1].get("suppressions").is_some());
    }

    #[test]
    fn line_zero_clamps_to_one() {
        let v = result_value(&finding("R1", 0), None);
        let line = v
            .get("locations")
            .and_then(|l| match l {
                Value::Array(a) => a.first(),
                _ => None,
            })
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .and_then(|r| r.get("startLine"))
            .and_then(Value::as_f64);
        assert_eq!(line, Some(1.0));
    }
}
