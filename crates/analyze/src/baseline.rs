//! Baseline emit/compare: fail CI on *new* findings while legacy ones
//! burn down.
//!
//! A baseline is the multiset of currently-tolerated findings, keyed by
//! `(rule, path, snippet)` — deliberately *not* by line number, so code
//! motion above a legacy finding doesn't break the gate, while any
//! change to the finding's own line re-surfaces it. Comparison is
//! multiset subtraction:
//!
//! * a current finding with a matching unconsumed baseline entry is
//!   **suppressed** (legacy debt);
//! * a current finding with no match is **new** → exit 1;
//! * baseline entries matching nothing are **stale** and reported, so
//!   the file can be re-emitted smaller as debt is paid off.
//!
//! Format (`--write-baseline`):
//!
//! ```json
//! {"version": 1,
//!  "findings": [{"rule": "R4", "path": "crates/x/src/lib.rs",
//!                "snippet": "let s: f64 = xs.iter().sum();"}]}
//! ```

use crate::rules::Finding;
use serde::Value;
use std::collections::BTreeMap;

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Trimmed source line of the tolerated finding.
    pub snippet: String,
}

impl BaselineEntry {
    fn of(f: &Finding) -> BaselineEntry {
        BaselineEntry { rule: f.rule.to_string(), path: f.path.clone(), snippet: f.snippet.clone() }
    }
}

/// Result of comparing current findings against a baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Findings not covered by the baseline (CI failure).
    pub new_findings: Vec<Finding>,
    /// Findings suppressed by a baseline entry.
    pub suppressed: usize,
    /// Baseline entries that matched nothing (safe to drop).
    pub stale: Vec<BaselineEntry>,
}

/// Serialise findings as baseline JSON text.
pub fn write(findings: &[Finding]) -> String {
    let mut entries: Vec<BaselineEntry> = findings.iter().map(BaselineEntry::of).collect();
    entries.sort();
    let items: Vec<Value> = entries
        .iter()
        .map(|e| {
            Value::Object(vec![
                ("rule".into(), Value::Str(e.rule.clone())),
                ("path".into(), Value::Str(e.path.clone())),
                ("snippet".into(), Value::Str(e.snippet.clone())),
            ])
        })
        .collect();
    let v = Value::Object(vec![
        ("version".into(), Value::Num(1.0)),
        ("findings".into(), Value::Array(items)),
    ]);
    serde_json::to_string_pretty(&v).unwrap_or_else(|_| "{\"version\":1,\"findings\":[]}".into())
}

/// Parse baseline JSON text.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let v = serde_json::parse_value(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    match v.get("version").and_then(Value::as_f64) {
        Some(1.0) => {}
        other => return Err(format!("unsupported baseline version {other:?} (expected 1)")),
    }
    let Some(Value::Array(items)) = v.get("findings") else {
        return Err("baseline has no \"findings\" array".to_string());
    };
    let mut entries = Vec::new();
    for (i, item) in items.iter().enumerate() {
        let field = |key: &str| -> Result<String, String> {
            match item.get(key) {
                Some(Value::Str(s)) => Ok(s.clone()),
                _ => Err(format!("baseline finding #{i} has no string {key:?}")),
            }
        };
        entries.push(BaselineEntry {
            rule: field("rule")?,
            path: field("path")?,
            snippet: field("snippet")?,
        });
    }
    Ok(entries)
}

/// Multiset-compare `findings` against `baseline`.
pub fn compare(findings: &[Finding], baseline: &[BaselineEntry]) -> BaselineDiff {
    let mut budget: BTreeMap<BaselineEntry, usize> = BTreeMap::new();
    for e in baseline {
        *budget.entry(e.clone()).or_insert(0) += 1;
    }
    let mut diff = BaselineDiff::default();
    for f in findings {
        let key = BaselineEntry::of(f);
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                diff.suppressed += 1;
            }
            _ => diff.new_findings.push(f.clone()),
        }
    }
    for (e, n) in budget {
        for _ in 0..n {
            diff.stale.push(e.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn emit_then_compare_round_trips_to_zero() {
        let findings = vec![
            finding("R4", "crates/a/src/lib.rs", 10, "x.sum::<f64>()"),
            finding("R2", "crates/b/src/lib.rs", 3, "let _ = f();"),
        ];
        let baseline = parse(&write(&findings)).expect("round trip");
        let diff = compare(&findings, &baseline);
        assert!(diff.new_findings.is_empty(), "{:?}", diff.new_findings);
        assert_eq!(diff.suppressed, 2);
        assert!(diff.stale.is_empty());
    }

    #[test]
    fn line_drift_does_not_break_the_gate_but_new_sites_do() {
        let old = vec![finding("R4", "crates/a/src/lib.rs", 10, "x.sum::<f64>()")];
        let baseline = parse(&write(&old)).expect("parses");
        // Same site, different line: still suppressed.
        let moved = vec![finding("R4", "crates/a/src/lib.rs", 42, "x.sum::<f64>()")];
        assert!(compare(&moved, &baseline).new_findings.is_empty());
        // Different snippet: new finding.
        let new = vec![finding("R4", "crates/a/src/lib.rs", 42, "y.sum::<f64>()")];
        let diff = compare(&new, &baseline);
        assert_eq!(diff.new_findings.len(), 1);
        assert_eq!(diff.stale.len(), 1);
    }

    #[test]
    fn multiset_semantics_count_duplicates() {
        // Two identical sites (same snippet text on two lines) need two
        // baseline entries — one entry does not blanket-cover the file.
        let two = vec![
            finding("R4", "crates/a/src/lib.rs", 1, "acc += x;"),
            finding("R4", "crates/a/src/lib.rs", 9, "acc += x;"),
        ];
        let one_entry = parse(&write(&two[..1])).expect("parses");
        let diff = compare(&two, &one_entry);
        assert_eq!(diff.suppressed, 1);
        assert_eq!(diff.new_findings.len(), 1);
    }

    #[test]
    fn rejects_malformed_baselines() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"version\": 2, \"findings\": []}").is_err());
        assert!(parse("{\"version\": 1}").is_err());
        assert!(parse("{\"version\": 1, \"findings\": [{\"rule\": 3}]}").is_err());
    }
}
