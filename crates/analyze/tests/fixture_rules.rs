//! Fixture-based integration tests: each rule is exercised against a
//! miniature workspace under `tests/fixtures/` containing one plain
//! violation and one allowlisted occurrence per rule, so these tests
//! pin exact finding counts, allowlist behaviour, scoping (test code,
//! binaries, blessed files), and the JSON schema.

use serde::Value;
use std::path::{Path, PathBuf};
use tsda_analyze::config::Config;
use tsda_analyze::report::Report;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_report() -> Report {
    let root = fixture_root();
    let text = std::fs::read_to_string(root.join("analyze.toml")).expect("fixture config");
    let cfg = Config::parse(&text).expect("fixture config parses");
    tsda_analyze::analyze(&root, &cfg).expect("fixture tree analyzes")
}

#[test]
fn d1_fires_on_rng_time_and_hash_and_respects_allowlist() {
    let r = fixture_report();
    let d1: Vec<_> = r.findings.iter().filter(|f| f.rule == "D1").collect();
    assert_eq!(d1.len(), 3, "{d1:?}");
    assert!(d1.iter().any(|f| f.message.contains("thread_rng")), "{d1:?}");
    assert!(d1.iter().any(|f| f.message.contains("wall-clock")), "{d1:?}");
    assert!(d1.iter().any(|f| f.message.contains("HashMap")), "{d1:?}");
    // The justified wall-clock read lands in `allowed`, not `findings`.
    let allowed: Vec<_> = r.allowed.iter().filter(|a| a.finding.rule == "D1").collect();
    assert_eq!(allowed.len(), 1, "{allowed:?}");
    assert!(allowed[0].finding.snippet.contains("allowlisted: fixture"));
    assert!(allowed[0].reason.contains("wall-clock"));
}

#[test]
fn d1_skips_wall_clock_and_hash_in_test_code() {
    let r = fixture_report();
    // The `#[cfg(test)]` module in fixture_d1 uses Instant and HashMap;
    // only the three library-code sites may fire (lines well before the
    // test module at the bottom of the file).
    for f in r.findings.iter().filter(|f| f.path.contains("fixture_d1")) {
        assert!(f.line < 20, "test-code finding leaked: {f:?}");
    }
}

#[test]
fn p1_fires_in_lib_but_not_bins_tests_or_combinators() {
    let r = fixture_report();
    let p1: Vec<_> = r.findings.iter().filter(|f| f.rule == "P1").collect();
    assert_eq!(p1.len(), 2, "{p1:?}");
    assert!(p1.iter().any(|f| f.message.contains(".unwrap()")), "{p1:?}");
    assert!(p1.iter().any(|f| f.message.contains("panic")), "{p1:?}");
    // The bin's unwrap and the test module's unwrap are out of scope.
    assert!(p1.iter().all(|f| !f.path.contains("/bin/")), "{p1:?}");
    let allowed: Vec<_> = r.allowed.iter().filter(|a| a.finding.rule == "P1").collect();
    assert_eq!(allowed.len(), 1, "{allowed:?}");
    assert!(allowed[0].finding.snippet.contains("expect"));
}

#[test]
fn u1_requires_safety_comments_and_crate_level_forbid() {
    let r = fixture_report();
    let u1: Vec<_> = r.findings.iter().filter(|f| f.rule == "U1").collect();
    assert_eq!(u1.len(), 2, "{u1:?}");
    // The undocumented unsafe block in fixture_u1 ...
    assert!(
        u1.iter().any(|f| f.path.contains("fixture_u1/") && f.message.contains("SAFETY")),
        "{u1:?}"
    );
    // ... and the missing `#![forbid(unsafe_code)]` in fixture_u1_missing.
    assert!(
        u1.iter()
            .any(|f| f.path.contains("fixture_u1_missing") && f.message.contains("forbid")),
        "{u1:?}"
    );
    // The documented block is clean; the allowlisted one is tolerated.
    let allowed: Vec<_> = r.allowed.iter().filter(|a| a.finding.rule == "U1").collect();
    assert_eq!(allowed.len(), 1, "{allowed:?}");
}

#[test]
fn f1_fires_outside_blessed_files_only() {
    let r = fixture_report();
    let f1: Vec<_> = r.findings.iter().filter(|f| f.rule == "F1").collect();
    assert_eq!(f1.len(), 1, "{f1:?}");
    assert!(f1[0].path.ends_with("fixture_f1/src/lib.rs"), "{f1:?}");
    // pool.rs is blessed: its spawn produces nothing at all.
    assert!(
        !r.findings.iter().chain(r.allowed.iter().map(|a| &a.finding)).any(|f| f.path.ends_with("pool.rs")),
        "blessed file produced output"
    );
    let allowed: Vec<_> = r.allowed.iter().filter(|a| a.finding.rule == "F1").collect();
    assert_eq!(allowed.len(), 1, "{allowed:?}");
}

#[test]
fn exact_totals_and_unused_allow_entries() {
    let r = fixture_report();
    assert_eq!(r.findings.len(), 22, "{:#?}", r.findings);
    assert_eq!(r.allowed.len(), 9, "{:#?}", r.allowed);
    // The two never.rs entries match nothing and must surface as stale.
    assert_eq!(r.unused_allow.len(), 2, "{:#?}", r.unused_allow);
    assert!(r.unused_allow.iter().all(|u| u.path.contains("never.rs")));
    assert!(r.unused_allow.iter().any(|u| u.rule == "P1"));
    assert!(r.unused_allow.iter().any(|u| u.rule == "L1"));
    assert!(!r.is_clean());
}

#[test]
fn json_schema_is_stable() {
    let r = fixture_report();
    let v = r.to_json_value();
    assert_eq!(v.get("version").and_then(Value::as_f64), Some(1.0));
    let Some(Value::Array(findings)) = v.get("findings") else {
        panic!("findings must be an array");
    };
    assert_eq!(findings.len(), 22);
    for f in findings {
        for key in ["rule", "path", "line", "message", "snippet"] {
            assert!(f.get(key).is_some(), "finding missing {key}: {f:?}");
        }
    }
    let Some(Value::Array(allowed)) = v.get("allowed") else {
        panic!("allowed must be an array");
    };
    assert_eq!(allowed.len(), 9);
    for a in allowed {
        assert!(a.get("reason").and_then(Value::as_str).is_some(), "{a:?}");
    }
    let Some(Value::Array(unused)) = v.get("unused_allow") else {
        panic!("unused_allow must be an array");
    };
    assert_eq!(unused.len(), 2);
    let summary = v.get("summary").expect("summary object");
    assert_eq!(summary.get("total").and_then(Value::as_f64), Some(22.0));
    let by_rule = summary.get("by_rule").expect("by_rule object");
    assert_eq!(by_rule.get("D1").and_then(Value::as_f64), Some(3.0));
    assert_eq!(by_rule.get("P1").and_then(Value::as_f64), Some(2.0));
    assert_eq!(by_rule.get("U1").and_then(Value::as_f64), Some(2.0));
    assert_eq!(by_rule.get("F1").and_then(Value::as_f64), Some(1.0));
    assert_eq!(by_rule.get("R1").and_then(Value::as_f64), Some(1.0));
    assert_eq!(by_rule.get("R2").and_then(Value::as_f64), Some(1.0));
    assert_eq!(by_rule.get("R3").and_then(Value::as_f64), Some(4.0));
    assert_eq!(by_rule.get("R4").and_then(Value::as_f64), Some(1.0));
    assert_eq!(by_rule.get("A1").and_then(Value::as_f64), Some(2.0));
    assert_eq!(by_rule.get("L1").and_then(Value::as_f64), Some(1.0));
    assert_eq!(by_rule.get("L2").and_then(Value::as_f64), Some(1.0));
    assert_eq!(by_rule.get("T1").and_then(Value::as_f64), Some(2.0));
    assert_eq!(by_rule.get("C1").and_then(Value::as_f64), Some(1.0));
    // The serialised text round-trips through the vendored parser.
    let parsed: Value = serde_json::from_str(&r.to_json()).expect("self-parse");
    assert_eq!(parsed.get("version").and_then(Value::as_f64), Some(1.0));
}

#[test]
fn r1_reports_the_full_cross_crate_chain() {
    let r = fixture_report();
    let r1: Vec<_> = r.findings.iter().filter(|f| f.rule == "R1").collect();
    assert_eq!(r1.len(), 1, "{r1:?}");
    let f = r1[0];
    // Pinned snapshot: the finding anchors at the panic site in crate B
    // and the message walks the chain root-first with call sites.
    assert_eq!(f.path, "crates/fixture_r1b/src/lib.rs");
    assert_eq!(f.line, 7);
    assert_eq!(
        f.message,
        "panic site (.unwrap()) reachable from request/experiment root: \
         fixture_r1a::handle (crates/fixture_r1a/src/lib.rs:10) -> \
         fixture_r1a::dispatch (crates/fixture_r1a/src/lib.rs:14) -> \
         fixture_r1b::finish"
    );
}

#[test]
fn r2_flags_discarded_workspace_results() {
    let r = fixture_report();
    let r2: Vec<_> = r.findings.iter().filter(|f| f.rule == "R2").collect();
    assert_eq!(r2.len(), 1, "{r2:?}");
    assert!(r2[0].path.ends_with("fixture_r1a/src/lib.rs"), "{r2:?}");
    assert!(r2[0].message.contains("`save`"), "{r2:?}");
    assert!(r2[0].snippet.contains("let _ = save()"), "{r2:?}");
}

#[test]
fn r3_reports_allocations_reached_from_the_tagged_fn() {
    let r = fixture_report();
    let r3: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "R3" && f.path.contains("fixture_r1a"))
        .collect();
    assert_eq!(r3.len(), 2, "{r3:?}");
    // Both sites sit in the untagged transitive callee; the chain names
    // the tagged root.
    for f in &r3 {
        assert!(f.message.contains("fixture_r1a::hot_entry"), "{f:?}");
        assert!(f.message.contains("fixture_r1a::helper"), "{f:?}");
    }
    assert!(r3.iter().any(|f| f.message.contains("(Vec::new)")), "{r3:?}");
    assert!(r3.iter().any(|f| f.message.contains("(.push())")), "{r3:?}");
}

#[test]
fn r3_narrows_dyn_calls_to_coerced_implementors() {
    let r = fixture_report();
    let r3: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "R3" && f.path.contains("fixture_dyn"))
        .collect();
    // Only Fast is coerced into the `Box<dyn Step>` slot in non-test
    // code, so the hot root reaches Fast::apply's two allocations and
    // nothing in Slow::apply (its identical sites stay silent).
    assert_eq!(r3.len(), 2, "{r3:?}");
    for f in &r3 {
        assert!(f.message.contains("fixture_dyn::drive"), "{f:?}");
        assert!(f.message.contains("Fast::apply"), "{f:?}");
        assert!(!f.message.contains("Slow"), "{f:?}");
    }
    assert!(r3.iter().any(|f| f.message.contains("(Vec::new)")), "{r3:?}");
    assert!(r3.iter().any(|f| f.message.contains("(.push())")), "{r3:?}");
}

#[test]
fn r3v2_clears_allocations_that_escape_into_the_out_param() {
    let r = fixture_report();
    // fixture_dyn::fill is hot and allocates (vec! + .extend()), but
    // the buffer provably flows into the caller's &mut out-param, so
    // the escape analysis clears both sites.
    assert!(
        !r.findings
            .iter()
            .chain(r.allowed.iter().map(|a| &a.finding))
            .any(|f| f.rule == "R3" && f.message.contains("fill")),
        "escaping allocation was flagged: {:#?}",
        r.findings
    );
}

#[test]
fn a1_bans_hot_allocations_outside_the_scratch_arena() {
    let r = fixture_report();
    let a1: Vec<_> = r.findings.iter().filter(|f| f.rule == "A1").collect();
    assert_eq!(a1.len(), 2, "{a1:?}");
    // The escaping copy in the root itself: R3v2 clears it (it flows
    // into encode's argument) but A1 still bans it.
    assert!(
        a1.iter().any(|f| f.message.contains("scratch-discipline violation (.to_vec())")
            && f.message.contains("fixture_a1::submit")),
        "{a1:?}"
    );
    // The format! one hop down, with the chain from the hot root.
    assert!(
        a1.iter().any(|f| f.message.contains("scratch-discipline violation (format!)")
            && f.message.contains("fixture_a1::encode")),
        "{a1:?}"
    );
    // Scratch-routed sites and the arena's own methods stay silent.
    assert!(
        !a1.iter().any(|f| f.message.contains("with_capacity")),
        "scratch-approved or arena-owned site flagged: {a1:?}"
    );
    // The boxed return is allowlisted, not a finding.
    let allowed: Vec<_> = r.allowed.iter().filter(|a| a.finding.rule == "A1").collect();
    assert_eq!(allowed.len(), 1, "{allowed:?}");
    assert!(allowed[0].finding.message.contains("Box::new"), "{allowed:?}");
    assert!(allowed[0].finding.snippet.contains("allowlisted: fixture"));
}

#[test]
fn r4_flags_bare_sums_and_tolerates_the_allowlisted_scan() {
    let r = fixture_report();
    let r4: Vec<_> = r.findings.iter().filter(|f| f.rule == "R4").collect();
    assert_eq!(r4.len(), 1, "{r4:?}");
    assert!(r4[0].message.contains("sum_stable"), "{r4:?}");
    assert!(r4[0].snippet.contains(".sum::<f64>()"), "{r4:?}");
    let allowed: Vec<_> = r.allowed.iter().filter(|a| a.finding.rule == "R4").collect();
    assert_eq!(allowed.len(), 1, "{allowed:?}");
    assert!(allowed[0].finding.snippet.contains("acc += v"), "{allowed:?}");
    assert!(allowed[0].reason.contains("prefix scan"), "{allowed:?}");
}

#[test]
fn l1_reports_the_cycle_once_with_both_chains() {
    let r = fixture_report();
    let l1: Vec<_> = r.findings.iter().filter(|f| f.rule == "L1").collect();
    assert_eq!(l1.len(), 1, "{l1:?}");
    let f = l1[0];
    // Pinned snapshot: the cycle is reported once, anchored at the
    // a -> b edge (the call into the helper that takes `b`), and the
    // message carries both full chains — the interprocedural arm
    // through grab_b and the direct arm in ba.
    assert_eq!(f.path, "crates/fixture_l1/src/lib.rs");
    assert_eq!(f.line, 19);
    assert_eq!(
        f.message,
        "lock-order cycle: `a` -> `b` -> `a`; \
         acquires `b` while holding `a` via fixture_l1::Pair::ab \
         (crates/fixture_l1/src/lib.rs:19) -> fixture_l1::Pair::grab_b; \
         acquires `a` while holding `b` via fixture_l1::Pair::ba \
         (crates/fixture_l1/src/lib.rs:33)"
    );
}

#[test]
fn l2_flags_guard_across_blocking_and_tolerates_the_allowlisted_sleep() {
    let r = fixture_report();
    let l2: Vec<_> = r.findings.iter().filter(|f| f.rule == "L2").collect();
    assert_eq!(l2.len(), 1, "{l2:?}");
    assert_eq!(l2[0].line, 40);
    assert_eq!(
        l2[0].message,
        "`a` guard (acquired line 39) is held across blocking `wait` — \
         take what you need and drop the guard before blocking"
    );
    let allowed: Vec<_> = r.allowed.iter().filter(|a| a.finding.rule == "L2").collect();
    assert_eq!(allowed.len(), 1, "{allowed:?}");
    assert!(allowed[0].finding.message.contains("blocking `sleep`"), "{allowed:?}");
    assert!(allowed[0].finding.snippet.contains("allowlisted: fixture"));
}

#[test]
fn t1_and_c1_flag_unbounded_wire_lengths_and_clear_on_named_bounds() {
    let r = fixture_report();
    let t1: Vec<_> = r.findings.iter().filter(|f| f.rule == "T1").collect();
    let c1: Vec<_> = r.findings.iter().filter(|f| f.rule == "C1").collect();
    assert_eq!((t1.len(), c1.len()), (2, 1), "{t1:?} {c1:?}");
    // decode_unbounded: the cast plus both sized allocations.
    assert!(c1[0].snippet.contains("self.u32() as usize"), "{c1:?}");
    assert!(c1[0].message.contains("lossy `as` cast on wire-derived"), "{c1:?}");
    assert!(t1.iter().any(|f| f.message.contains("`n` reaches `with_capacity`")), "{t1:?}");
    assert!(t1.iter().any(|f| f.message.contains("`n` reaches `resize`")), "{t1:?}");
    // decode_bounded (lines 38..46) compares against MAX_ITEMS and must
    // stay silent for both rules.
    assert!(
        t1.iter().chain(c1.iter()).all(|f| !(38..=46).contains(&f.line)),
        "bounded decoder flagged: {t1:?} {c1:?}"
    );
    // decode_allowlisted lands in `allowed` under both rules.
    for rule in ["T1", "C1"] {
        let allowed: Vec<_> = r.allowed.iter().filter(|a| a.finding.rule == rule).collect();
        assert_eq!(allowed.len(), 1, "{rule}: {allowed:?}");
        assert!(allowed[0].finding.snippet.contains("allowlisted: fixture"));
    }
}

#[test]
fn findings_are_sorted_and_deduplicated() {
    let r = fixture_report();
    let keys: Vec<_> = r.findings.iter().map(|f| (f.path.clone(), f.line, f.rule)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(keys, sorted, "findings must be sorted by (path, line, rule) and unique");
}
