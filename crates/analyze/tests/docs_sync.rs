//! The README's rule table must be exactly `docs::readme_table()`.
//!
//! `--explain`, the SARIF rule metadata, and the README all document
//! the rules; the first two render from `docs::RULE_DOCS` at runtime,
//! so only the README can drift. This test closes that gap: the block
//! between the `rule-table:begin`/`rule-table:end` markers has to be
//! byte-identical to the rendered table.

use std::path::Path;

#[test]
fn readme_rule_table_matches_docs_module() {
    let readme_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    let readme = std::fs::read_to_string(&readme_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", readme_path.display()));

    let begin = "<!-- rule-table:begin";
    let end = "<!-- rule-table:end -->";
    let start = readme
        .find(begin)
        .expect("README is missing the rule-table:begin marker");
    let start = readme[start..]
        .find('\n')
        .map(|n| start + n + 1)
        .expect("marker line unterminated");
    let stop = readme.find(end).expect("README is missing the rule-table:end marker");
    assert!(start < stop, "rule-table markers out of order");

    let in_readme = &readme[start..stop];
    let rendered = tsda_analyze::docs::readme_table();
    assert_eq!(
        in_readme, rendered,
        "README rule table drifted from docs::RULE_DOCS — \
         regenerate the block between the rule-table markers from \
         tsda_analyze::docs::readme_table()"
    );
}

#[test]
fn every_documented_rule_explains() {
    for doc in tsda_analyze::docs::RULE_DOCS {
        let text = tsda_analyze::docs::explain(doc.id)
            .unwrap_or_else(|| panic!("{} has no --explain text", doc.id));
        assert!(text.contains(doc.id), "{} explain text lacks its own id", doc.id);
        assert!(text.contains("[[allow]]"), "{} explain text lacks allowlist guidance", doc.id);
    }
}
