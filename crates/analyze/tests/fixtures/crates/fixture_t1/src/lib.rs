#![forbid(unsafe_code)]
//! T1/C1 fixture: wire-read lengths reaching allocation sites with and
//! without a named bound check, plus allowlisted occurrences.

/// Fixture cap the bounded decoder compares against.
pub const MAX_ITEMS: usize = 1024;

/// Minimal reader shaped like the real codec's `ByteReader`.
pub struct Wire {
    buf: Vec<u8>,
    at: usize,
}

impl Wire {
    pub fn new(buf: Vec<u8>) -> Self {
        Self { buf, at: 0 }
    }

    /// Wire source: every zero-arg `.u32()` read is tainted in T1 scope.
    pub fn u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.buf[self.at..self.at + 4]);
        self.at += 4;
        u32::from_le_bytes(raw)
    }

    /// Unbounded: the cast is a C1 finding, the two sized allocations
    /// it feeds are T1 findings.
    pub fn decode_unbounded(&mut self) -> Vec<u64> {
        let n = self.u32() as usize;
        let mut out = Vec::with_capacity(n);
        out.resize(n, 0);
        out
    }

    /// Bounded: comparing against the named cap clears the taint, so
    /// neither the cast nor the allocation fires.
    pub fn decode_bounded(&mut self) -> Vec<u64> {
        let n = self.u32();
        if n as usize > MAX_ITEMS {
            return Vec::new();
        }
        let n = n as usize;
        vec![0; n]
    }

    /// Unbounded but justified: silenced by the fixture allowlist.
    pub fn decode_allowlisted(&mut self) -> Vec<u64> {
        let n = self.u32() as usize; // allowlisted: fixture
        vec![0; n] // allowlisted: fixture
    }
}
