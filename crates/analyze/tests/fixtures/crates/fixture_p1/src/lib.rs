// P1 fixture: panic sites in library code. Never compiled — scanned only.
#![forbid(unsafe_code)]

pub fn unwrap_violation(o: Option<u8>) -> u8 {
    o.unwrap()
}

pub fn macro_violation() {
    panic!("boom");
}

pub fn tolerated_expect(o: Option<u8>) -> u8 {
    o.expect("fixture invariant") // allowlisted: fixture
}

pub fn combinators_are_fine(o: Option<u8>) -> u8 {
    o.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_test_code_is_not_flagged() {
        assert_eq!(Some(1u8).unwrap(), 1);
    }
}
