// Bin fixture: P1 does not apply to binaries (a CLI may unwrap at startup).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    println!("{}", args.first().unwrap());
}
