#![forbid(unsafe_code)]
//! Interprocedural-rule fixture, crate B: holds the panic site the R1
//! root in `fixture_r1a` reaches cross-crate.

/// The panic site at the end of the fixture chain.
pub fn finish() {
    step().unwrap();
}

fn step() -> Result<(), String> {
    Ok(())
}
