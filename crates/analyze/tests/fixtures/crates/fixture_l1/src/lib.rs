#![forbid(unsafe_code)]
//! L1/L2 fixture: a deliberate two-lock ordering cycle (one arm through
//! an interprocedural summary, one direct) plus a guard held across a
//! blocking call, with one allowlisted occurrence.

use std::process::Child;
use std::sync::Mutex;

pub struct Pair {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

impl Pair {
    /// Takes `a`, then reaches `b` through a helper: the a -> b edge
    /// the summary fixpoint must see through.
    pub fn ab(&self) -> u32 {
        let guard = self.a.lock().unwrap();
        let other = self.grab_b();
        *guard + other
    }

    /// The indirection behind the a -> b edge.
    pub fn grab_b(&self) -> u32 {
        let guard = self.b.lock().unwrap();
        *guard
    }

    /// Takes `b`, then `a` directly in the same scope: the b -> a edge
    /// that closes the cycle.
    pub fn ba(&self) -> u32 {
        let guard = self.b.lock().unwrap();
        let inner = self.a.lock().unwrap();
        *guard + *inner
    }

    /// Holds the `a` guard across a blocking wait: the L2 shape.
    pub fn hold_and_block(&self, child: &mut Child) -> u32 {
        let guard = self.a.lock().unwrap();
        let _status = child.wait();
        *guard
    }

    /// Same shape, silenced by the fixture allowlist entry.
    pub fn hold_allowed(&self) -> u32 {
        let guard = self.a.lock().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1)); // allowlisted: fixture
        *guard
    }
}
