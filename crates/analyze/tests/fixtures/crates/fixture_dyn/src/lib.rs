#![forbid(unsafe_code)]
//! Trait-object narrowing + R3v2 escape-clearing fixture.
//!
//! `drive` is hot and calls through the `Box<dyn Step>` slot in
//! `Runner`. Non-test code only ever coerces `Fast` into the slot, so
//! call-graph narrowing must reach `Fast::apply`'s allocations and
//! must NOT reach `Slow::apply`'s. `fill` pins R3v2: its staging
//! allocation provably flows into the caller's `&mut` out-param, so
//! the escape analysis clears it even on the hot path.

pub trait Step {
    fn apply(&self, x: usize) -> usize;
}

pub struct Fast;
pub struct Slow;

impl Step for Fast {
    fn apply(&self, x: usize) -> usize {
        // A dead scratch buffer: pure churn the escape analysis must
        // NOT clear (it never flows to the result or an out-param).
        let mut tmp = Vec::new();
        tmp.push(x);
        x + 1
    }
}

impl Step for Slow {
    fn apply(&self, x: usize) -> usize {
        let mut tmp = Vec::new();
        tmp.push(x);
        x + 1
    }
}

/// Holds the dyn slot the narrowing keys on.
pub struct Runner {
    step: Box<dyn Step>,
}

/// The only non-test coercion into the slot: admits `Fast`, not `Slow`.
pub fn build() -> Runner {
    Runner { step: Box::new(Fast) }
}

/// R3 root: reaches `Fast::apply` through the dyn slot.
#[doc(alias = "tsda::hot")]
pub fn drive(r: &Runner, x: usize) -> usize {
    r.step.apply(x)
}

/// R3v2: the staging buffer flows into the caller's out-param, so the
/// escape analysis clears both the `vec!` and the `.extend()`.
#[doc(alias = "tsda::hot")]
pub fn fill(out: &mut Vec<usize>, n: usize) {
    let staged = vec![0usize; n];
    out.extend(staged);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_is_only_coerced_in_tests() {
        // A test-only coercion must stay invisible to the narrowing.
        let r = Runner { step: Box::new(Slow) };
        assert_eq!(drive(&r, 1), 1);
    }
}
