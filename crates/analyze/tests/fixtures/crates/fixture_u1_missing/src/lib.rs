// U1 fixture: a crate with zero unsafe code that fails to declare
// `#![forbid(unsafe_code)]` — the crate-level half of the rule.
pub fn clean() {}
