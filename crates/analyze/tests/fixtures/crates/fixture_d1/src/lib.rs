// D1 fixture: nondeterminism sources. Never compiled — scanned only.
#![forbid(unsafe_code)]

pub fn rng_violation() {
    let _rng = rand::thread_rng();
}

pub fn time_violation() {
    let _t = std::time::Instant::now();
}

pub fn hash_violation() {
    let _m: std::collections::HashMap<u8, u8> = std::collections::HashMap::new();
}

pub fn tolerated_time() {
    let _t = std::time::Instant::now(); // allowlisted: fixture
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_test_code_is_not_flagged() {
        let _t = std::time::Instant::now();
        let _m: std::collections::HashMap<u8, u8> = std::collections::HashMap::new();
    }
}
