#![forbid(unsafe_code)]
//! Interprocedural-rule fixture, crate A: the configured R1 root
//! (`handle`) reaches the panic in `fixture_r1b` through two hops, so
//! the integration test can pin the full reported chain. Also hosts
//! one violation each for R2, R3, and R4, plus an allowlisted R4
//! accumulation.

/// R1 root (configured in the fixture analyze.toml).
pub fn handle() {
    dispatch();
}

fn dispatch() {
    tsda_fixture_r1b::finish();
}

/// A workspace `Result` producer for the R2 fixture.
pub fn save() -> Result<(), String> {
    Ok(())
}

/// R2: discards a workspace `Result` via `let _ =`.
pub fn sloppy() {
    let _ = save();
}

/// R3 root: tagged hot, reaches the allocations in `helper`.
#[doc(alias = "tsda::hot")]
pub fn hot_entry(n: usize) {
    helper(n);
}

fn helper(n: usize) {
    let mut v = Vec::new();
    v.push(n);
}

/// R4: a bare float reduction that should route through sum_stable.
pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

/// R4, tolerated: a prefix scan whose partial sums are the result.
pub fn cumsum(xs: &[f64]) -> Vec<f64> {
    let mut acc = 0.0f64;
    let mut out = Vec::with_capacity(xs.len());
    for &v in xs {
        acc += v; // allowlisted: fixture
        out.push(acc);
    }
    out
}
