// F1 fixture: raw threading outside the blessed pool file.
#![forbid(unsafe_code)]

pub fn spawn_violation() {
    std::thread::spawn(|| ());
}

pub fn tolerated_spawn() {
    std::thread::spawn(|| ()); // allowlisted: fixture
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_in_test_code_are_not_flagged() {
        std::thread::scope(|_| ());
    }
}
