// The blessed file: raw threading is the whole point here, mirroring
// `crates/core/src/parallel.rs` in the real workspace.
pub fn blessed_parallelism() {
    let handle = std::thread::spawn(|| ());
    let _ = handle.join();
}
