#![forbid(unsafe_code)]
//! A1 scratch-discipline fixture (the crate is listed in
//! `[rules.A1].crates`).
//!
//! Pins the four behaviours of the rule: banned allocations in
//! hot-reachable fns are findings even when R3v2's escape analysis
//! clears them (the copies escape into return values); sites routed
//! through a `Scratch`-typed receiver or arena are approved; the
//! arena's own methods are exempt; and an `[[allow]]` entry is
//! honoured like any other rule.

/// Per-worker arena: its own methods may allocate (that is its job).
pub struct ReqScratch {
    pub staging: Vec<f64>,
}

impl ReqScratch {
    /// Exempt: `Scratch`-owned methods are where allocation lives.
    pub fn grow(&mut self, n: usize) {
        self.staging = Vec::with_capacity(n);
    }
}

/// A1 root: the `.to_vec()` copy escapes into `encode`'s argument so
/// R3v2 clears it, but A1 still bans it — serving crates route
/// buffers through the arena instead of allocating fresh ones.
#[doc(alias = "tsda::hot")]
pub fn submit(scratch: &mut ReqScratch, xs: &[f64]) -> usize {
    scratch.staging.extend_from_slice(xs);
    let copy = xs.to_vec();
    encode(&copy)
}

fn encode(xs: &[f64]) -> usize {
    let label = format!("{}", xs.len());
    label.len()
}

/// Approved: the allocation lands in the scratch arena.
#[doc(alias = "tsda::hot")]
pub fn stage(scratch: &mut ReqScratch, n: usize) {
    if scratch.staging.capacity() < n {
        scratch.staging = Vec::with_capacity(n);
    }
}

/// Allowlisted in the fixture config.
#[doc(alias = "tsda::hot")]
pub fn legacy(xs: &[f64]) -> usize {
    let boxed = Box::new(xs.len()); // allowlisted: fixture
    *boxed
}
