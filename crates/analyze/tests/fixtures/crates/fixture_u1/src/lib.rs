// U1 fixture: unsafe hygiene. Never compiled — scanned only.

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: fixture; the caller guarantees `p` is valid and aligned.
    unsafe { *p }
}

pub fn undocumented_violation(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn tolerated(p: *const u8) -> u8 {
    unsafe { *p } // allowlisted: fixture
}
