//! The analyzer's acceptance gate, run as an ordinary test so `cargo
//! test` alone catches a regression: the real workspace must be clean
//! under the checked-in `analyze.toml`, and the allowlist must carry
//! no stale entries.

use std::path::Path;

#[test]
fn workspace_is_clean_under_the_checked_in_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = tsda_analyze::analyze_with_default_config(&root).expect("analysis runs");
    assert!(
        report.is_clean(),
        "unallowlisted findings — fix them or add a justified [[allow]] entry:\n{}",
        report.to_text(false)
    );
    assert!(
        report.unused_allow.is_empty(),
        "stale allowlist entries — delete them from analyze.toml:\n{}",
        report.to_text(false)
    );
    // Every allowlisted site must still carry its justification.
    for a in &report.allowed {
        assert!(!a.reason.trim().is_empty(), "empty reason for {:?}", a.finding.path);
    }
}
