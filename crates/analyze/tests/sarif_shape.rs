//! Pins the SARIF output shape to the minimal subset GitHub's
//! code-scanning upload action requires: `$schema`/`version`,
//! `runs[].tool.driver.name`, per-rule metadata, `results[].message`,
//! `results[].locations[].physicalLocation`, and `suppressions` on
//! allowlisted findings. `sarif.rs` promises this test exists.

use serde::Value;
use tsda_analyze::docs::RULE_DOCS;
use tsda_analyze::report::{AllowedFinding, Report};
use tsda_analyze::rules::Finding;
use tsda_analyze::sarif::to_sarif;

/// Walk an object path, panicking with the missing key on a miss.
fn at<'a>(v: &'a Value, path: &[&str]) -> &'a Value {
    let mut cur = v;
    for key in path {
        cur = cur.get(key).unwrap_or_else(|| panic!("missing key {key:?} in {path:?}"));
    }
    cur
}

fn arr<'a>(v: &'a Value, path: &[&str]) -> &'a [Value] {
    match at(v, path) {
        Value::Array(items) => items,
        other => panic!("{path:?} is not an array: {other:?}"),
    }
}

fn str_at<'a>(v: &'a Value, path: &[&str]) -> &'a str {
    at(v, path).as_str().unwrap_or_else(|| panic!("{path:?} is not a string"))
}

fn sample_report() -> Report {
    Report {
        findings: vec![Finding {
            rule: "R1",
            path: "crates/demo/src/lib.rs".into(),
            line: 7,
            message: "panic site reachable from serve::handle_line".into(),
            snippet: "x.unwrap()".into(),
        }],
        allowed: vec![AllowedFinding {
            finding: Finding {
                rule: "R3",
                path: "crates/demo/src/hot.rs".into(),
                line: 3,
                message: "allocation (vec!) on a hot path".into(),
                snippet: "let v = vec![0.0; n];".into(),
            },
            reason: "output buffer, sized once per call".into(),
        }],
        unused_allow: Vec::new(),
        timings: Vec::new(),
    }
}

#[test]
fn sarif_shape_is_pinned() {
    let text = to_sarif(&sample_report());
    let v: Value = serde_json::from_str(&text).expect("SARIF output is valid JSON");

    assert_eq!(str_at(&v, &["version"]), "2.1.0");
    assert!(str_at(&v, &["$schema"]).contains("sarif-schema-2.1.0"), "schema URI missing");

    let runs = arr(&v, &["runs"]);
    assert_eq!(runs.len(), 1, "exactly one run");
    let driver = at(&runs[0], &["tool", "driver"]);
    assert_eq!(str_at(driver, &["name"]), "tsda-analyze");

    // Rule metadata renders from the shared docs table — all of it.
    let rules = arr(driver, &["rules"]);
    let ids: Vec<&str> = rules.iter().map(|r| str_at(r, &["id"])).collect();
    assert_eq!(ids, RULE_DOCS.iter().map(|d| d.id).collect::<Vec<_>>());
    for r in rules {
        assert!(!str_at(r, &["shortDescription", "text"]).is_empty());
        assert!(!str_at(r, &["help", "text"]).is_empty());
    }

    // Findings first, then allowlisted findings with suppressions.
    let results = arr(&runs[0], &["results"]);
    assert_eq!(results.len(), 2, "one finding + one allowlisted");

    let hard = &results[0];
    assert_eq!(str_at(hard, &["ruleId"]), "R1");
    assert_eq!(str_at(hard, &["level"]), "error");
    assert_eq!(
        str_at(hard, &["message", "text"]),
        "panic site reachable from serve::handle_line"
    );
    let loc = at(&arr(hard, &["locations"])[0], &["physicalLocation"]);
    assert_eq!(str_at(loc, &["artifactLocation", "uri"]), "crates/demo/src/lib.rs");
    assert_eq!(str_at(loc, &["artifactLocation", "uriBaseId"]), "%SRCROOT%");
    assert_eq!(at(loc, &["region", "startLine"]).as_f64(), Some(7.0));
    assert!(hard.get("suppressions").is_none(), "hard findings carry no suppression");

    let soft = &results[1];
    assert_eq!(str_at(soft, &["ruleId"]), "R3");
    let sup = arr(soft, &["suppressions"]);
    assert_eq!(str_at(&sup[0], &["kind"]), "external");
    assert_eq!(str_at(&sup[0], &["justification"]), "output buffer, sized once per call");
}

#[test]
fn real_tree_sarif_is_valid_and_fully_suppressed() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = tsda_analyze::analyze_with_default_config(&root).expect("analysis runs");
    let v: Value =
        serde_json::from_str(&to_sarif(&report)).expect("real-tree SARIF is valid JSON");
    let results = arr(&v, &["runs"]);
    let results = arr(&results[0], &["results"]);
    assert_eq!(
        results.len(),
        report.findings.len() + report.allowed.len(),
        "every finding (hard or allowlisted) appears exactly once"
    );
    for r in results {
        let id = str_at(r, &["ruleId"]);
        assert!(RULE_DOCS.iter().any(|d| d.id == id), "undocumented rule {id} in SARIF");
        let loc = at(&arr(r, &["locations"])[0], &["physicalLocation"]);
        assert!(str_at(loc, &["artifactLocation", "uri"]).starts_with("crates/"));
    }
}
