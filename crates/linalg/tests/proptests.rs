//! Property-based tests of the linear-algebra invariants.

use proptest::prelude::*;
use tsda_linalg::cholesky::{cholesky, cholesky_jittered, solve_spd};
use tsda_linalg::cov::{covariance_matrix, shrinkage_covariance};
use tsda_linalg::matrix::Matrix;
use tsda_linalg::solve::RidgeLoocv;
use tsda_linalg::{Svd, SymmetricEig};

/// Strategy: an n×m matrix with bounded entries.
fn matrix(n: usize, m: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, n * m)
        .prop_map(move |data| Matrix::from_vec(n, m, data))
}

/// Strategy: a symmetric positive-definite matrix `BᵀB + I`.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(|b| {
        let mut a = b.gram();
        a.scale(1.0 / (a.max_abs().max(1.0))); // keep conditioning sane
        a.add_diagonal(1.0);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-6 * (1.0 + left.max_abs())));
    }

    #[test]
    fn transpose_reverses_product(a in matrix(3, 4), b in matrix(4, 3)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn matmul_into_matches_naive_triple_loop(
        (m, k, n) in (1usize..70, 1usize..150, 1usize..40),
        data in proptest::collection::vec(-10.0f64..10.0, 70 * 150 + 150 * 40),
    ) {
        // Shapes deliberately cross the kernel's MC/KC tile boundaries
        // and its 8×8 micro-kernel remainders.
        let a = Matrix::from_vec(m, k, data[..m * k].to_vec());
        let b = Matrix::from_vec(k, n, data[70 * 150..70 * 150 + k * n].to_vec());
        let tiled = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        prop_assert!(tiled.approx_eq(&naive, 1e-9 * (1.0 + naive.max_abs())));
        let mut into = Matrix::zeros(m, n);
        a.matmul_into(&b, &mut into);
        prop_assert!(into.approx_eq(&tiled, 0.0)); // same kernel, same bits
    }

    #[test]
    fn cholesky_reconstructs(a in spd(4)) {
        let l = cholesky(&a).expect("SPD by construction");
        let back = l.matmul(&l.transpose());
        prop_assert!(back.approx_eq(&a, 1e-8 * (1.0 + a.max_abs())));
    }

    #[test]
    fn solve_spd_inverts_matvec(a in spd(4), x in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let b = a.matvec(&x);
        let solved = solve_spd(&a, &b).expect("SPD");
        for (s, t) in solved.iter().zip(&x) {
            prop_assert!((s - t).abs() < 1e-6 * (1.0 + t.abs()), "{solved:?} vs {x:?}");
        }
    }

    #[test]
    fn eigen_reconstructs_and_sorts(a in spd(5)) {
        let e = SymmetricEig::new(&a);
        let back = e.reconstruct(|l| l);
        prop_assert!(back.approx_eq(&a, 1e-7 * (1.0 + a.max_abs())));
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        // SPD ⇒ all eigenvalues ≥ 1 (we added I).
        prop_assert!(e.values.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn svd_singular_values_match_eigenvalues(a in matrix(5, 3)) {
        // σ(A)² are the eigenvalues of AᵀA.
        let svd = Svd::new(&a);
        let eig = SymmetricEig::new(&a.gram());
        for (s, l) in svd.singular_values.iter().zip(&eig.values) {
            prop_assert!((s * s - l.max(0.0)).abs() < 1e-6 * (1.0 + l.abs()), "{s} vs {l}");
        }
    }

    #[test]
    fn covariance_is_psd(x in matrix(8, 4)) {
        let c = covariance_matrix(&x);
        let e = SymmetricEig::new(&c);
        prop_assert!(e.values.iter().all(|&l| l > -1e-9), "{:?}", e.values);
    }

    #[test]
    fn shrinkage_always_factors(x in matrix(3, 6)) {
        // Fewer samples than dimensions: raw covariance is singular but
        // the shrunk one must always admit a (jittered) Cholesky.
        let sc = shrinkage_covariance(&x);
        prop_assert!((0.0..=1.0).contains(&sc.intensity));
        prop_assert!(cholesky_jittered(&sc.covariance, 14).is_ok());
    }

    #[test]
    fn ridge_loocv_never_beats_zero_training_error_claim(
        data in proptest::collection::vec(-1.0f64..1.0, 12 * 3),
        targets in proptest::collection::vec(-1.0f64..1.0, 12),
    ) {
        // Fitting must succeed and produce finite weights/intercepts for
        // any bounded data.
        let x = Matrix::from_vec(12, 3, data);
        let y = Matrix::from_vec(12, 1, targets);
        let sol = RidgeLoocv::default().fit(&x, &y);
        prop_assert!(sol.weights.as_slice().iter().all(|v| v.is_finite()));
        prop_assert!(sol.intercepts.iter().all(|v| v.is_finite()));
        prop_assert!(sol.loocv_mse.is_finite() && sol.loocv_mse >= 0.0);
    }
}
