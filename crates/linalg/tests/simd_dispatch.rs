//! Property tests of the SIMD dispatch contract: every kernel in
//! `tsda_linalg::simd` must produce **bit-identical** results at every
//! dispatch level the host supports (Scalar always; Avx2/Avx512 when
//! detected). There is no approximate tier here — element-wise kernels
//! mirror the unfused scalar expression exactly, reductions share one
//! fixed striped tree, and the GEMM micro-kernels fuse identically
//! (`mul_add` ↔ `vfmadd`) per element — so equality is exact on every
//! path. The documented FMA *tolerance* (EXPERIMENTS.md) is about the
//! SIMD gemm vs the pre-SIMD unfused code, never between dispatch
//! levels.
//!
//! Run under `TSDA_SIMD=scalar` this still passes (the level list
//! collapses to `[Scalar]`); the determinism CI job runs it both ways.

use proptest::prelude::*;
use tsda_linalg::simd::{self, SimdLevel};

/// Every level the host can actually execute.
fn levels() -> Vec<SimdLevel> {
    let mut ls = vec![SimdLevel::Scalar];
    for l in [SimdLevel::Avx2, SimdLevel::Avx512] {
        if simd::hw_level() >= l {
            ls.push(l);
        }
    }
    ls
}

/// Assert every pair of per-level outputs is bitwise equal.
fn assert_bits_f64(results: &[(SimdLevel, Vec<f64>)]) -> Result<(), TestCaseError> {
    for pair in results.windows(2) {
        let (la, a) = &pair[0];
        let (lb, b) = &pair[1];
        prop_assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            prop_assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{:?} vs {:?} differ at [{}]: {} vs {}",
                la,
                lb,
                i,
                x,
                y
            );
        }
    }
    Ok(())
}

fn assert_bits_f32(results: &[(SimdLevel, Vec<f32>)]) -> Result<(), TestCaseError> {
    for pair in results.windows(2) {
        let (la, a) = &pair[0];
        let (lb, b) = &pair[1];
        prop_assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            prop_assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{:?} vs {:?} differ at [{}]: {} vs {}",
                la,
                lb,
                i,
                x,
                y
            );
        }
    }
    Ok(())
}

/// An f64 vector with NaN holes (the augmenters' missing values)
/// punched wherever the paired mask draw lands on 0.
fn vec_with_nans(len: core::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    let max = len.end;
    (
        proptest::collection::vec(-100.0f64..100.0, len),
        proptest::collection::vec(0u8..10, max),
    )
        .prop_map(|(vals, mask)| {
            vals.into_iter()
                .zip(mask)
                .map(|(v, m)| if m == 0 { f64::NAN } else { v })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn axpy_f64_levels_agree(
        y0 in proptest::collection::vec(-100.0f64..100.0, 0..67),
        x_seed in proptest::collection::vec(-100.0f64..100.0, 67),
        a in -10.0f64..10.0,
    ) {
        let x = &x_seed[..y0.len()];
        let runs: Vec<_> = levels().into_iter().map(|l| {
            let mut y = y0.clone();
            simd::axpy_f64_with(l, &mut y, x, a);
            (l, y)
        }).collect();
        assert_bits_f64(&runs)?;
    }

    #[test]
    fn axpy_f32_levels_agree(
        y0 in proptest::collection::vec(-100.0f32..100.0, 0..67),
        x_seed in proptest::collection::vec(-100.0f32..100.0, 67),
        a in -10.0f32..10.0,
    ) {
        let x = &x_seed[..y0.len()];
        let runs: Vec<_> = levels().into_iter().map(|l| {
            let mut y = y0.clone();
            simd::axpy_f32_with(l, &mut y, x, a);
            (l, y)
        }).collect();
        assert_bits_f32(&runs)?;
    }

    #[test]
    fn masked_scale_and_add_levels_agree(
        v0 in vec_with_nans(0..67),
        d_seed in proptest::collection::vec(-5.0f64..5.0, 67),
        factor in -3.0f64..3.0,
    ) {
        let d = &d_seed[..v0.len()];
        let scaled: Vec<_> = levels().into_iter().map(|l| {
            let mut v = v0.clone();
            simd::scale_masked_f64_with(l, &mut v, factor);
            (l, v)
        }).collect();
        // NaN payloads must survive untouched, so compare raw bits.
        assert_bits_f64(&scaled)?;
        let added: Vec<_> = levels().into_iter().map(|l| {
            let mut v = v0.clone();
            simd::add_masked_f64_with(l, &mut v, d);
            (l, v)
        }).collect();
        assert_bits_f64(&added)?;
    }

    #[test]
    fn dtw_row_kernels_levels_agree(
        acc0 in proptest::collection::vec(-10.0f64..10.0, 1..67),
        ys_seed in proptest::collection::vec(-10.0f64..10.0, 67),
        x in -10.0f64..10.0,
    ) {
        let ys = &ys_seed[..acc0.len()];
        let runs: Vec<_> = levels().into_iter().map(|l| {
            let mut acc = acc0.clone();
            simd::sq_diff_acc_f64_with(l, &mut acc, x, ys);
            (l, acc)
        }).collect();
        assert_bits_f64(&runs)?;
        // min2 over the same operands (shifted views as in the DTW
        // prepass).
        let n = acc0.len();
        if n > 1 {
            let mins: Vec<_> = levels().into_iter().map(|l| {
                let mut out = vec![0.0; n - 1];
                simd::min2_f64_with(l, &mut out, &acc0[1..], &acc0[..n - 1]);
                (l, out)
            }).collect();
            assert_bits_f64(&mins)?;
        }
    }

    #[test]
    fn lerp_resample_levels_agree_and_match_lerp_at(
        src in proptest::collection::vec(-50.0f64..50.0, 1..40),
        new_len in 1usize..90,
    ) {
        let runs: Vec<_> = levels().into_iter().map(|l| {
            let mut out = vec![0.0; new_len];
            simd::lerp_resample_f64_with(l, &src, &mut out);
            (l, out)
        }).collect();
        assert_bits_f64(&runs)?;
        // And every point equals the scalar clamped-lerp definition.
        if new_len > 1 {
            let scale = (src.len() - 1) as f64 / (new_len - 1) as f64;
            for (i, &got) in runs[0].1.iter().enumerate() {
                let t = i as f64 * scale;
                let max = (src.len() - 1) as f64;
                let want = if t <= 0.0 {
                    src[0]
                } else if t >= max {
                    src[src.len() - 1]
                } else {
                    let j = t.floor() as usize;
                    let frac = t - j as f64;
                    src[j] * (1.0 - frac) + src[j + 1] * frac
                };
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn reductions_levels_agree(
        xs in proptest::collection::vec(-100.0f32..100.0, 0..133),
        ys_seed in proptest::collection::vec(-100.0f32..100.0, 133),
        mean in -10.0f32..10.0,
    ) {
        let ys = &ys_seed[..xs.len()];
        let sums: Vec<u32> =
            levels().into_iter().map(|l| simd::sum_f32_with(l, &xs).to_bits()).collect();
        prop_assert!(sums.windows(2).all(|w| w[0] == w[1]), "sum_f32 diverged: {sums:x?}");
        let sq: Vec<u32> = levels()
            .into_iter()
            .map(|l| simd::sumsq_centered_f32_with(l, &xs, mean).to_bits())
            .collect();
        prop_assert!(sq.windows(2).all(|w| w[0] == w[1]), "sumsq diverged: {sq:x?}");
        let dots: Vec<u32> =
            levels().into_iter().map(|l| simd::dot_f32_with(l, &xs, ys).to_bits()).collect();
        prop_assert!(dots.windows(2).all(|w| w[0] == w[1]), "dot_f32 diverged: {dots:x?}");
        let xs64: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
        let ys64: Vec<f64> = ys.iter().map(|&v| v as f64).collect();
        let dots64: Vec<u64> = levels()
            .into_iter()
            .map(|l| simd::dot_f64_with(l, &xs64, &ys64).to_bits())
            .collect();
        prop_assert!(dots64.windows(2).all(|w| w[0] == w[1]), "dot_f64 diverged: {dots64:x?}");
    }

    #[test]
    fn rocket_pooling_levels_agree(vals in proptest::collection::vec(-10.0f64..10.0, 0..133)) {
        let runs: Vec<(usize, f64)> =
            levels().into_iter().map(|l| simd::ppv_max_f64_with(l, &vals)).collect();
        for w in runs.windows(2) {
            prop_assert_eq!(w[0].0, w[1].0, "ppv count diverged");
            prop_assert_eq!(w[0].1.to_bits(), w[1].1.to_bits(), "max diverged");
        }
    }

    #[test]
    fn bn_forward_levels_agree(
        xs in proptest::collection::vec(-10.0f32..10.0, 0..67),
        mean in -2.0f32..2.0,
        inv_std in 0.1f32..5.0,
        gamma in -2.0f32..2.0,
        beta in -2.0f32..2.0,
    ) {
        let runs: Vec<_> = levels().into_iter().map(|l| {
            let mut xhat = vec![0.0f32; xs.len()];
            let mut out = vec![0.0f32; xs.len()];
            simd::bn_forward_f32_with(l, &xs, mean, inv_std, gamma, beta, &mut xhat, &mut out);
            let mut joined = xhat;
            joined.extend_from_slice(&out);
            (l, joined)
        }).collect();
        assert_bits_f32(&runs)?;
    }

    #[test]
    fn gemm_mk8x8_f64_levels_agree(
        a in proptest::collection::vec(-10.0f64..10.0, 8 * 24),
        b in proptest::collection::vec(-10.0f64..10.0, 24 * 8),
        c0 in proptest::collection::vec(-10.0f64..10.0, 8 * 8),
        klen in 1usize..24,
    ) {
        let runs: Vec<_> = levels().into_iter().map(|l| {
            let mut c = c0.clone();
            simd::gemm_mk8x8_f64(l, &a, 24, &b, 8, &mut c, 8, klen);
            (l, c)
        }).collect();
        assert_bits_f64(&runs)?;
    }

    #[test]
    fn gemm_mk8x16_levels_agree_and_match_two_8x8_tiles(
        a64 in proptest::collection::vec(-10.0f64..10.0, 8 * 24),
        b64 in proptest::collection::vec(-10.0f64..10.0, 24 * 16),
        c064 in proptest::collection::vec(-10.0f64..10.0, 8 * 16),
        klen in 1usize..24,
    ) {
        let runs: Vec<_> = levels().into_iter().map(|l| {
            let mut c = c064.clone();
            simd::gemm_mk8x16_f64(l, &a64, 24, &b64, 16, &mut c, 16, klen);
            (l, c)
        }).collect();
        assert_bits_f64(&runs)?;
        // One 16-wide strip == two 8-wide tiles, bit for bit (this is
        // the identity the GEMM caller relies on when it mixes strip
        // widths at the column remainder).
        let mut two = c064.clone();
        let lvl = simd::SimdLevel::Scalar;
        simd::gemm_mk8x8_f64(lvl, &a64, 24, &b64, 16, &mut two, 16, klen);
        simd::gemm_mk8x8_f64(lvl, &a64, 24, &b64[8..], 16, &mut two[8..], 16, klen);
        for (x, y) in runs[0].1.iter().zip(&two) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        // f32 variant over the same shapes.
        let a32: Vec<f32> = a64.iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b64.iter().map(|&v| v as f32).collect();
        let c032: Vec<f32> = c064.iter().map(|&v| v as f32).collect();
        let runs32: Vec<_> = levels().into_iter().map(|l| {
            let mut c = c032.clone();
            simd::gemm_mk8x16_f32(l, &a32, 24, &b32, 16, &mut c, 16, klen);
            (l, c)
        }).collect();
        assert_bits_f32(&runs32)?;
    }
}
