//! Covariance estimation: sample covariance and shrinkage estimators.
//!
//! The structure-preserving oversamplers of the paper's taxonomy (OHIT,
//! INOS/SPO) sample from per-cluster multivariate Gaussians whose
//! covariance must be estimated from very few, very high-dimensional
//! observations. A raw sample covariance is singular there; OHIT's
//! reference uses a Ledoit-Wolf-style shrinkage toward a scaled identity,
//! which [`shrinkage_covariance`] implements.

use crate::matrix::Matrix;

/// Sample covariance of the rows of `x` (`n` observations × `p`
/// variables), dividing by `n` (population convention, matching the
/// paper's Eq. 4 variance definition).
///
/// Returns a `p × p` symmetric matrix. With a single observation the
/// result is the zero matrix.
pub fn covariance_matrix(x: &Matrix) -> Matrix {
    let n = x.rows();
    let p = x.cols();
    if n == 0 {
        return Matrix::zeros(p, p);
    }
    let mean: Vec<f64> = (0..p)
        .map(|j| tsda_core::math::sum_stable((0..n).map(|i| x[(i, j)])) / n as f64)
        .collect();
    let centered = Matrix::from_fn(n, p, |i, j| x[(i, j)] - mean[j]);
    let mut cov = centered.gram();
    cov.scale(1.0 / n as f64);
    cov
}

/// A covariance estimate shrunk toward a scaled identity.
#[derive(Debug, Clone)]
pub struct ShrinkageCovariance {
    /// The shrunk covariance `(1−ρ) S + ρ μ I`.
    pub covariance: Matrix,
    /// The shrinkage intensity ρ ∈ [0, 1] actually used.
    pub intensity: f64,
    /// The shrinkage target scale μ = tr(S)/p.
    pub target_scale: f64,
}

/// Ledoit-Wolf-style shrinkage covariance of the rows of `x`.
///
/// Shrinks the sample covariance `S` toward `μI` with `μ = tr(S)/p`,
/// choosing the intensity by the Ledoit-Wolf formula
/// `ρ* = min(1, (1/n · avg‖xxᵀ − S‖²_F) / ‖S − μI‖²_F)`.
///
/// Rows must be the observations. Always returns a symmetric positive
/// semi-definite matrix; for `n = 1` the result is exactly `μI` with
/// `μ = 0` (degenerate but well-defined).
pub fn shrinkage_covariance(x: &Matrix) -> ShrinkageCovariance {
    let n = x.rows();
    let p = x.cols();
    let s = covariance_matrix(x);
    let mu = if p > 0 { s.trace() / p as f64 } else { 0.0 };

    if n <= 1 || p == 0 {
        let mut cov = Matrix::zeros(p, p);
        cov.add_diagonal(mu);
        return ShrinkageCovariance { covariance: cov, intensity: 1.0, target_scale: mu };
    }

    let mean: Vec<f64> = (0..p)
        .map(|j| tsda_core::math::sum_stable((0..n).map(|i| x[(i, j)])) / n as f64)
        .collect();

    // d² = ‖S − μI‖²_F
    let d2 = tsda_core::math::sum_stable((0..p).flat_map(|i| {
        let s = &s;
        (0..p).map(move |j| {
            let t = if i == j { s[(i, j)] - mu } else { s[(i, j)] };
            t * t
        })
    }));

    // b̄² = (1/n²) Σ_k ‖x_k x_kᵀ − S‖²_F  (capped at d²)
    let b2 = tsda_core::math::sum_stable((0..n).map(|k| {
        let xk: Vec<f64> = (0..p).map(|j| x[(k, j)] - mean[j]).collect();
        let s = &s;
        tsda_core::math::sum_stable((0..p).flat_map(|i| {
            let xk = &xk;
            (0..p).map(move |j| {
                let t = xk[i] * xk[j] - s[(i, j)];
                t * t
            })
        }))
    })) / (n * n) as f64;
    let b2 = b2.min(d2);

    let intensity = if d2 > 0.0 { (b2 / d2).clamp(0.0, 1.0) } else { 1.0 };
    let mut cov = &s * (1.0 - intensity);
    cov.add_diagonal(intensity * mu);
    ShrinkageCovariance { covariance: cov, intensity, target_scale: mu }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn covariance_of_uncorrelated_columns_is_near_diagonal() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Matrix::from_fn(4000, 2, |_, j| {
            if j == 0 {
                rng.gen_range(-1.0..1.0)
            } else {
                rng.gen_range(-2.0..2.0)
            }
        });
        let c = covariance_matrix(&x);
        // Var(U(-a,a)) = a²/3.
        assert!((c[(0, 0)] - 1.0 / 3.0).abs() < 0.03);
        assert!((c[(1, 1)] - 4.0 / 3.0).abs() < 0.1);
        assert!(c[(0, 1)].abs() < 0.05);
    }

    #[test]
    fn covariance_of_single_row_is_zero() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let c = covariance_matrix(&x);
        assert_eq!(c.max_abs(), 0.0);
    }

    #[test]
    fn covariance_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Matrix::from_fn(20, 5, |_, _| rng.gen_range(-1.0..1.0));
        let c = covariance_matrix(&x);
        assert!(c.approx_eq(&c.transpose(), 1e-14));
    }

    #[test]
    fn shrinkage_intensity_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Matrix::from_fn(5, 30, |_, _| rng.gen_range(-1.0..1.0));
        let sc = shrinkage_covariance(&x);
        assert!((0.0..=1.0).contains(&sc.intensity));
    }

    #[test]
    fn shrinkage_preserves_trace() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Matrix::from_fn(8, 12, |_, _| rng.gen_range(-1.0..1.0));
        let s = covariance_matrix(&x);
        let sc = shrinkage_covariance(&x);
        assert!((sc.covariance.trace() - s.trace()).abs() < 1e-9);
    }

    #[test]
    fn shrunk_covariance_is_positive_definite_when_underdetermined() {
        // 3 observations in 10 dimensions: sample covariance is singular,
        // but the shrunk one must factor.
        let mut rng = StdRng::seed_from_u64(5);
        let x = Matrix::from_fn(3, 10, |_, _| rng.gen_range(-1.0..1.0));
        let sc = shrinkage_covariance(&x);
        assert!(sc.intensity > 0.0);
        assert!(crate::cholesky::cholesky(&sc.covariance).is_ok());
    }

    #[test]
    fn large_sample_with_distinct_variances_shrinks_little() {
        // With unequal per-column variances the identity target is wrong,
        // so a well-determined sample must barely shrink. (Equal-variance
        // columns would legitimately shrink hard: the target is exact.)
        let mut rng = StdRng::seed_from_u64(6);
        let x = Matrix::from_fn(2000, 3, |_, j| {
            let scale = (j + 1) as f64;
            rng.gen_range(-scale..scale)
        });
        let sc = shrinkage_covariance(&x);
        assert!(sc.intensity < 0.05, "intensity {}", sc.intensity);
    }
}
