//! Small free-standing vector helpers shared across the workspace.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equal-length slices.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    tsda_core::math::sum_stable(a.iter().zip(b).map(|(x, y)| (x - y) * (x - y))).sqrt()
}

/// Squared Euclidean distance (avoids the sqrt when only ordering matters).
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        tsda_core::math::sum_stable(a.iter().copied()) / a.len() as f64
    }
}

/// Population variance (divides by `n`); 0 for an empty slice.
pub fn variance(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    tsda_core::math::sum_stable(a.iter().map(|v| (v - m) * (v - m))) / a.len() as f64
}

/// Population standard deviation.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// `y ← y + alpha * x`.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Normalise a vector to unit L2 norm in place; leaves zero vectors untouched.
pub fn normalize(a: &mut [f64]) {
    let n = norm(a);
    if n > 0.0 {
        for v in a.iter_mut() {
            *v /= n;
        }
    }
}

/// Index of the maximum element (first on ties); `None` for empty input.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element (first on ties); `None` for empty input.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        match best {
            Some((_, bv)) if v >= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_basic() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [1.0, 2.0, 3.0];
        let b = [-1.0, 0.5, 2.0];
        assert!((euclidean_distance(&a, &b) - euclidean_distance(&b, &a)).abs() < 1e-15);
        assert!((euclidean_distance(&a, &b).powi(2) - squared_distance(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn mean_variance_of_constant_series() {
        let a = [2.0; 10];
        assert_eq!(mean(&a), 2.0);
        assert_eq!(variance(&a), 0.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut a = vec![3.0, 4.0];
        normalize(&mut a);
        assert!((norm(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut a = vec![0.0, 0.0];
        normalize(&mut a);
        assert_eq!(a, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_argmin_prefer_first_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmin(&[2.0, 1.0, 1.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }
}
