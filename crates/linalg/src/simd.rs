//! Explicit-SIMD layer for the workspace's numeric hot paths.
//!
//! One dispatch decision, made once per process: [`level`] probes the
//! CPU for AVX2 + FMA (overridable with `TSDA_SIMD=scalar|avx2` for
//! testing) and every kernel here branches on the cached result. Each
//! kernel ships two implementations:
//!
//! * an AVX2 path written against `core::arch::x86_64` intrinsics, and
//! * a portable scalar path that mirrors the AVX2 path's arithmetic
//!   **operation for operation** — same fused/unfused multiplies, same
//!   lane-striped accumulator layout, same fixed combine tree.
//!
//! That mirroring is the determinism contract: for every kernel in this
//! module, `TSDA_SIMD=scalar` and `TSDA_SIMD=avx2` produce bit-identical
//! results on the same input (property-tested in
//! `tests/simd_dispatch.rs`). Two kernel families make that work:
//!
//! * **Element-wise kernels** (axpy, masked scale/add, lerp, the GEMM
//!   micro-kernel): every output element accumulates its own chain in a
//!   fixed order, so lane-parallelism never reorders a reduction. The
//!   GEMM micro-kernel uses *fused* multiply-add on both paths
//!   (`f64::mul_add` scalar-side — fma is exactly rounded, so the bits
//!   match the `vfmadd` lanes); the axpy/lerp kernels use unfused
//!   mul-then-add on both paths because their consumers (gram products,
//!   ROCKET pooling, DTW, resampling) pin bit-compatibility with the
//!   pre-SIMD scalar code.
//! * **Reduction kernels** (`sum`/`dot`/`sumsq`, PPV+max pooling): the
//!   reduction tree is fixed at the vector width — LANES interleaved
//!   stripe accumulators combined in one documented order — and the
//!   scalar path implements the *same* striped tree (`sum_stable`-style:
//!   the order is part of the function's definition, not an artifact of
//!   the instruction set).
//!
//! Results are also unchanged for any thread count: these kernels are
//! pure functions of their operands, and all parallelism stays in
//! `tsda_core::parallel` with its fixed chunking.
//!
//! A third level, [`SimdLevel::Avx512`], widens exactly one kernel —
//! the f64 GEMM micro-kernel, where 8-lane registers double FMA
//! throughput — and runs the AVX2 implementation everywhere else.
//! Because the micro-kernel's per-element chains are width-independent
//! (each output element accumulates ascending-`ki` with fused
//! multiply-add at every level), all three levels stay bit-identical.
//!
//! Non-goals: no per-element dispatch (the branch is hoisted to one
//! `match` per kernel call), no unsafe outside this module (the rest of
//! `tsda-linalg` keeps its deny-by-review posture; every `unsafe` block
//! here carries a `// SAFETY:` justification checked by `tsda-analyze`
//! U1).

use std::sync::OnceLock;

/// The instruction-set level every kernel in this module dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar mirrors (also the forced-`TSDA_SIMD=scalar` path).
    Scalar,
    /// AVX2 + FMA `core::arch::x86_64` kernels.
    Avx2,
    /// AVX2 kernels plus an AVX-512F f64 GEMM micro-kernel. Only the
    /// micro-kernel is widened — every other kernel runs its AVX2
    /// implementation at this level — because per-element FMA chains are
    /// identical at any vector width (see the module docs), so the wider
    /// tile changes throughput, never bits.
    Avx512,
}

impl SimdLevel {
    /// Stable lowercase name (`"scalar"` / `"avx2"` / `"avx512"`), as
    /// accepted by the `TSDA_SIMD` override and reported by
    /// `perf_baseline`.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

static LEVEL: OnceLock<SimdLevel> = OnceLock::new();

/// The process-wide dispatch level: detected once from the CPU, with a
/// `TSDA_SIMD=scalar|avx2` environment override for testing. Requesting
/// `avx2` on hardware without AVX2+FMA falls back to scalar (with a
/// one-time stderr warning) instead of executing illegal instructions.
pub fn level() -> SimdLevel {
    *LEVEL.get_or_init(detect)
}

fn detect() -> SimdLevel {
    let hw = hw_level();
    let clamp = |want: SimdLevel| {
        if hw >= want {
            want
        } else {
            eprintln!(
                "TSDA_SIMD={} requested but the CPU only supports {}; using {}",
                want.name(),
                hw.name(),
                hw.name()
            );
            hw
        }
    };
    match std::env::var("TSDA_SIMD").as_deref() {
        Ok("scalar") => SimdLevel::Scalar,
        Ok("avx2") => clamp(SimdLevel::Avx2),
        Ok("avx512") => clamp(SimdLevel::Avx512),
        Ok(other) if !other.is_empty() && other != "auto" => {
            eprintln!(
                "unknown TSDA_SIMD value {other:?} (expected scalar|avx2|avx512|auto); auto-detecting"
            );
            hw
        }
        _ => hw,
    }
}

/// The best level the *hardware* supports, ignoring `TSDA_SIMD`.
///
/// Tests iterate `[Scalar, ..=hw_level()]` to exercise every dispatch
/// path the host can execute.
#[cfg(target_arch = "x86_64")]
pub fn hw_level() -> SimdLevel {
    if !(is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")) {
        SimdLevel::Scalar
    } else if is_x86_feature_detected!("avx512f") {
        SimdLevel::Avx512
    } else {
        SimdLevel::Avx2
    }
}

/// The best level the *hardware* supports, ignoring `TSDA_SIMD`.
#[cfg(not(target_arch = "x86_64"))]
pub fn hw_level() -> SimdLevel {
    SimdLevel::Scalar
}

// On non-x86_64 targets the AVX2 arms are unreachable (`hw_level` never
// returns Avx2 and the env override refuses it), so each dispatcher
// routes Avx2 to the scalar mirror there.

// ---------------------------------------------------------------------
// Element-wise kernels: y[i] += a * x[i]  (unfused: mul, then add —
// bit-compatible with the pre-SIMD scalar loops in gemm_tn / ROCKET).
// ---------------------------------------------------------------------

/// `y[i] += a * x[i]` (unfused multiply-add, per-element).
#[inline]
pub fn axpy_f64(y: &mut [f64], x: &[f64], a: f64) {
    axpy_f64_with(level(), y, x, a);
}

/// [`axpy_f64`] at an explicit dispatch level (for equivalence tests and
/// call sites that hoist the level out of a loop).
#[inline]
pub fn axpy_f64_with(lvl: SimdLevel, y: &mut [f64], x: &[f64], a: f64) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: `level()`/callers only pass Avx2 when AVX2+FMA were
        // runtime-detected (or tests verified support); slices have
        // equal lengths per the assert above.
        unsafe { avx2::axpy_f64(y, x, a) },
        _ => {
            for (yv, xv) in y.iter_mut().zip(x) {
                *yv += a * *xv;
            }
        }
    }
}

/// `y[i] += a * x[i]` for `f32` (unfused multiply-add, per-element).
#[inline]
pub fn axpy_f32(y: &mut [f32], x: &[f32], a: f32) {
    axpy_f32_with(level(), y, x, a);
}

/// [`axpy_f32`] at an explicit dispatch level.
#[inline]
pub fn axpy_f32_with(lvl: SimdLevel, y: &mut [f32], x: &[f32], a: f32) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA; lengths match.
        unsafe { avx2::axpy_f32(y, x, a) },
        _ => {
            for (yv, xv) in y.iter_mut().zip(x) {
                *yv += a * *xv;
            }
        }
    }
}

/// `v[i] *= factor` for every non-NaN element; NaN elements keep their
/// exact bit pattern (the augmenters' missing-value convention).
#[inline]
pub fn scale_masked_f64(v: &mut [f64], factor: f64) {
    scale_masked_f64_with(level(), v, factor);
}

/// [`scale_masked_f64`] at an explicit dispatch level.
#[inline]
pub fn scale_masked_f64_with(lvl: SimdLevel, v: &mut [f64], factor: f64) {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA.
        unsafe { avx2::scale_masked_f64(v, factor) },
        _ => {
            for x in v {
                if !x.is_nan() {
                    *x *= factor;
                }
            }
        }
    }
}

/// `v[i] += delta[i]` for every non-NaN `v[i]`; NaN elements keep their
/// exact bit pattern. `delta` entries at NaN positions are ignored.
#[inline]
pub fn add_masked_f64(v: &mut [f64], delta: &[f64]) {
    add_masked_f64_with(level(), v, delta);
}

/// [`add_masked_f64`] at an explicit dispatch level.
#[inline]
pub fn add_masked_f64_with(lvl: SimdLevel, v: &mut [f64], delta: &[f64]) {
    assert_eq!(v.len(), delta.len(), "add_masked length mismatch");
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA; lengths match.
        unsafe { avx2::add_masked_f64(v, delta) },
        _ => {
            for (x, d) in v.iter_mut().zip(delta) {
                if !x.is_nan() {
                    *x += *d;
                }
            }
        }
    }
}

/// `acc[j] += (x − ys[j])²` (unfused, per-element) — the DTW point-cost
/// row update for one query dimension against a reference dimension.
#[inline]
pub fn sq_diff_acc_f64(acc: &mut [f64], x: f64, ys: &[f64]) {
    sq_diff_acc_f64_with(level(), acc, x, ys);
}

/// [`sq_diff_acc_f64`] at an explicit dispatch level.
#[inline]
pub fn sq_diff_acc_f64_with(lvl: SimdLevel, acc: &mut [f64], x: f64, ys: &[f64]) {
    assert_eq!(acc.len(), ys.len(), "sq_diff_acc length mismatch");
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA; lengths match.
        unsafe { avx2::sq_diff_acc_f64(acc, x, ys) },
        _ => {
            for (a, y) in acc.iter_mut().zip(ys) {
                let d = x - *y;
                *a += d * d;
            }
        }
    }
}

/// `out[j] = min(a[j], b[j])` per element. Inputs must be NaN-free
/// (DTW cost cells are finite or `+∞`); ties return the shared value.
#[inline]
pub fn min2_f64(out: &mut [f64], a: &[f64], b: &[f64]) {
    min2_f64_with(level(), out, a, b);
}

/// [`min2_f64`] at an explicit dispatch level.
#[inline]
pub fn min2_f64_with(lvl: SimdLevel, out: &mut [f64], a: &[f64], b: &[f64]) {
    assert!(out.len() == a.len() && a.len() == b.len(), "min2 length mismatch");
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA; lengths match.
        unsafe { avx2::min2_f64(out, a, b) },
        _ => {
            for ((o, av), bv) in out.iter_mut().zip(a).zip(b) {
                *o = if av < bv { *av } else { *bv };
            }
        }
    }
}

/// Uniform linear resample of `src` onto `out.len()` points over the
/// same index range — the inner loop of `resample_linear` (slicing /
/// window-warp augmenters), bit-compatible with per-point `lerp_at`:
/// `src[i]·(1−frac) + src[i+1]·frac`, ends clamped.
#[inline]
pub fn lerp_resample_f64(src: &[f64], out: &mut [f64]) {
    lerp_resample_f64_with(level(), src, out);
}

/// [`lerp_resample_f64`] at an explicit dispatch level.
pub fn lerp_resample_f64_with(lvl: SimdLevel, src: &[f64], out: &mut [f64]) {
    assert!(!src.is_empty(), "resample of empty input");
    let olen = out.len();
    if olen == 0 {
        return;
    }
    if olen == 1 {
        out[0] = src[0];
        return;
    }
    let max = (src.len() - 1) as f64;
    let scale = max / (olen - 1) as f64;
    // Clamped ends and any positions landing at/past the last sample are
    // handled scalar (identical to `lerp_at`); the strictly-interior run
    // vectorises. `t` is non-decreasing in `i`, so the interior is a
    // single contiguous range.
    let mut lo = 0;
    while lo < olen && (lo as f64) * scale <= 0.0 {
        out[lo] = src[0];
        lo += 1;
    }
    let mut hi = olen;
    while hi > lo && (hi - 1) as f64 * scale >= max {
        out[hi - 1] = src[src.len() - 1];
        hi -= 1;
    }
    let interior = &mut out[lo..hi];
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA; every index in
        // [lo, hi) satisfies 0 < i·scale < max so floor+1 is in bounds.
        unsafe { avx2::lerp_interior_f64(src, scale, lo, interior) },
        _ => {
            for (off, o) in interior.iter_mut().enumerate() {
                let t = (lo + off) as f64 * scale;
                let i = t.floor() as usize;
                let frac = t - i as f64;
                *o = src[i] * (1.0 - frac) + src[i + 1] * frac;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Striped reductions: the reduction tree is part of the definition —
// LANES interleaved accumulators (lane j owns elements j, j+LANES, …),
// tail elements folded into lanes 0..tail, lanes combined low-half +
// high-half pairwise. Both paths implement exactly this tree; the
// multiply-accumulate is *fused* on both (`mul_add` ↔ `vfmadd`).
// ---------------------------------------------------------------------

/// Striped-tree sum of an `f32` slice (4-lane tree).
#[inline]
pub fn sum_f32(xs: &[f32]) -> f32 {
    sum_f32_with(level(), xs)
}

/// [`sum_f32`] at an explicit dispatch level.
#[inline]
pub fn sum_f32_with(lvl: SimdLevel, xs: &[f32]) -> f32 {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA.
        unsafe { avx2::sum_f32(xs) },
        _ => {
            let mut lanes = [0.0f32; 8];
            let mut chunks = xs.chunks_exact(8);
            for c in chunks.by_ref() {
                for (l, v) in lanes.iter_mut().zip(c) {
                    *l += *v;
                }
            }
            for (l, v) in lanes.iter_mut().zip(chunks.remainder()) {
                *l += *v;
            }
            combine8_f32(lanes)
        }
    }
}

/// Striped-tree sum of squared deviations `Σ (x − mean)²` (fused).
#[inline]
pub fn sumsq_centered_f32(xs: &[f32], mean: f32) -> f32 {
    sumsq_centered_f32_with(level(), xs, mean)
}

/// [`sumsq_centered_f32`] at an explicit dispatch level.
#[inline]
pub fn sumsq_centered_f32_with(lvl: SimdLevel, xs: &[f32], mean: f32) -> f32 {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA.
        unsafe { avx2::sumsq_centered_f32(xs, mean) },
        _ => {
            let mut lanes = [0.0f32; 8];
            let mut chunks = xs.chunks_exact(8);
            for c in chunks.by_ref() {
                for (l, v) in lanes.iter_mut().zip(c) {
                    let d = *v - mean;
                    *l = d.mul_add(d, *l);
                }
            }
            for (l, v) in lanes.iter_mut().zip(chunks.remainder()) {
                let d = *v - mean;
                *l = d.mul_add(d, *l);
            }
            combine8_f32(lanes)
        }
    }
}

/// Striped-tree dot product of two `f32` slices (fused).
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    dot_f32_with(level(), a, b)
}

/// [`dot_f32`] at an explicit dispatch level.
#[inline]
pub fn dot_f32_with(lvl: SimdLevel, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA; lengths match.
        unsafe { avx2::dot_f32(a, b) },
        _ => {
            let mut lanes = [0.0f32; 8];
            let mut ca = a.chunks_exact(8);
            let mut cb = b.chunks_exact(8);
            for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
                for ((l, va), vb) in lanes.iter_mut().zip(xa).zip(xb) {
                    *l = va.mul_add(*vb, *l);
                }
            }
            for ((l, va), vb) in lanes.iter_mut().zip(ca.remainder()).zip(cb.remainder()) {
                *l = va.mul_add(*vb, *l);
            }
            combine8_f32(lanes)
        }
    }
}

/// Striped-tree dot product of two `f64` slices (fused, 4-lane tree).
#[inline]
pub fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
    dot_f64_with(level(), a, b)
}

/// [`dot_f64`] at an explicit dispatch level.
#[inline]
pub fn dot_f64_with(lvl: SimdLevel, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA; lengths match.
        unsafe { avx2::dot_f64(a, b) },
        _ => {
            let mut lanes = [0.0f64; 4];
            let mut ca = a.chunks_exact(4);
            let mut cb = b.chunks_exact(4);
            for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
                for ((l, va), vb) in lanes.iter_mut().zip(xa).zip(xb) {
                    *l = va.mul_add(*vb, *l);
                }
            }
            for ((l, va), vb) in lanes.iter_mut().zip(ca.remainder()).zip(cb.remainder()) {
                *l = va.mul_add(*vb, *l);
            }
            combine4_f64(lanes)
        }
    }
}

/// The fixed 8-lane combine: low half + high half, then pairwise.
#[inline]
fn combine8_f32(l: [f32; 8]) -> f32 {
    let q = [l[0] + l[4], l[1] + l[5], l[2] + l[6], l[3] + l[7]];
    let p = [q[0] + q[2], q[1] + q[3]];
    p[0] + p[1]
}

/// The fixed 4-lane combine: low half + high half, then the pair.
#[inline]
fn combine4_f64(l: [f64; 4]) -> f64 {
    let p = [l[0] + l[2], l[1] + l[3]];
    p[0] + p[1]
}

// ---------------------------------------------------------------------
// ROCKET pooling: PPV (count of strictly positive values) and max.
// ---------------------------------------------------------------------

/// `(|{v > 0}|, max)` over `vals` — ROCKET's PPV numerator and max
/// pooled feature in one pass. The max uses a strict-greater striped
/// update (4 lanes, earliest-seen kept on ties), combined lane 0→3;
/// returns `(0, -∞)` on an empty slice.
#[inline]
pub fn ppv_max_f64(vals: &[f64]) -> (usize, f64) {
    ppv_max_f64_with(level(), vals)
}

/// [`ppv_max_f64`] at an explicit dispatch level.
#[inline]
pub fn ppv_max_f64_with(lvl: SimdLevel, vals: &[f64]) -> (usize, f64) {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA.
        unsafe { avx2::ppv_max_f64(vals) },
        _ => {
            let mut lanes = [f64::NEG_INFINITY; 4];
            let mut positives = 0usize;
            let mut chunks = vals.chunks_exact(4);
            for c in chunks.by_ref() {
                for (l, v) in lanes.iter_mut().zip(c) {
                    if *v > 0.0 {
                        positives += 1;
                    }
                    if *v > *l {
                        *l = *v;
                    }
                }
            }
            for (l, v) in lanes.iter_mut().zip(chunks.remainder()) {
                if *v > 0.0 {
                    positives += 1;
                }
                if *v > *l {
                    *l = *v;
                }
            }
            (positives, max4(lanes))
        }
    }
}

/// Lane combine for the striped max: ascending lane order, strict
/// greater (mirrors the per-lane update rule).
#[inline]
fn max4(lanes: [f64; 4]) -> f64 {
    let mut m = lanes[0];
    for &l in &lanes[1..] {
        if l > m {
            m = l;
        }
    }
    m
}

// ---------------------------------------------------------------------
// Batch-norm forward: xhat = (x − mean)·inv_std, out = γ·xhat + β.
// The division is pre-inverted (one rounding per channel, not per
// element) and the affine uses fused multiply-add on both paths.
// ---------------------------------------------------------------------

/// Normalise one channel run: writes `xhat[i] = (x[i] − mean)·inv_std`
/// and `out[i] = gamma·xhat[i] + beta` (fused).
#[inline]
pub fn bn_forward_f32(
    x: &[f32],
    mean: f32,
    inv_std: f32,
    gamma: f32,
    beta: f32,
    xhat: &mut [f32],
    out: &mut [f32],
) {
    bn_forward_f32_with(level(), x, mean, inv_std, gamma, beta, xhat, out);
}

/// [`bn_forward_f32`] at an explicit dispatch level.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn bn_forward_f32_with(
    lvl: SimdLevel,
    x: &[f32],
    mean: f32,
    inv_std: f32,
    gamma: f32,
    beta: f32,
    xhat: &mut [f32],
    out: &mut [f32],
) {
    assert!(x.len() == xhat.len() && x.len() == out.len(), "bn_forward length mismatch");
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA; lengths match.
        unsafe { avx2::bn_forward_f32(x, mean, inv_std, gamma, beta, xhat, out) },
        _ => {
            for ((xv, h), o) in x.iter().zip(xhat.iter_mut()).zip(out.iter_mut()) {
                let hv = (*xv - mean) * inv_std;
                *h = hv;
                *o = gamma.mul_add(hv, beta);
            }
        }
    }
}

// ---------------------------------------------------------------------
// GEMM micro-kernel: an 8-row × 8-column C tile accumulates
//   c[r·ldc + j] += Σ_{ki < klen} a[r·lda + ki] · b[ki·ldb + j]
// in ascending-ki order with *fused* multiply-add on both paths. Each C
// element owns an independent chain, so lane width never reorders a
// reduction and the two paths agree bit-for-bit.
// ---------------------------------------------------------------------

/// 8×8 f64 micro-kernel tile update (fused, ascending `ki`).
///
/// `a` starts at the tile's first row and first `ki` (row stride `lda`),
/// `b` at the first `ki` and the tile's first column (row stride `ldb`),
/// `c` at the tile origin (row stride `ldc`).
#[inline]
#[allow(clippy::too_many_arguments)] // standard GEMM micro-kernel signature
pub fn gemm_mk8x8_f64(
    lvl: SimdLevel,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    klen: usize,
) {
    assert!(klen > 0 && lda >= klen && ldb >= 8 && ldc >= 8, "gemm_mk8x8 bad strides");
    assert!(a.len() >= 7 * lda + klen, "gemm_mk8x8 lhs tile out of bounds");
    assert!(b.len() >= (klen - 1) * ldb + 8, "gemm_mk8x8 rhs tile out of bounds");
    assert!(c.len() >= 7 * ldc + 8, "gemm_mk8x8 out tile out of bounds");
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 =>
        // SAFETY: Avx512 implies runtime-detected AVX-512F (hw_level
        // checks it on top of AVX2+FMA); the asserts above bound every
        // access the kernel makes (rows 0..8 × ki 0..klen of `a`,
        // ki 0..klen × cols 0..8 of `b`, rows 0..8 × cols 0..8 of `c`).
        unsafe { avx512::gemm_mk8x8_f64(a, lda, b, ldb, c, ldc, klen) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: Avx2 implies runtime-detected AVX2+FMA; the
            // asserts above bound every access the kernel makes
            // (rows 0..8 × ki 0..klen of `a`, ki 0..klen × cols 0..8 of
            // `b`, rows 0..8 × cols 0..8 of `c`).
            unsafe {
                avx2::gemm_mk4x8_f64(a, lda, b, ldb, c, ldc, klen);
                avx2::gemm_mk4x8_f64(&a[4 * lda..], lda, b, ldb, &mut c[4 * ldc..], ldc, klen);
            }
        }
        _ => {
            for r in 0..8 {
                for j in 0..8 {
                    let mut acc = c[r * ldc + j];
                    for ki in 0..klen {
                        acc = a[r * lda + ki].mul_add(b[ki * ldb + j], acc);
                    }
                    c[r * ldc + j] = acc;
                }
            }
        }
    }
}

/// 8×8 f32 micro-kernel tile update (fused, ascending `ki`).
#[inline]
#[allow(clippy::too_many_arguments)] // standard GEMM micro-kernel signature
pub fn gemm_mk8x8_f32(
    lvl: SimdLevel,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    klen: usize,
) {
    assert!(klen > 0 && lda >= klen && ldb >= 8 && ldc >= 8, "gemm_mk8x8 bad strides");
    assert!(a.len() >= 7 * lda + klen, "gemm_mk8x8 lhs tile out of bounds");
    assert!(b.len() >= (klen - 1) * ldb + 8, "gemm_mk8x8 rhs tile out of bounds");
    assert!(c.len() >= 7 * ldc + 8, "gemm_mk8x8 out tile out of bounds");
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Avx512 =>
        // SAFETY: Avx2 implies runtime-detected AVX2+FMA; the asserts
        // above bound every access (see the f64 variant).
        unsafe { avx2::gemm_mk8x8_f32(a, lda, b, ldb, c, ldc, klen) },
        _ => {
            for r in 0..8 {
                for j in 0..8 {
                    let mut acc = c[r * ldc + j];
                    for ki in 0..klen {
                        acc = a[r * lda + ki].mul_add(b[ki * ldb + j], acc);
                    }
                    c[r * ldc + j] = acc;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// AVX2 implementations. Everything in this module is `unsafe fn` with
// `#[target_feature]`; callers guarantee the features were detected.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_f64(y: &mut [f64], x: &[f64], a: f64) {
        // SAFETY: (for all raw loads/stores below) the dispatcher
        // asserted y.len() == x.len(); the vector loop covers full
        // 4-lane chunks inside that length and the tail is scalar.
        unsafe {
            let n = y.len();
            let av = _mm256_set1_pd(a);
            let yp = y.as_mut_ptr();
            let xp = x.as_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let yv = _mm256_loadu_pd(yp.add(i));
                let xv = _mm256_loadu_pd(xp.add(i));
                // Unfused on purpose: mirrors the scalar `y += a * x`.
                _mm256_storeu_pd(yp.add(i), _mm256_add_pd(yv, _mm256_mul_pd(av, xv)));
                i += 4;
            }
            while i < n {
                *yp.add(i) += a * *xp.add(i);
                i += 1;
            }
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_f32(y: &mut [f32], x: &[f32], a: f32) {
        // SAFETY: as in axpy_f64 — equal lengths asserted by the
        // dispatcher, full 8-lane chunks vectorised, scalar tail.
        unsafe {
            let n = y.len();
            let av = _mm256_set1_ps(a);
            let yp = y.as_mut_ptr();
            let xp = x.as_ptr();
            let mut i = 0;
            while i + 8 <= n {
                let yv = _mm256_loadu_ps(yp.add(i));
                let xv = _mm256_loadu_ps(xp.add(i));
                _mm256_storeu_ps(yp.add(i), _mm256_add_ps(yv, _mm256_mul_ps(av, xv)));
                i += 8;
            }
            while i < n {
                *yp.add(i) += a * *xp.add(i);
                i += 1;
            }
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn scale_masked_f64(v: &mut [f64], factor: f64) {
        // SAFETY: loads/stores stay inside v.len(); the blend keeps the
        // original (NaN) lanes bit-exact, matching the scalar skip.
        unsafe {
            let n = v.len();
            let f = _mm256_set1_pd(factor);
            let p = v.as_mut_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let x = _mm256_loadu_pd(p.add(i));
                let prod = _mm256_mul_pd(x, f);
                // Ordered self-compare: true lanes are non-NaN.
                let ord = _mm256_cmp_pd::<_CMP_ORD_Q>(x, x);
                _mm256_storeu_pd(p.add(i), _mm256_blendv_pd(x, prod, ord));
                i += 4;
            }
            while i < n {
                let x = *p.add(i);
                if !x.is_nan() {
                    *p.add(i) = x * factor;
                }
                i += 1;
            }
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn add_masked_f64(v: &mut [f64], delta: &[f64]) {
        // SAFETY: equal lengths asserted by the dispatcher; blend keeps
        // NaN lanes bit-exact.
        unsafe {
            let n = v.len();
            let p = v.as_mut_ptr();
            let dp = delta.as_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let x = _mm256_loadu_pd(p.add(i));
                let sum = _mm256_add_pd(x, _mm256_loadu_pd(dp.add(i)));
                let ord = _mm256_cmp_pd::<_CMP_ORD_Q>(x, x);
                _mm256_storeu_pd(p.add(i), _mm256_blendv_pd(x, sum, ord));
                i += 4;
            }
            while i < n {
                let x = *p.add(i);
                if !x.is_nan() {
                    *p.add(i) = x + *dp.add(i);
                }
                i += 1;
            }
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sq_diff_acc_f64(acc: &mut [f64], x: f64, ys: &[f64]) {
        // SAFETY: equal lengths asserted by the dispatcher.
        unsafe {
            let n = acc.len();
            let xv = _mm256_set1_pd(x);
            let ap = acc.as_mut_ptr();
            let yp = ys.as_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let d = _mm256_sub_pd(xv, _mm256_loadu_pd(yp.add(i)));
                let a = _mm256_loadu_pd(ap.add(i));
                // Unfused (mul then add): mirrors `acc += d * d`.
                _mm256_storeu_pd(ap.add(i), _mm256_add_pd(a, _mm256_mul_pd(d, d)));
                i += 4;
            }
            while i < n {
                let d = x - *yp.add(i);
                *ap.add(i) += d * d;
                i += 1;
            }
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn min2_f64(out: &mut [f64], a: &[f64], b: &[f64]) {
        // SAFETY: equal lengths asserted by the dispatcher; vminpd on
        // NaN-free input matches the scalar `if a < b { a } else { b }`.
        unsafe {
            let n = out.len();
            let op = out.as_mut_ptr();
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let m = _mm256_min_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
                _mm256_storeu_pd(op.add(i), m);
                i += 4;
            }
            while i < n {
                let (x, y) = (*ap.add(i), *bp.add(i));
                *op.add(i) = if x < y { x } else { y };
                i += 1;
            }
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn lerp_interior_f64(src: &[f64], scale: f64, lo: usize, out: &mut [f64]) {
        // SAFETY: the dispatcher guarantees every interior position
        // satisfies 0 < (lo+off)·scale < src.len()−1, so floor(t) and
        // floor(t)+1 index src in bounds; gathers are done with scalar
        // loads at those verified indices.
        unsafe {
            let n = out.len();
            let op = out.as_mut_ptr();
            let sp = src.as_ptr();
            let one = _mm256_set1_pd(1.0);
            let mut off = 0;
            while off + 4 <= n {
                let mut t4 = [0.0f64; 4];
                let mut v0 = [0.0f64; 4];
                let mut v1 = [0.0f64; 4];
                let mut fr = [0.0f64; 4];
                for l in 0..4 {
                    let t = (lo + off + l) as f64 * scale;
                    let i = t as usize; // t > 0, so cast == floor
                    fr[l] = t - i as f64;
                    v0[l] = *sp.add(i);
                    v1[l] = *sp.add(i + 1);
                    t4[l] = t;
                }
                let fracv = _mm256_loadu_pd(fr.as_ptr());
                let a = _mm256_mul_pd(_mm256_loadu_pd(v0.as_ptr()), _mm256_sub_pd(one, fracv));
                let bvv = _mm256_mul_pd(_mm256_loadu_pd(v1.as_ptr()), fracv);
                _mm256_storeu_pd(op.add(off), _mm256_add_pd(a, bvv));
                off += 4;
            }
            while off < n {
                let t = (lo + off) as f64 * scale;
                let i = t as usize;
                let frac = t - i as f64;
                *op.add(off) = *sp.add(i) * (1.0 - frac) + *sp.add(i + 1) * frac;
                off += 1;
            }
        }
    }

    /// Spill-and-finish helper: the fixed 8-lane f32 combine tree.
    #[inline]
    fn combine8(l: [f32; 8]) -> f32 {
        super::combine8_f32(l)
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sum_f32(xs: &[f32]) -> f32 {
        // SAFETY: full 8-lane chunks stay inside xs.len(); the tail is
        // folded into lanes 0..tail exactly like the scalar mirror.
        unsafe {
            let n = xs.len();
            let p = xs.as_ptr();
            let mut acc = _mm256_setzero_ps();
            let mut i = 0;
            while i + 8 <= n {
                acc = _mm256_add_ps(acc, _mm256_loadu_ps(p.add(i)));
                i += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
            let mut l = 0;
            while i < n {
                lanes[l] += *p.add(i);
                l += 1;
                i += 1;
            }
            combine8(lanes)
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sumsq_centered_f32(xs: &[f32], mean: f32) -> f32 {
        // SAFETY: as in sum_f32.
        unsafe {
            let n = xs.len();
            let p = xs.as_ptr();
            let m = _mm256_set1_ps(mean);
            let mut acc = _mm256_setzero_ps();
            let mut i = 0;
            while i + 8 <= n {
                let d = _mm256_sub_ps(_mm256_loadu_ps(p.add(i)), m);
                acc = _mm256_fmadd_ps(d, d, acc);
                i += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
            let mut l = 0;
            while i < n {
                let d = *p.add(i) - mean;
                lanes[l] = d.mul_add(d, lanes[l]);
                l += 1;
                i += 1;
            }
            combine8(lanes)
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: equal lengths asserted by the dispatcher; chunks and
        // tail as in sum_f32.
        unsafe {
            let n = a.len();
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut acc = _mm256_setzero_ps();
            let mut i = 0;
            while i + 8 <= n {
                acc = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc);
                i += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
            let mut l = 0;
            while i < n {
                lanes[l] = (*ap.add(i)).mul_add(*bp.add(i), lanes[l]);
                l += 1;
                i += 1;
            }
            combine8(lanes)
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
        // SAFETY: equal lengths asserted by the dispatcher.
        unsafe {
            let n = a.len();
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut acc = _mm256_setzero_pd();
            let mut i = 0;
            while i + 4 <= n {
                acc = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc);
                i += 4;
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
            let mut l = 0;
            while i < n {
                lanes[l] = (*ap.add(i)).mul_add(*bp.add(i), lanes[l]);
                l += 1;
                i += 1;
            }
            super::combine4_f64(lanes)
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn ppv_max_f64(vals: &[f64]) -> (usize, f64) {
        // SAFETY: full 4-lane chunks stay inside vals.len(); tail folds
        // into lanes 0..tail like the scalar mirror. The blend keeps the
        // earliest-seen value on ties (strict greater-than update).
        unsafe {
            let n = vals.len();
            let p = vals.as_ptr();
            let zero = _mm256_setzero_pd();
            let mut maxv = _mm256_set1_pd(f64::NEG_INFINITY);
            let mut positives = 0usize;
            let mut i = 0;
            while i + 4 <= n {
                let v = _mm256_loadu_pd(p.add(i));
                let gt0 = _mm256_cmp_pd::<_CMP_GT_OQ>(v, zero);
                positives += _mm256_movemask_pd(gt0).count_ones() as usize;
                let gtm = _mm256_cmp_pd::<_CMP_GT_OQ>(v, maxv);
                maxv = _mm256_blendv_pd(maxv, v, gtm);
                i += 4;
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), maxv);
            let mut l = 0;
            while i < n {
                let v = *p.add(i);
                if v > 0.0 {
                    positives += 1;
                }
                if v > lanes[l] {
                    lanes[l] = v;
                }
                l += 1;
                i += 1;
            }
            (positives, super::max4(lanes))
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn bn_forward_f32(
        x: &[f32],
        mean: f32,
        inv_std: f32,
        gamma: f32,
        beta: f32,
        xhat: &mut [f32],
        out: &mut [f32],
    ) {
        // SAFETY: equal lengths asserted by the dispatcher.
        unsafe {
            let n = x.len();
            let xp = x.as_ptr();
            let hp = xhat.as_mut_ptr();
            let op = out.as_mut_ptr();
            let mv = _mm256_set1_ps(mean);
            let sv = _mm256_set1_ps(inv_std);
            let gv = _mm256_set1_ps(gamma);
            let bv = _mm256_set1_ps(beta);
            let mut i = 0;
            while i + 8 <= n {
                let h = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(xp.add(i)), mv), sv);
                _mm256_storeu_ps(hp.add(i), h);
                _mm256_storeu_ps(op.add(i), _mm256_fmadd_ps(gv, h, bv));
                i += 8;
            }
            while i < n {
                let h = (*xp.add(i) - mean) * inv_std;
                *hp.add(i) = h;
                *op.add(i) = gamma.mul_add(h, beta);
                i += 1;
            }
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemm_mk4x8_f64(
        a: &[f64],
        lda: usize,
        b: &[f64],
        ldb: usize,
        c: &mut [f64],
        ldc: usize,
        klen: usize,
    ) {
        // SAFETY: the public dispatcher asserts the full 8×8 tile is in
        // bounds; this helper touches rows 0..4 of that tile (the second
        // call re-bases the slices by 4 rows). All pointer arithmetic
        // stays within r·ld + idx for r < 4, ki < klen, j < 8.
        unsafe {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let cp = c.as_mut_ptr();
            let mut acc00 = _mm256_loadu_pd(cp);
            let mut acc01 = _mm256_loadu_pd(cp.add(4));
            let mut acc10 = _mm256_loadu_pd(cp.add(ldc));
            let mut acc11 = _mm256_loadu_pd(cp.add(ldc + 4));
            let mut acc20 = _mm256_loadu_pd(cp.add(2 * ldc));
            let mut acc21 = _mm256_loadu_pd(cp.add(2 * ldc + 4));
            let mut acc30 = _mm256_loadu_pd(cp.add(3 * ldc));
            let mut acc31 = _mm256_loadu_pd(cp.add(3 * ldc + 4));
            for ki in 0..klen {
                let b0 = _mm256_loadu_pd(bp.add(ki * ldb));
                let b1 = _mm256_loadu_pd(bp.add(ki * ldb + 4));
                let a0 = _mm256_set1_pd(*ap.add(ki));
                acc00 = _mm256_fmadd_pd(a0, b0, acc00);
                acc01 = _mm256_fmadd_pd(a0, b1, acc01);
                let a1 = _mm256_set1_pd(*ap.add(lda + ki));
                acc10 = _mm256_fmadd_pd(a1, b0, acc10);
                acc11 = _mm256_fmadd_pd(a1, b1, acc11);
                let a2 = _mm256_set1_pd(*ap.add(2 * lda + ki));
                acc20 = _mm256_fmadd_pd(a2, b0, acc20);
                acc21 = _mm256_fmadd_pd(a2, b1, acc21);
                let a3 = _mm256_set1_pd(*ap.add(3 * lda + ki));
                acc30 = _mm256_fmadd_pd(a3, b0, acc30);
                acc31 = _mm256_fmadd_pd(a3, b1, acc31);
            }
            _mm256_storeu_pd(cp, acc00);
            _mm256_storeu_pd(cp.add(4), acc01);
            _mm256_storeu_pd(cp.add(ldc), acc10);
            _mm256_storeu_pd(cp.add(ldc + 4), acc11);
            _mm256_storeu_pd(cp.add(2 * ldc), acc20);
            _mm256_storeu_pd(cp.add(2 * ldc + 4), acc21);
            _mm256_storeu_pd(cp.add(3 * ldc), acc30);
            _mm256_storeu_pd(cp.add(3 * ldc + 4), acc31);
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemm_mk8x8_f32(
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        klen: usize,
    ) {
        // SAFETY: the public dispatcher asserts rows 0..8 × ki 0..klen
        // of `a`, ki 0..klen × cols 0..8 of `b`, and rows 0..8 × cols
        // 0..8 of `c` are in bounds; all accesses stay in that range.
        unsafe {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let cp = c.as_mut_ptr();
            let mut acc = [_mm256_setzero_ps(); 8];
            for (r, accr) in acc.iter_mut().enumerate() {
                // Only the low 8 f32 of each C row participate.
                *accr = _mm256_loadu_ps(cp.add(r * ldc));
            }
            for ki in 0..klen {
                let bvec = _mm256_loadu_ps(bp.add(ki * ldb));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*ap.add(r * lda + ki));
                    *accr = _mm256_fmadd_ps(av, bvec, *accr);
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(cp.add(r * ldc), *accr);
            }
        }
    }
}

/// 8×16 f64 micro-kernel tile update (fused, ascending `ki`): the wide
/// variant used for full 16-column strips, where the doubled column
/// count amortises the per-`ki` A broadcasts over twice the FMA work.
/// Per-element chains are identical to [`gemm_mk8x8_f64`]'s — computing
/// a 16-wide strip as one wide tile or two 8-wide tiles gives the same
/// bits — which is what keeps Scalar/Avx2/Avx512 in exact agreement.
#[inline]
#[allow(clippy::too_many_arguments)] // standard GEMM micro-kernel signature
pub fn gemm_mk8x16_f64(
    lvl: SimdLevel,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    klen: usize,
) {
    assert!(klen > 0 && lda >= klen && ldb >= 16 && ldc >= 16, "gemm_mk8x16 bad strides");
    assert!(a.len() >= 7 * lda + klen, "gemm_mk8x16 lhs tile out of bounds");
    assert!(b.len() >= (klen - 1) * ldb + 16, "gemm_mk8x16 rhs tile out of bounds");
    assert!(c.len() >= 7 * ldc + 16, "gemm_mk8x16 out tile out of bounds");
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 =>
        // SAFETY: Avx512 implies runtime-detected AVX-512F; the asserts
        // above bound every access (rows 0..8 × ki 0..klen of `a`,
        // ki 0..klen × cols 0..16 of `b`, rows 0..8 × cols 0..16 of `c`).
        unsafe { avx512::gemm_mk8x16_f64(a, lda, b, ldb, c, ldc, klen) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: Avx2 implies runtime-detected AVX2+FMA; the four
            // quadrant calls cover rows {0..4, 4..8} × cols {0..8, 8..16}
            // of the tile bounded by the asserts above.
            unsafe {
                avx2::gemm_mk4x8_f64(a, lda, b, ldb, c, ldc, klen);
                avx2::gemm_mk4x8_f64(a, lda, &b[8..], ldb, &mut c[8..], ldc, klen);
                avx2::gemm_mk4x8_f64(&a[4 * lda..], lda, b, ldb, &mut c[4 * ldc..], ldc, klen);
                avx2::gemm_mk4x8_f64(
                    &a[4 * lda..],
                    lda,
                    &b[8..],
                    ldb,
                    &mut c[4 * ldc + 8..],
                    ldc,
                    klen,
                );
            }
        }
        _ => {
            for r in 0..8 {
                for j in 0..16 {
                    let mut acc = c[r * ldc + j];
                    for ki in 0..klen {
                        acc = a[r * lda + ki].mul_add(b[ki * ldb + j], acc);
                    }
                    c[r * ldc + j] = acc;
                }
            }
        }
    }
}

/// 8×16 f32 micro-kernel tile update (fused, ascending `ki`); see
/// [`gemm_mk8x16_f64`] for the bit-identity argument.
#[inline]
#[allow(clippy::too_many_arguments)] // standard GEMM micro-kernel signature
pub fn gemm_mk8x16_f32(
    lvl: SimdLevel,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    klen: usize,
) {
    assert!(klen > 0 && lda >= klen && ldb >= 16 && ldc >= 16, "gemm_mk8x16 bad strides");
    assert!(a.len() >= 7 * lda + klen, "gemm_mk8x16 lhs tile out of bounds");
    assert!(b.len() >= (klen - 1) * ldb + 16, "gemm_mk8x16 rhs tile out of bounds");
    assert!(c.len() >= 7 * ldc + 16, "gemm_mk8x16 out tile out of bounds");
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 =>
        // SAFETY: Avx512 implies runtime-detected AVX-512F; the asserts
        // above bound every access.
        unsafe { avx512::gemm_mk8x16_f32(a, lda, b, ldb, c, ldc, klen) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: Avx2 implies runtime-detected AVX2+FMA; the two
            // half calls cover cols {0..8, 8..16} of the asserted tile.
            unsafe {
                avx2::gemm_mk8x8_f32(a, lda, b, ldb, c, ldc, klen);
                avx2::gemm_mk8x8_f32(a, lda, &b[8..], ldb, &mut c[8..], ldc, klen);
            }
        }
        _ => {
            for r in 0..8 {
                for j in 0..16 {
                    let mut acc = c[r * ldc + j];
                    for ki in 0..klen {
                        acc = a[r * lda + ki].mul_add(b[ki * ldb + j], acc);
                    }
                    c[r * ldc + j] = acc;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// AVX-512 implementations: only the GEMM micro-kernels, where the
// 512-bit registers double FMA throughput. One (or two) zmm
// accumulators per C row, same ascending-ki fused chains as the
// AVX2/scalar paths.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use core::arch::x86_64::*;

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn gemm_mk8x8_f64(
        a: &[f64],
        lda: usize,
        b: &[f64],
        ldb: usize,
        c: &mut [f64],
        ldc: usize,
        klen: usize,
    ) {
        // SAFETY: the public dispatcher asserts rows 0..8 × ki 0..klen
        // of `a`, ki 0..klen × cols 0..8 of `b`, and rows 0..8 × cols
        // 0..8 of `c` are in bounds; every access stays in that range.
        unsafe {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let cp = c.as_mut_ptr();
            let mut acc = [_mm512_setzero_pd(); 8];
            for (r, accr) in acc.iter_mut().enumerate() {
                *accr = _mm512_loadu_pd(cp.add(r * ldc));
            }
            for ki in 0..klen {
                let bvec = _mm512_loadu_pd(bp.add(ki * ldb));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = _mm512_set1_pd(*ap.add(r * lda + ki));
                    *accr = _mm512_fmadd_pd(av, bvec, *accr);
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                _mm512_storeu_pd(cp.add(r * ldc), *accr);
            }
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn gemm_mk8x16_f64(
        a: &[f64],
        lda: usize,
        b: &[f64],
        ldb: usize,
        c: &mut [f64],
        ldc: usize,
        klen: usize,
    ) {
        // SAFETY: the public dispatcher asserts rows 0..8 × ki 0..klen
        // of `a`, ki 0..klen × cols 0..16 of `b`, and rows 0..8 × cols
        // 0..16 of `c` are in bounds; every access stays in that range.
        unsafe {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let cp = c.as_mut_ptr();
            // Two zmm accumulators per C row: 16 of the 32 AVX-512
            // registers, leaving room for the two B vectors and the
            // broadcast without spilling.
            let mut lo = [_mm512_setzero_pd(); 8];
            let mut hi = [_mm512_setzero_pd(); 8];
            for r in 0..8 {
                lo[r] = _mm512_loadu_pd(cp.add(r * ldc));
                hi[r] = _mm512_loadu_pd(cp.add(r * ldc + 8));
            }
            for ki in 0..klen {
                let b0 = _mm512_loadu_pd(bp.add(ki * ldb));
                let b1 = _mm512_loadu_pd(bp.add(ki * ldb + 8));
                for r in 0..8 {
                    let av = _mm512_set1_pd(*ap.add(r * lda + ki));
                    lo[r] = _mm512_fmadd_pd(av, b0, lo[r]);
                    hi[r] = _mm512_fmadd_pd(av, b1, hi[r]);
                }
            }
            for r in 0..8 {
                _mm512_storeu_pd(cp.add(r * ldc), lo[r]);
                _mm512_storeu_pd(cp.add(r * ldc + 8), hi[r]);
            }
        }
    }

    // SAFETY: caller must have runtime-detected the target features
    // named in the attribute below (every dispatcher's `level()` value
    // guarantees this) and upheld the slice-length contract asserted
    // at the dispatch site.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn gemm_mk8x16_f32(
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        klen: usize,
    ) {
        // SAFETY: the public dispatcher asserts rows 0..8 × ki 0..klen
        // of `a`, ki 0..klen × cols 0..16 of `b`, and rows 0..8 × cols
        // 0..16 of `c` are in bounds; every access stays in that range.
        unsafe {
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let cp = c.as_mut_ptr();
            let mut acc = [_mm512_setzero_ps(); 8];
            for (r, accr) in acc.iter_mut().enumerate() {
                *accr = _mm512_loadu_ps(cp.add(r * ldc));
            }
            for ki in 0..klen {
                let bvec = _mm512_loadu_ps(bp.add(ki * ldb));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = _mm512_set1_ps(*ap.add(r * lda + ki));
                    *accr = _mm512_fmadd_ps(av, bvec, *accr);
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                _mm512_storeu_ps(cp.add(r * ldc), *accr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_levels() -> Vec<SimdLevel> {
        let mut ls = vec![SimdLevel::Scalar];
        if hw_level() >= SimdLevel::Avx2 {
            ls.push(SimdLevel::Avx2);
        }
        if hw_level() >= SimdLevel::Avx512 {
            ls.push(SimdLevel::Avx512);
        }
        ls
    }

    fn series(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn level_name_round_trips() {
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
    }

    #[test]
    fn axpy_matches_plain_loop_on_all_lengths() {
        for lvl in both_levels() {
            for n in [0, 1, 3, 4, 7, 8, 33] {
                let x = series(n, |i| (i as f64 * 0.7).sin());
                let mut y = series(n, |i| i as f64 * 0.01 - 0.3);
                let mut want = y.clone();
                for (w, xv) in want.iter_mut().zip(&x) {
                    *w += 1.25 * xv;
                }
                axpy_f64_with(lvl, &mut y, &x, 1.25);
                assert_eq!(y, want, "level {lvl:?} n {n}");
            }
        }
    }

    #[test]
    fn dispatch_levels_agree_bitwise_on_reductions() {
        let a = series(1031, |i| ((i * 37 % 101) as f64 - 50.0) * 0.013);
        let b = series(1031, |i| ((i * 53 % 97) as f64 - 48.0) * 0.017);
        let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let levels = both_levels();
        for pair in levels.windows(2) {
            assert_eq!(
                dot_f64_with(pair[0], &a, &b).to_bits(),
                dot_f64_with(pair[1], &a, &b).to_bits()
            );
            assert_eq!(
                dot_f32_with(pair[0], &a32, &b32).to_bits(),
                dot_f32_with(pair[1], &a32, &b32).to_bits()
            );
            assert_eq!(
                sum_f32_with(pair[0], &a32).to_bits(),
                sum_f32_with(pair[1], &a32).to_bits()
            );
            assert_eq!(
                sumsq_centered_f32_with(pair[0], &a32, 0.25).to_bits(),
                sumsq_centered_f32_with(pair[1], &a32, 0.25).to_bits()
            );
        }
    }

    #[test]
    fn ppv_max_counts_and_maxes() {
        for lvl in both_levels() {
            let v = series(129, |i| ((i as f64) * 0.9).sin() - 0.1);
            let (ppv, max) = ppv_max_f64_with(lvl, &v);
            let want_ppv = v.iter().filter(|&&x| x > 0.0).count();
            let want_max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(ppv, want_ppv, "level {lvl:?}");
            assert_eq!(max, want_max, "level {lvl:?}");
        }
        assert_eq!(ppv_max_f64(&[]), (0, f64::NEG_INFINITY));
    }

    #[test]
    fn masked_ops_preserve_nan_bits() {
        for lvl in both_levels() {
            let template = [1.0, f64::NAN, -2.0, 3.5, f64::NAN, 0.0, 4.0, -1.0, 9.0];
            let mut v = template;
            scale_masked_f64_with(lvl, &mut v, 2.0);
            assert_eq!(v[0], 2.0);
            assert_eq!(v[1].to_bits(), template[1].to_bits(), "level {lvl:?}");
            assert_eq!(v[2], -4.0);
            let mut w = template;
            let delta = [0.5; 9];
            add_masked_f64_with(lvl, &mut w, &delta);
            assert_eq!(w[0], 1.5);
            assert_eq!(w[4].to_bits(), template[4].to_bits(), "level {lvl:?}");
        }
    }

    #[test]
    fn min2_matches_scalar_min() {
        for lvl in both_levels() {
            let a = series(37, |i| (i as f64 * 1.3).cos());
            let mut b = series(37, |i| (i as f64 * 0.7).sin());
            b[5] = f64::INFINITY;
            let mut out = vec![0.0; 37];
            min2_f64_with(lvl, &mut out, &a, &b);
            for i in 0..37 {
                assert_eq!(out[i], a[i].min(b[i]), "level {lvl:?} i {i}");
            }
        }
    }

    #[test]
    fn lerp_resample_matches_lerp_at_formula() {
        for lvl in both_levels() {
            let src = series(23, |i| (i as f64 * 0.31).sin() * 2.0);
            for olen in [1usize, 2, 4, 9, 23, 64] {
                let mut out = vec![0.0; olen];
                lerp_resample_f64_with(lvl, &src, &mut out);
                let max = (src.len() - 1) as f64;
                let scale = if olen == 1 { 0.0 } else { max / (olen - 1) as f64 };
                for (i, &o) in out.iter().enumerate() {
                    let t = i as f64 * scale;
                    let want = if t <= 0.0 {
                        src[0]
                    } else if t >= max {
                        src[src.len() - 1]
                    } else {
                        let j = t.floor() as usize;
                        let frac = t - j as f64;
                        src[j] * (1.0 - frac) + src[j + 1] * frac
                    };
                    assert_eq!(o.to_bits(), want.to_bits(), "level {lvl:?} olen {olen} i {i}");
                }
            }
        }
    }

    #[test]
    fn gemm_microkernels_agree_across_levels() {
        let (lda, ldb, ldc, klen) = (19, 11, 9, 17);
        let a = series(8 * lda, |i| ((i * 29 % 31) as f64 - 15.0) * 0.05);
        let b = series(klen * ldb, |i| ((i * 17 % 23) as f64 - 11.0) * 0.04);
        let c0 = series(8 * ldc, |i| (i as f64 * 0.11).sin());
        let mut outs: Vec<Vec<f64>> = Vec::new();
        for lvl in both_levels() {
            let mut c = c0.clone();
            gemm_mk8x8_f64(lvl, &a, lda, &b, ldb, &mut c, ldc, klen);
            outs.push(c);
        }
        for pair in outs.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
        // And the same for f32.
        let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let c32: Vec<f32> = c0.iter().map(|&v| v as f32).collect();
        let mut outs32: Vec<Vec<f32>> = Vec::new();
        for lvl in both_levels() {
            let mut c = c32.clone();
            gemm_mk8x8_f32(lvl, &a32, lda, &b32, ldb, &mut c, ldc, klen);
            outs32.push(c);
        }
        for pair in outs32.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn bn_forward_normalises() {
        for lvl in both_levels() {
            let x: Vec<f32> = (0..21).map(|i| i as f32 * 0.5 - 3.0).collect();
            let mean = x.iter().sum::<f32>() / x.len() as f32;
            let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / x.len() as f32;
            let inv_std = 1.0 / var.sqrt();
            let mut xhat = vec![0.0f32; x.len()];
            let mut out = vec![0.0f32; x.len()];
            bn_forward_f32_with(lvl, &x, mean, inv_std, 2.0, 0.5, &mut xhat, &mut out);
            for i in 0..x.len() {
                assert!((xhat[i] - (x[i] - mean) * inv_std).abs() < 1e-6, "level {lvl:?}");
                assert!((out[i] - (2.0 * xhat[i] + 0.5)).abs() < 1e-6, "level {lvl:?}");
            }
        }
    }
}
