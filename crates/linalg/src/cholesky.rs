//! Cholesky factorisation of symmetric positive-definite matrices.
//!
//! Used by the structure-preserving oversamplers (OHIT, INOS) to draw
//! correlated Gaussian samples `x = μ + L z`, and by the ridge solver as a
//! fast path when no LOOCV sweep is needed.

use crate::matrix::Matrix;

/// Failure modes of the Cholesky factorisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CholeskyError {
    /// The input matrix is not square.
    NotSquare,
    /// A non-positive pivot was encountered at the given index: the matrix
    /// is not positive definite (within numerical tolerance).
    NotPositiveDefinite { pivot: usize },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotSquare => write!(f, "cholesky: matrix is not square"),
            Self::NotPositiveDefinite { pivot } => {
                write!(f, "cholesky: non-positive pivot at index {pivot}")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// The upper triangle of the returned matrix is zero.
pub fn cholesky(a: &Matrix) -> Result<Matrix, CholeskyError> {
    if !a.is_square() {
        return Err(CholeskyError::NotSquare);
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut diag = a[(j, j)];
        for k in 0..j {
            diag -= l[(j, k)] * l[(j, k)];
        }
        if diag <= 0.0 || !diag.is_finite() {
            return Err(CholeskyError::NotPositiveDefinite { pivot: j });
        }
        let ljj = diag.sqrt();
        l[(j, j)] = ljj;
        for i in (j + 1)..n {
            let mut v = a[(i, j)];
            for k in 0..j {
                v -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = v / ljj;
        }
    }
    Ok(l)
}

/// Cholesky with diagonal jitter: retries with geometrically increasing
/// ridge `εI` until the factorisation succeeds.
///
/// Structure-preserving oversampling routinely produces covariance
/// estimates that are only positive *semi*-definite (more dimensions than
/// cluster members); the paper's OHIT reference handles this with
/// regularisation, which this helper mirrors. Returns the factor and the
/// jitter that was finally applied.
pub fn cholesky_jittered(a: &Matrix, max_tries: usize) -> Result<(Matrix, f64), CholeskyError> {
    let scale = (a.trace() / a.rows().max(1) as f64).abs().max(1e-12);
    let mut jitter = 0.0;
    let mut attempt = 0;
    loop {
        let mut m = a.clone();
        if jitter > 0.0 {
            m.add_diagonal(jitter);
        }
        match cholesky(&m) {
            Ok(l) => return Ok((l, jitter)),
            Err(CholeskyError::NotSquare) => return Err(CholeskyError::NotSquare),
            Err(_) if attempt < max_tries => {
                jitter = if jitter == 0.0 { scale * 1e-10 } else { jitter * 10.0 };
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Solve `A x = b` for symmetric positive-definite `A` via Cholesky.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, CholeskyError> {
    let l = cholesky(a)?;
    let y = forward_substitute(&l, b);
    Ok(back_substitute_transposed(&l, &y))
}

/// Solve `L y = b` for lower-triangular `L`.
pub fn forward_substitute(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n, "forward_substitute dimension mismatch");
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut v = b[i];
        for k in 0..i {
            v -= l[(i, k)] * y[k];
        }
        y[i] = v / l[(i, i)];
    }
    y
}

/// Solve `Lᵀ x = y` given the *lower*-triangular `L`.
pub fn back_substitute_transposed(l: &Matrix, y: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(y.len(), n, "back_substitute dimension mismatch");
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut v = y[i];
        for k in (i + 1)..n {
            v -= l[(k, i)] * x[k];
        }
        x[i] = v / l[(i, i)];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I is SPD for any B.
        let b = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![-1.0, 0.3, 2.0],
            vec![0.7, -0.2, 1.1],
        ]);
        let mut a = b.gram();
        a.add_diagonal(1.0);
        a
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let back = l.matmul(&l.transpose());
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn factor_is_lower_triangular() {
        let l = cholesky(&spd3()).unwrap();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(CholeskyError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert_eq!(cholesky(&Matrix::zeros(2, 3)), Err(CholeskyError::NotSquare));
    }

    #[test]
    fn solve_spd_matches_matvec() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{x:?} != {x_true:?}");
        }
    }

    #[test]
    fn jittered_recovers_from_semidefinite() {
        // Rank-1 PSD matrix: plain Cholesky fails, jittered succeeds.
        let v = [1.0, 2.0, 3.0];
        let a = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        assert!(cholesky(&a).is_err());
        let (l, jitter) = cholesky_jittered(&a, 12).unwrap();
        assert!(jitter > 0.0);
        let back = l.matmul(&l.transpose());
        assert!(back.approx_eq(&a, 1e-3 * a.max_abs()));
    }
}
