//! Principal component analysis on top of the SVD.
//!
//! Used by the dataset-characteristics diagnostics and by the INOS/SPO
//! structure-preserving oversampler, which splits the covariance into a
//! reliable eigen-subspace and a regularised residual subspace.

use crate::matrix::Matrix;
use crate::svd::Svd;

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-feature means subtracted before projection.
    pub mean: Vec<f64>,
    /// Principal axes as columns (`p × k`).
    pub components: Matrix,
    /// Variance explained by each component, descending.
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit a PCA with at most `k` components on the rows of `x`.
    ///
    /// # Panics
    /// Panics when `x` has no rows.
    pub fn fit(x: &Matrix, k: usize) -> Self {
        let n = x.rows();
        let p = x.cols();
        assert!(n > 0, "PCA on an empty matrix");
        let mean: Vec<f64> = (0..p)
            .map(|j| tsda_core::math::sum_stable((0..n).map(|i| x[(i, j)])) / n as f64)
            .collect();
        let centered = Matrix::from_fn(n, p, |i, j| x[(i, j)] - mean[j]);
        let svd = Svd::new(&centered);
        let k = k.min(svd.singular_values.len());
        let components = Matrix::from_fn(p, k, |i, j| svd.v[(i, j)]);
        let explained_variance = svd.singular_values[..k]
            .iter()
            .map(|s| s * s / n as f64)
            .collect();
        Self { mean, components, explained_variance }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// Project one observation onto the component space.
    pub fn transform_one(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "PCA transform dimension mismatch");
        let k = self.n_components();
        let mut out = vec![0.0; k];
        for (i, (&xi, &mi)) in x.iter().zip(&self.mean).enumerate() {
            let c = xi - mi;
            if c == 0.0 {
                continue;
            }
            for (j, o) in out.iter_mut().enumerate() {
                *o += c * self.components[(i, j)];
            }
        }
        out
    }

    /// Map a point in component space back to the original space.
    pub fn inverse_transform_one(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.n_components(), "PCA inverse dimension mismatch");
        let p = self.mean.len();
        let mut out = self.mean.clone();
        for (j, &zj) in z.iter().enumerate() {
            if zj == 0.0 {
                continue;
            }
            for (i, o) in out.iter_mut().enumerate().take(p) {
                *o += zj * self.components[(i, j)];
            }
        }
        out
    }

    /// Fraction of total variance captured by the retained components.
    ///
    /// `total_variance` is the sum of per-feature variances of the
    /// training data (pass it from the caller, which usually has it).
    pub fn explained_ratio(&self, total_variance: f64) -> f64 {
        if total_variance <= 0.0 {
            return 0.0;
        }
        tsda_core::math::sum_stable(self.explained_variance.iter().copied()) / total_variance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// Data generated on a line in 3-D: one component must explain ~all
    /// the variance and reconstruction must be near-exact.
    #[test]
    fn recovers_one_dimensional_structure() {
        let mut rng = StdRng::seed_from_u64(42);
        let dir = [1.0, -2.0, 0.5];
        let mut rows = Vec::new();
        for _ in 0..100 {
            let t: f64 = rng.gen_range(-1.0..1.0);
            rows.push(dir.iter().map(|d| t * d + 3.0).collect::<Vec<_>>());
        }
        let x = Matrix::from_rows(&rows);
        let pca = Pca::fit(&x, 2);
        let ev = &pca.explained_variance;
        assert!(ev[0] > 100.0 * ev[1].max(1e-12), "{ev:?}");
        let orig = x.row(0);
        let z = pca.transform_one(orig);
        let back = pca.inverse_transform_one(&z);
        for (a, b) in orig.iter().zip(&back) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn transform_of_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Matrix::from_fn(50, 4, |_, _| rng.gen_range(-1.0..1.0));
        let pca = Pca::fit(&x, 3);
        let z = pca.transform_one(&pca.mean.clone());
        assert!(z.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn explained_variance_descending() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Matrix::from_fn(60, 5, |_, _| rng.gen_range(-1.0..1.0));
        let pca = Pca::fit(&x, 5);
        for w in pca.explained_variance.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn k_is_clamped_to_available_rank() {
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let pca = Pca::fit(&x, 10);
        assert_eq!(pca.n_components(), 2);
    }
}
