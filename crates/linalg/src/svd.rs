//! Thin singular value decomposition via one-sided Jacobi rotations.
//!
//! PCA and the GRATIS-style generators need singular vectors of tall data
//! matrices; one-sided Jacobi orthogonalises the columns of `A` directly,
//! which is accurate for the modest column counts we use (≤ a few
//! hundred features).

use crate::matrix::Matrix;

/// Thin SVD `A = U diag(σ) Vᵀ` with `U: m×k`, `V: n×k`, `k = min(m, n)`
/// (columns of `U`/`V` beyond the rank carry zero singular values).
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors as columns (`m × n` for an `m × n` input with
    /// `m ≥ n`; columns with zero singular value are zero vectors).
    pub u: Matrix,
    /// Singular values, descending.
    pub singular_values: Vec<f64>,
    /// Right singular vectors as columns.
    pub v: Matrix,
}

impl Svd {
    /// Compute the thin SVD of `a`.
    ///
    /// Implementation: one-sided Jacobi on the columns of `a` (transposing
    /// first when `m < n`, then swapping the roles of `u` and `v`).
    pub fn new(a: &Matrix) -> Self {
        if a.rows() >= a.cols() {
            Self::tall(a)
        } else {
            let t = Self::tall(&a.transpose());
            Svd { u: t.v, singular_values: t.singular_values, v: t.u }
        }
    }

    fn tall(a: &Matrix) -> Self {
        let m = a.rows();
        let n = a.cols();
        // Work on columns: u starts as a copy of A, V accumulates rotations.
        let mut u = a.clone();
        let mut v = Matrix::identity(n);
        let tol = 1e-14;

        for _sweep in 0..60 {
            let mut converged = true;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Compute the 2x2 Gram block for columns p, q.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        app += up * up;
                        aqq += uq * uq;
                        apq += up * uq;
                    }
                    if apq.abs() <= tol * (app * aqq).sqrt().max(1e-300) {
                        continue;
                    }
                    converged = false;
                    let theta = 0.5 * (aqq - app) / apq;
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        u[(i, p)] = c * up - s * uq;
                        u[(i, q)] = s * up + c * uq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if converged {
                break;
            }
        }

        // Column norms are the singular values; normalise U's columns.
        let mut sigma: Vec<f64> = (0..n)
            .map(|j| tsda_core::math::sum_stable((0..m).map(|i| u[(i, j)] * u[(i, j)])).sqrt())
            .collect();
        for j in 0..n {
            if sigma[j] > 1e-300 {
                for i in 0..m {
                    u[(i, j)] /= sigma[j];
                }
            }
        }
        // Sort descending by singular value.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| sigma[j].total_cmp(&sigma[i]));
        let u_sorted = Matrix::from_fn(m, n, |r, c| u[(r, order[c])]);
        let v_sorted = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);
        sigma = order.iter().map(|&i| sigma[i]).collect();
        Svd { u: u_sorted, singular_values: sigma, v: v_sorted }
    }

    /// Numerical rank at relative tolerance `rtol` (relative to σ₁).
    pub fn rank(&self, rtol: f64) -> usize {
        let s0 = self.singular_values.first().copied().unwrap_or(0.0);
        self.singular_values.iter().filter(|&&s| s > rtol * s0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(svd: &Svd) -> Matrix {
        let k = svd.singular_values.len();
        let m = svd.u.rows();
        let n = svd.v.rows();
        let mut out = Matrix::zeros(m, n);
        for t in 0..k {
            let s = svd.singular_values[t];
            for i in 0..m {
                for j in 0..n {
                    out[(i, j)] += s * svd.u[(i, t)] * svd.v[(j, t)];
                }
            }
        }
        out
    }

    #[test]
    fn reconstructs_tall_matrix() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
        ]);
        let svd = Svd::new(&a);
        assert!(reconstruct(&svd).approx_eq(&a, 1e-9));
    }

    #[test]
    fn reconstructs_wide_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![-1.0, 3.0, 1.0]]);
        let svd = Svd::new(&a);
        assert!(reconstruct(&svd).approx_eq(&a, 1e-9));
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0], vec![0.0, 1.0]]);
        let svd = Svd::new(&a);
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn rank_detects_deficiency() {
        // Second column is 2x the first → rank 1.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let svd = Svd::new(&a);
        assert_eq!(svd.rank(1e-10), 1);
    }

    #[test]
    fn diag_matrix_singular_values_are_abs_diagonal() {
        let a = Matrix::from_rows(&[vec![-3.0, 0.0], vec![0.0, 2.0]]);
        let svd = Svd::new(&a);
        assert!((svd.singular_values[0] - 3.0).abs() < 1e-10);
        assert!((svd.singular_values[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn u_columns_orthonormal_for_full_rank() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![-1.0, 1.5],
            vec![0.3, 0.9],
        ]);
        let svd = Svd::new(&a);
        let g = svd.u.gram();
        assert!(g.approx_eq(&Matrix::identity(2), 1e-9));
    }
}
