//! Row-major dense `f64` matrix.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64`.
///
/// Sized for the statistical workloads in this workspace: covariance
/// matrices up to a few thousand rows, ROCKET feature matrices, ridge
/// normal equations. Storage is a single `Vec<f64>` so rows are
/// contiguous and matrix-matrix products stay cache-friendly.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Create a matrix from nested row slices.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix product `self * other` via the cache-tiled, pool-parallel
    /// kernel (see [`Matrix::matmul_into`]).
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self * other` written into a caller-owned
    /// output, using the cache-tiled i-k-j GEMM kernel in
    /// [`crate::gemm`], parallelised over row blocks of `out`.
    ///
    /// The result is bit-identical for any thread count: every output
    /// element accumulates its products in ascending-`k` order and
    /// workers write disjoint row blocks.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch or when `out` is not
    /// `self.rows() × other.cols()`.
    ///
    /// Hot path (`tsda_analyze` R3): the allocation-free GEMM entry —
    /// callers own the output buffer, the kernel only writes into it.
    #[doc(alias = "tsda::hot")]
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_into output shape mismatch"
        );
        crate::gemm::gemm_f64(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
    }

    /// Matrix product `self * other` with the pre-GEMM scalar triple
    /// loop. Kept as the reference implementation for the perf baseline
    /// (`tsda-bench`'s `perf_baseline`) and for differential tests; use
    /// [`Matrix::matmul`] everywhere else.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let src = other.row(k);
                let dst = out.row_mut(i);
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += a * s;
                }
            }
        }
        out
    }

    /// Gram matrix `selfᵀ * self` (symmetric, `cols x cols`), computed
    /// by the transpose-free `Aᵀ·B` kernel in [`crate::gemm`] —
    /// parallel over output rows, deterministic for any thread count.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        crate::gemm::gemm_tn_f64(n, self.rows, n, &self.data, &self.data, &mut out.data);
        out
    }

    /// Outer-product Gram matrix `self * selfᵀ` (symmetric, `rows x rows`).
    pub fn gram_rows(&self) -> Matrix {
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let dot: f64 = tsda_core::math::sum_stable(
                    self.row(i).iter().zip(self.row(j)).map(|(a, b)| a * b),
                );
                out[(i, j)] = dot;
                out[(j, i)] = dot;
            }
        }
        out
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Add `s` to every diagonal entry (ridge regularisation).
    pub fn add_diagonal(&mut self, s: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        tsda_core::math::sum_stable(self.data.iter().map(|v| v * v)).sqrt()
    }

    /// Maximum absolute entry; 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// True when `self` and `other` agree entrywise within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Symmetrise in place: `A ← (A + Aᵀ)/2`.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize of a non-square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let m = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = m;
                self[(j, i)] = m;
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        let data = self.data.iter().map(|v| v * s).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matvec_is_noop() {
        let m = Matrix::identity(4);
        let v = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(m.matvec(&v), v);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_is_symmetric_and_matches_explicit_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, -1.0], vec![0.5, 4.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        assert!(g.approx_eq(&explicit, 1e-12));
        assert_eq!(g[(0, 1)], g[(1, 0)]);
    }

    #[test]
    fn gram_rows_matches_explicit_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, -1.0], vec![0.5, 4.0]]);
        let g = a.gram_rows();
        let explicit = a.matmul(&a.transpose());
        assert!(g.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diagonal(2.5);
        assert_eq!(m.trace(), 7.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_panics_on_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn symmetrize_averages_off_diagonal() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![4.0, 3.0]]);
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_fn_fills_row_major() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }
}
