//! Dense linear-algebra substrate for the `tsda` workspace.
//!
//! The paper's pipeline needs a surprising amount of numerical machinery:
//! ridge regression with leave-one-out cross-validation (the classifier
//! behind ROCKET), covariance estimation with shrinkage (OHIT / INOS
//! structure-preserving oversampling), eigendecomposition (imbalance-aware
//! sampling along principal axes), and PCA (diagnostics). None of the
//! crates allowed offline provide these, so this crate implements them
//! from scratch on a small row-major [`Matrix`] type.
//!
//! Everything here is `f64`: the statistical code paths are accuracy
//! sensitive (LOOCV residuals, shrinkage intensities), and the matrices
//! involved are small enough that bandwidth is not a concern. The neural
//! network substrate ([`tsda_neuro`](https://docs.rs/tsda-neuro)) keeps
//! its own `f32` tensors for throughput.
//!
//! This crate is the workspace's single home for `unsafe` code: the
//! [`simd`] module's AVX2 kernels need raw intrinsics, so the former
//! crate-wide `#![forbid(unsafe_code)]` is narrowed to a deny that the
//! `simd` module opts out of locally. Every unsafe block carries a
//! `// SAFETY:` comment enforced by `tsda-analyze` rule U1; the decision
//! is recorded in `analyze.toml`.

#![deny(unsafe_code)]

pub mod cholesky;
pub mod cov;
pub mod eig;
pub mod gemm;
pub mod matrix;
pub mod pca;
#[allow(unsafe_code)]
pub mod simd;
pub mod solve;
pub mod svd;
pub mod vector;

pub use cholesky::CholeskyError;
pub use cov::{covariance_matrix, shrinkage_covariance, ShrinkageCovariance};
pub use eig::SymmetricEig;
pub use matrix::Matrix;
pub use pca::Pca;
pub use solve::{RidgeLoocv, RidgeSolution};
pub use svd::Svd;
