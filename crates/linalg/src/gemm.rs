//! Cache-tiled, pool-parallel GEMM kernels.
//!
//! One kernel family, three operand layouts, two scalar types:
//!
//! * [`gemm_f64`] / [`gemm_f32`] — `C ← A·B` (and the `*_acc` variants
//!   `C += A·B`), i-k-j loop order over row-major slices so the inner
//!   loop runs down a contiguous row of `B` and `C` and
//!   auto-vectorises;
//! * [`gemm_tn_f64`] / [`gemm_tn_f32`] — `C ← Aᵀ·B` without
//!   materialising the transpose (k-i-j order);
//! * [`gemm_nt_acc_f64`] / [`gemm_nt_acc_f32`] — `C += A·Bᵀ` as row-row
//!   dot products (i-j-t order).
//!
//! All variants are **bit-deterministic for any thread count**: each
//! output element accumulates its products in ascending-`k` order no
//! matter how the row blocks are distributed, because parallelism only
//! ever splits the *output rows* (disjoint `C` slices, no reductions).
//! `Conv1d`'s im2col lowering in `tsda-neuro`, `Matrix::matmul`, and
//! `Matrix::gram` all sit on these kernels.

use tsda_core::parallel::Pool;

/// Rows of `C` per parallel work unit (also the i-tile height, sized so
/// an A-tile plus the C rows in flight stay L1/L2-resident).
const MC: usize = 64;

/// Depth of the k-tile: one `KC × n` band of `B` is reused across a
/// whole i-tile before moving on.
const KC: usize = 128;

macro_rules! define_gemm {
    ($nn:ident, $nn_acc:ident, $tn:ident, $nt_acc:ident, $mk:path, $mkw:path, $axpy:path, $dot:path, $t:ty) => {
        /// `c ← a·b` for row-major `a: m×k`, `b: k×n`, `c: m×n`,
        /// parallelised over row blocks of `c`.
        pub fn $nn(m: usize, k: usize, n: usize, a: &[$t], b: &[$t], c: &mut [$t]) {
            c.fill(0.0);
            $nn_acc(m, k, n, a, b, c);
        }

        /// `c += a·b`; see the module docs for determinism guarantees.
        pub fn $nn_acc(m: usize, k: usize, n: usize, a: &[$t], b: &[$t], c: &mut [$t]) {
            assert_eq!(a.len(), m * k, "gemm: lhs buffer is not m*k");
            assert_eq!(b.len(), k * n, "gemm: rhs buffer is not k*n");
            assert_eq!(c.len(), m * n, "gemm: out buffer is not m*n");
            if m == 0 || n == 0 {
                return;
            }
            let lvl = crate::simd::level();
            Pool::global().par_chunks_mut(c, MC * n, |block, c_block| {
                let i0 = block * MC;
                let rows = c_block.len() / n;
                let mut kk = 0;
                while kk < k {
                    let k_hi = (kk + KC).min(k);
                    // 8×8 register micro-kernel (`simd::gemm_mk8x8_*`):
                    // an 8-row × 8-column C sub-block lives in vector
                    // accumulators across the whole k-tile, so C is
                    // read/written once per tile and every B element
                    // feeds eight output rows. Each C element still
                    // accumulates in ascending-k order (tiles ascending,
                    // `ki` ascending inside, fused multiply-add on both
                    // dispatch paths), and tile boundaries depend only
                    // on the shapes — never on the worker count — so
                    // results are bit-identical for any number of
                    // threads and across dispatch levels.
                    // B strips are packed into a stack-resident KC×8
                    // buffer once per (k-tile, column-strip) and reused
                    // by every 8-row tile in the block: the micro-kernel
                    // then streams B from contiguous L1 lines instead of
                    // `n`-strided ones. Packing is a pure copy, so the
                    // per-element arithmetic is unchanged.
                    let mut bpack = [0.0 as $t; KC * 16];
                    let full_rows = rows - rows % 8;
                    let mut j0 = 0;
                    while j0 + 16 <= n {
                        for (row, ki) in (kk..k_hi).enumerate() {
                            bpack[row * 16..row * 16 + 16]
                                .copy_from_slice(&b[ki * n + j0..ki * n + j0 + 16]);
                        }
                        let mut bi = 0;
                        while bi + 8 <= rows {
                            $mkw(
                                lvl,
                                &a[(i0 + bi) * k + kk..],
                                k,
                                &bpack,
                                16,
                                &mut c_block[bi * n + j0..],
                                n,
                                k_hi - kk,
                            );
                            bi += 8;
                        }
                        j0 += 16;
                    }
                    if j0 + 8 <= n {
                        for (row, ki) in (kk..k_hi).enumerate() {
                            bpack[row * 8..row * 8 + 8]
                                .copy_from_slice(&b[ki * n + j0..ki * n + j0 + 8]);
                        }
                        let mut bi = 0;
                        while bi + 8 <= rows {
                            $mk(
                                lvl,
                                &a[(i0 + bi) * k + kk..],
                                k,
                                &bpack,
                                8,
                                &mut c_block[bi * n + j0..],
                                n,
                                k_hi - kk,
                            );
                            bi += 8;
                        }
                        j0 += 8;
                    }
                    // Column remainder: plain ascending-k dots for every
                    // full 8-row tile's trailing columns.
                    if j0 < n {
                        for bi in (0..full_rows).step_by(8) {
                            for r in 0..8 {
                                let arow = &a[(i0 + bi + r) * k..(i0 + bi + r) * k + k];
                                for j in j0..n {
                                    let mut acc = c_block[(bi + r) * n + j];
                                    for ki in kk..k_hi {
                                        acc += arow[ki] * b[ki * n + j];
                                    }
                                    c_block[(bi + r) * n + j] = acc;
                                }
                            }
                        }
                    }
                    // Row remainder: single-row axpy, same k order
                    // (unfused on both dispatch paths — bit-identical to
                    // the pre-SIMD scalar loop).
                    for bi in full_rows..rows {
                        let arow = &a[(i0 + bi) * k..(i0 + bi) * k + k];
                        let crow = &mut c_block[bi * n..(bi + 1) * n];
                        for ki in kk..k_hi {
                            $axpy(lvl, crow, &b[ki * n..ki * n + n], arow[ki]);
                        }
                    }
                    kk = k_hi;
                }
            });
        }

        /// `c ← aᵀ·b` for row-major `a: k×m`, `b: k×n`, `c: m×n` — the
        /// Gram-style product, without materialising `aᵀ`.
        pub fn $tn(m: usize, k: usize, n: usize, a: &[$t], b: &[$t], c: &mut [$t]) {
            assert_eq!(a.len(), k * m, "gemm_tn: lhs buffer is not k*m");
            assert_eq!(b.len(), k * n, "gemm_tn: rhs buffer is not k*n");
            assert_eq!(c.len(), m * n, "gemm_tn: out buffer is not m*n");
            c.fill(0.0);
            if m == 0 || n == 0 {
                return;
            }
            // Split output rows (columns of `a`) across workers; every
            // worker streams all of `a`/`b` but writes disjoint rows.
            // Unfused vectorised axpy: bit-identical to the pre-SIMD
            // loop, which the ridge/Gram goldens pin.
            let lvl = crate::simd::level();
            Pool::global().par_chunks_mut(c, MC * n, |block, c_block| {
                let i0 = block * MC;
                let rows = c_block.len() / n;
                for ki in 0..k {
                    let arow = &a[ki * m..ki * m + m];
                    let brow = &b[ki * n..ki * n + n];
                    for bi in 0..rows {
                        let crow = &mut c_block[bi * n..(bi + 1) * n];
                        $axpy(lvl, crow, brow, arow[i0 + bi]);
                    }
                }
            });
        }

        /// `c += a·bᵀ` for row-major `a: m×k`, `b: n×k`, `c: m×n`, as
        /// row-row dot products (the im2col weight-gradient shape).
        pub fn $nt_acc(m: usize, k: usize, n: usize, a: &[$t], b: &[$t], c: &mut [$t]) {
            assert_eq!(a.len(), m * k, "gemm_nt: lhs buffer is not m*k");
            assert_eq!(b.len(), n * k, "gemm_nt: rhs buffer is not n*k");
            assert_eq!(c.len(), m * n, "gemm_nt: out buffer is not m*n");
            if m == 0 || n == 0 {
                return;
            }
            // Striped-tree fused dot (`simd::dot_*`): the reduction
            // order is fixed by the kernel, identical across dispatch
            // levels and thread counts.
            let lvl = crate::simd::level();
            Pool::global().par_chunks_mut(c, n, |i, crow| {
                let arow = &a[i * k..i * k + k];
                for (j, cv) in crow.iter_mut().enumerate() {
                    *cv += $dot(lvl, arow, &b[j * k..j * k + k]);
                }
            });
        }
    };
}

define_gemm!(
    gemm_f64,
    gemm_acc_f64,
    gemm_tn_f64,
    gemm_nt_acc_f64,
    crate::simd::gemm_mk8x8_f64,
    crate::simd::gemm_mk8x16_f64,
    crate::simd::axpy_f64_with,
    crate::simd::dot_f64_with,
    f64
);
define_gemm!(
    gemm_f32,
    gemm_acc_f32,
    gemm_tn_f32,
    gemm_nt_acc_f32,
    crate::simd::gemm_mk8x8_f32,
    crate::simd::gemm_mk8x16_f32,
    crate::simd::axpy_f32_with,
    crate::simd::dot_f32_with,
    f32
);

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn filled(len: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..len).map(f).collect()
    }

    #[test]
    fn nn_matches_naive_on_awkward_shapes() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (65, 130, 7), (64, 128, 64), (2, 300, 9)] {
            let a = filled(m * k, |i| ((i * 37 % 19) as f64 - 9.0) * 0.25);
            let b = filled(k * n, |i| ((i * 53 % 23) as f64 - 11.0) * 0.125);
            let mut c = vec![f64::NAN; m * n];
            gemm_f64(m, k, n, &a, &b, &mut c);
            let want = naive(m, k, n, &a, &b);
            assert!(
                c.iter().zip(&want).all(|(x, y)| (x - y).abs() < 1e-9),
                "shape {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let (k, m, n) = (33, 17, 21);
        let a = filled(k * m, |i| (i as f64 * 0.1).sin());
        let b = filled(k * n, |i| (i as f64 * 0.2).cos());
        let mut at = vec![0.0; m * k];
        for ki in 0..k {
            for i in 0..m {
                at[i * k + ki] = a[ki * m + i];
            }
        }
        let mut c_tn = vec![0.0; m * n];
        gemm_tn_f64(m, k, n, &a, &b, &mut c_tn);
        let want = naive(m, k, n, &at, &b);
        assert!(c_tn.iter().zip(&want).all(|(x, y)| (x - y).abs() < 1e-9));
    }

    #[test]
    fn nt_matches_explicit_transpose_and_accumulates() {
        let (m, k, n) = (9, 40, 13);
        let a = filled(m * k, |i| (i as f64 * 0.3).sin());
        let b = filled(n * k, |i| (i as f64 * 0.7).cos());
        let mut bt = vec![0.0; k * n];
        for j in 0..n {
            for ki in 0..k {
                bt[ki * n + j] = b[j * k + ki];
            }
        }
        let mut c = vec![1.0; m * n];
        gemm_nt_acc_f64(m, k, n, &a, &b, &mut c);
        let want = naive(m, k, n, &a, &bt);
        assert!(c.iter().zip(&want).all(|(x, y)| (x - (y + 1.0)).abs() < 1e-9));
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let (m, k, n) = (97, 211, 83);
        let a = filled(m * k, |i| ((i * 29 % 101) as f64 - 50.0) * 0.013);
        let b = filled(k * n, |i| ((i * 31 % 97) as f64 - 48.0) * 0.017);
        let mut reference = vec![0.0; m * n];
        tsda_core::parallel::ThreadLimit::set(1);
        gemm_f64(m, k, n, &a, &b, &mut reference);
        for threads in [2, 4, 16] {
            tsda_core::parallel::ThreadLimit::set(threads);
            let mut c = vec![0.0; m * n];
            gemm_f64(m, k, n, &a, &b, &mut c);
            assert_eq!(c, reference, "threads = {threads}");
        }
        tsda_core::parallel::ThreadLimit::clear();
    }

    #[test]
    fn f32_kernels_agree_with_f64_within_precision() {
        let (m, k, n) = (20, 30, 10);
        let a64 = filled(m * k, |i| ((i % 11) as f64 - 5.0) * 0.5);
        let b64 = filled(k * n, |i| ((i % 7) as f64 - 3.0) * 0.5);
        let a32: Vec<f32> = a64.iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b64.iter().map(|&v| v as f32).collect();
        let mut c32 = vec![0.0f32; m * n];
        gemm_f32(m, k, n, &a32, &b32, &mut c32);
        let want = naive(m, k, n, &a64, &b64);
        assert!(c32
            .iter()
            .zip(&want)
            .all(|(x, y)| (f64::from(*x) - y).abs() < 1e-3));
    }
}
