//! Eigendecomposition of symmetric matrices via the cyclic Jacobi method.
//!
//! The Jacobi method is slower asymptotically than Householder + QL, but
//! it is simple, unconditionally stable, and produces orthogonal
//! eigenvectors to machine precision — exactly what the ridge LOOCV
//! solver and the covariance-based oversamplers need on matrices of a few
//! hundred rows.

use crate::matrix::Matrix;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are sorted in **descending** order; `vectors` stores the
/// corresponding eigenvectors as *columns*.
#[derive(Debug, Clone)]
pub struct SymmetricEig {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, aligned with `values`.
    pub vectors: Matrix,
}

impl SymmetricEig {
    /// Decompose a symmetric matrix.
    ///
    /// The input is symmetrised (averaged with its transpose) first, so
    /// tiny asymmetries from accumulated floating-point error are
    /// harmless.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn new(a: &Matrix) -> Self {
        assert!(a.is_square(), "eigendecomposition of a non-square matrix");
        let n = a.rows();
        let mut m = a.clone();
        m.symmetrize();
        let mut v = Matrix::identity(n);

        // Cyclic Jacobi sweeps until all off-diagonal mass is negligible.
        let tol = 1e-14 * m.frobenius_norm().max(1e-300);
        for _sweep in 0..100 {
            let off = tsda_core::math::sum_stable((0..n).flat_map(|i| {
                let m = &m;
                ((i + 1)..n).map(move |j| m[(i, j)] * m[(i, j)])
            }));
            if off.sqrt() <= tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = 0.5 * (aqq - app) / apq;
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Apply the rotation G(p,q,θ) on both sides of m, and
                    // accumulate it into v.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }

        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| m[(j, j)].total_cmp(&m[(i, i)]));
        let values = order.iter().map(|&i| m[(i, i)]).collect();
        let vectors = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);
        Self { values, vectors }
    }

    /// Reconstruct `V diag(f(λ)) Vᵀ` — used for matrix functions such as
    /// the inverse-with-ridge in the LOOCV solver.
    pub fn reconstruct(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let n = self.values.len();
        let mut out = Matrix::zeros(n, n);
        for (k, &lam) in self.values.iter().enumerate() {
            let flam = f(lam);
            if flam == 0.0 {
                continue;
            }
            for i in 0..n {
                let vik = self.vectors[(i, k)];
                if vik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += flam * vik * self.vectors[(j, k)];
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym3() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -0.7],
            vec![0.5, -0.7, 2.0],
        ])
    }

    #[test]
    fn reconstructs_input() {
        let a = sym3();
        let e = SymmetricEig::new(&a);
        let back = e.reconstruct(|l| l);
        assert!(back.approx_eq(&a, 1e-9), "{back:?}");
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let e = SymmetricEig::new(&sym3());
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let e = SymmetricEig::new(&sym3());
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 5.0;
        a[(1, 1)] = -1.0;
        a[(2, 2)] = 2.0;
        let e = SymmetricEig::new(&a);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn satisfies_eigen_equation() {
        let a = sym3();
        let e = SymmetricEig::new(&a);
        for k in 0..3 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v);
            for i in 0..3 {
                assert!((av[i] - e.values[k] * v[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = sym3();
        let e = SymmetricEig::new(&a);
        let sum: f64 = e.values.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn handles_one_by_one() {
        let a = Matrix::from_rows(&[vec![7.0]]);
        let e = SymmetricEig::new(&a);
        assert_eq!(e.values, vec![7.0]);
    }
}
