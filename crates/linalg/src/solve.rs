//! Ridge regression with closed-form leave-one-out cross-validation.
//!
//! ROCKET's companion classifier in the paper is scikit-learn's
//! `RidgeClassifierCV`, which sweeps a grid of regularisation strengths
//! and scores each by *exact* leave-one-out error computed from a single
//! eigendecomposition — no refitting per fold. This module reproduces
//! that algorithm.
//!
//! Two paths, chosen by shape:
//! * **primal** (`p ≤ n`): eigendecompose `XᵀX` once; for each α the hat
//!   diagonal is `hᵢ = xᵢᵀ (XᵀX + αI)⁻¹ xᵢ` and the LOO residual is
//!   `(yᵢ − ŷᵢ)/(1 − hᵢ)`.
//! * **dual** (`p > n`, the typical ROCKET regime at paper scale):
//!   eigendecompose the Gram matrix `K = XXᵀ`; with
//!   `G(α) = (K + αI)⁻¹`, the LOO residual is `(G y)ᵢ / Gᵢᵢ` and the
//!   primal weights recover as `w = Xᵀ G y`.

use crate::eig::SymmetricEig;
use crate::matrix::Matrix;

/// A fitted multi-output ridge model `ŷ = x·W + b`.
#[derive(Debug, Clone)]
pub struct RidgeSolution {
    /// Weight matrix, `p × k` for `p` features and `k` outputs.
    pub weights: Matrix,
    /// Per-output intercepts.
    pub intercepts: Vec<f64>,
    /// The regularisation strength that produced this solution.
    pub alpha: f64,
    /// Mean squared LOOCV error of the winning alpha.
    pub loocv_mse: f64,
}

impl RidgeSolution {
    /// Predict the `k` outputs for a single feature vector.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.weights.rows(), "predict feature count mismatch");
        let k = self.weights.cols();
        let mut out = self.intercepts.clone();
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = self.weights.row(i);
            for j in 0..k {
                out[j] += xi * row[j];
            }
        }
        out
    }

    /// Predict all rows of a feature matrix (`n × p` → `n × k`).
    pub fn predict_batch(&self, x: &Matrix) -> Matrix {
        let mut out = x.matmul(&self.weights);
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (v, b) in row.iter_mut().zip(&self.intercepts) {
                *v += b;
            }
        }
        out
    }
}

/// Ridge regression estimator with a LOOCV alpha sweep.
#[derive(Debug, Clone)]
pub struct RidgeLoocv {
    /// Candidate regularisation strengths (all must be > 0).
    pub alphas: Vec<f64>,
}

impl Default for RidgeLoocv {
    /// The sweep used by the ROCKET reference implementation:
    /// `logspace(-3, 3, 10)`.
    fn default() -> Self {
        let alphas = (0..10)
            .map(|i| 10f64.powf(-3.0 + 6.0 * i as f64 / 9.0))
            .collect();
        Self { alphas }
    }
}

impl RidgeLoocv {
    /// Estimator with a single fixed alpha (no sweep).
    pub fn fixed(alpha: f64) -> Self {
        Self { alphas: vec![alpha] }
    }

    /// Fit on features `x` (`n × p`) and targets `y` (`n × k`).
    ///
    /// Data are centred internally, which realises the intercept; callers
    /// should still standardise feature scales when they differ wildly
    /// (ROCKET does).
    ///
    /// # Panics
    /// Panics if `x` and `y` disagree on row count, if `n == 0`, or if the
    /// alpha grid is empty.
    pub fn fit(&self, x: &Matrix, y: &Matrix) -> RidgeSolution {
        assert_eq!(x.rows(), y.rows(), "ridge fit: X/Y row mismatch");
        assert!(x.rows() > 0, "ridge fit: empty design matrix");
        assert!(!self.alphas.is_empty(), "ridge fit: empty alpha grid");

        let n = x.rows();
        let p = x.cols();
        let k = y.cols();

        // Centre features and targets.
        let x_mean: Vec<f64> = (0..p)
            .map(|j| tsda_core::math::sum_stable((0..n).map(|i| x[(i, j)])) / n as f64)
            .collect();
        let y_mean: Vec<f64> = (0..k)
            .map(|j| tsda_core::math::sum_stable((0..n).map(|i| y[(i, j)])) / n as f64)
            .collect();
        let xc = Matrix::from_fn(n, p, |i, j| x[(i, j)] - x_mean[j]);
        let yc = Matrix::from_fn(n, k, |i, j| y[(i, j)] - y_mean[j]);

        let (weights, alpha, loocv) = if p <= n {
            self.fit_primal(&xc, &yc)
        } else {
            self.fit_dual(&xc, &yc)
        };

        // b_j = ȳ_j − x̄ · w_j
        let intercepts: Vec<f64> = (0..k)
            .map(|j| {
                y_mean[j]
                    - tsda_core::math::sum_stable(
                        x_mean.iter().enumerate().map(|(f, &xm)| xm * weights[(f, j)]),
                    )
            })
            .collect();

        RidgeSolution { weights, intercepts, alpha, loocv_mse: loocv }
    }

    /// Primal path: eigendecompose `XᵀX` (p × p).
    fn fit_primal(&self, xc: &Matrix, yc: &Matrix) -> (Matrix, f64, f64) {
        let n = xc.rows();
        let p = xc.cols();
        let k = yc.cols();
        let xtx = xc.gram();
        let eig = SymmetricEig::new(&xtx);
        let xty = xc.transpose().matmul(yc);

        let mut best: Option<(f64, Matrix, f64)> = None;
        for &alpha in &self.alphas {
            // G = (XᵀX + αI)⁻¹ through the eigenbasis.
            let g = eig.reconstruct(|l| 1.0 / (l.max(0.0) + alpha));
            let w = g.matmul(&xty); // p × k
            let preds = xc.matmul(&w); // n × k
            // Hat diagonal hᵢ = 1/n + xᵢ G xᵢᵀ (the 1/n term is the
            // leverage of the intercept, realised here by centring).
            let mut sq = Vec::with_capacity(n * k);
            for i in 0..n {
                let xi = xc.row(i);
                let gxi = g.matvec(xi);
                let h: f64 = 1.0 / n as f64
                    + tsda_core::math::sum_stable(xi.iter().zip(&gxi).map(|(a, b)| a * b));
                let denom = (1.0 - h).max(1e-10);
                for j in 0..k {
                    let resid = (yc[(i, j)] - preds[(i, j)]) / denom;
                    sq.push(resid * resid);
                }
            }
            let mse = tsda_core::math::sum_stable(sq.iter().copied()) / (n * k) as f64;
            if best.as_ref().is_none_or(|(m, _, _)| mse < *m) {
                best = Some((mse, w, alpha));
            }
        }
        // An empty alpha grid is degenerate; return zero weights rather
        // than panicking in library code.
        let Some((mse, w, alpha)) = best else {
            return (Matrix::zeros(p, k), 0.0, f64::INFINITY);
        };
        debug_assert_eq!(w.shape(), (p, k));
        (w, alpha, mse)
    }

    /// Dual path: eigendecompose the Gram matrix `K = XXᵀ` (n × n).
    fn fit_dual(&self, xc: &Matrix, yc: &Matrix) -> (Matrix, f64, f64) {
        let n = xc.rows();
        let k = yc.cols();
        let mut gram = xc.gram_rows();
        // Model the intercept as a penalised constant feature by adding
        // the ones outer-product to the Gram matrix (as scikit-learn's
        // `_RidgeGCV` does). Without it, centring leaves a zero eigenvalue
        // whose 1/α term inflates Gᵢᵢ and fakes near-zero LOO errors at
        // tiny alphas.
        for v in gram.as_mut_slice() {
            *v += 1.0;
        }
        let eig = SymmetricEig::new(&gram);

        let mut best: Option<(f64, Matrix, f64)> = None;
        for &alpha in &self.alphas {
            let g = eig.reconstruct(|l| 1.0 / (l.max(0.0) + alpha));
            let c = g.matmul(yc); // n × k dual coefficients
            let mut sq = Vec::with_capacity(n * k);
            for i in 0..n {
                let gii = g[(i, i)].max(1e-12);
                for j in 0..k {
                    let resid = c[(i, j)] / gii;
                    sq.push(resid * resid);
                }
            }
            let mse = tsda_core::math::sum_stable(sq.iter().copied()) / (n * k) as f64;
            if best.as_ref().is_none_or(|(m, _, _)| mse < *m) {
                best = Some((mse, c, alpha));
            }
        }
        // An empty alpha grid is degenerate; return zero weights rather
        // than panicking in library code.
        let Some((mse, c, alpha)) = best else {
            return (Matrix::zeros(xc.cols(), k), 0.0, f64::INFINITY);
        };
        let w = xc.transpose().matmul(&c); // p × k
        (w, alpha, mse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// y = 2 x0 − x1 + 0.5, exactly linear; ridge with tiny alpha must
    /// recover it.
    #[test]
    fn recovers_exact_linear_relation() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40;
        let x = Matrix::from_fn(n, 2, |_, _| rng.gen_range(-1.0..1.0));
        let y = Matrix::from_fn(n, 1, |i, _| 2.0 * x[(i, 0)] - x[(i, 1)] + 0.5);
        let sol = RidgeLoocv::fixed(1e-8).fit(&x, &y);
        assert!((sol.weights[(0, 0)] - 2.0).abs() < 1e-4, "{sol:?}");
        assert!((sol.weights[(1, 0)] + 1.0).abs() < 1e-4);
        assert!((sol.intercepts[0] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn dual_path_interpolates_exact_linear_relation() {
        let mut rng = StdRng::seed_from_u64(11);
        // n=10 < p=20 triggers the dual path through `fit`.
        let n = 10;
        let p = 20;
        let x = Matrix::from_fn(n, p, |_, _| rng.gen_range(-1.0..1.0));
        let true_w: Vec<f64> = (0..p).map(|j| if j < 3 { 1.0 } else { 0.0 }).collect();
        let y = Matrix::from_fn(n, 1, |i, _| {
            x.row(i).iter().zip(&true_w).map(|(a, b)| a * b).sum::<f64>()
        });
        let sol = RidgeLoocv::fixed(1e-8).fit(&x, &y);
        // The minimum-norm interpolator reproduces the training targets.
        let preds = sol.predict_batch(&x);
        for i in 0..n {
            assert!((preds[(i, 0)] - y[(i, 0)]).abs() < 1e-4, "row {i}");
        }
    }

    #[test]
    fn loocv_prefers_regularisation_under_noise() {
        // Pure-noise, overparameterised: LOOCV should not pick the
        // smallest alpha (which interpolates the noise).
        let mut rng = StdRng::seed_from_u64(3);
        let n = 15;
        let p = 40;
        let x = Matrix::from_fn(n, p, |_, _| rng.gen_range(-1.0..1.0));
        let y = Matrix::from_fn(n, 1, |_, _| rng.gen_range(-1.0..1.0));
        let sol = RidgeLoocv::default().fit(&x, &y);
        assert!(sol.alpha > 1e-3, "picked alpha {}", sol.alpha);
    }

    #[test]
    fn multi_output_predicts_each_column() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 30;
        let x = Matrix::from_fn(n, 3, |_, _| rng.gen_range(-1.0..1.0));
        let y = Matrix::from_fn(n, 2, |i, j| {
            if j == 0 {
                x[(i, 0)] + 1.0
            } else {
                -2.0 * x[(i, 2)]
            }
        });
        let sol = RidgeLoocv::fixed(1e-6).fit(&x, &y);
        let pred = sol.predict(&[0.5, 0.1, -0.4]);
        assert!((pred[0] - 1.5).abs() < 1e-3);
        assert!((pred[1] - 0.8).abs() < 1e-3);
    }

    #[test]
    fn predict_batch_matches_predict() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Matrix::from_fn(20, 4, |_, _| rng.gen_range(-1.0..1.0));
        let y = Matrix::from_fn(20, 3, |_, _| rng.gen_range(-1.0..1.0));
        let sol = RidgeLoocv::default().fit(&x, &y);
        let batch = sol.predict_batch(&x);
        for i in 0..5 {
            let single = sol.predict(x.row(i));
            for j in 0..3 {
                assert!((batch[(i, j)] - single[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty design matrix")]
    fn rejects_empty_input() {
        let _ = RidgeLoocv::default().fit(&Matrix::zeros(0, 3), &Matrix::zeros(0, 1));
    }
}
