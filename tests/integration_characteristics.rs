//! Integration tests of the Table III pipeline: generate every archive
//! dataset and verify the computed characteristics reflect the published
//! regimes (class counts, imbalance bands, missingness, shift).

use tsda_core::characteristics::DatasetCharacteristics;
use tsda_datasets::registry::{DatasetId, DatasetMeta, ALL_DATASETS};
use tsda_datasets::synth::{generate, GenOptions};

#[test]
fn table3_characteristics_hold_across_the_archive() {
    for meta in &ALL_DATASETS {
        let data = generate(meta, &GenOptions::ci(77));
        let c = DatasetCharacteristics::compute(&data);
        assert_eq!(c.n_classes, meta.n_classes, "{}", meta.name);
        assert_eq!(c.dim, meta.dims.min(24), "{}", meta.name);
        assert_eq!(c.length, meta.length.min(96), "{}", meta.name);
        assert!(c.var_train > 0.0, "{}: zero variance", meta.name);
        assert!(c.train_test_distance >= 0.0, "{}", meta.name);
        // At laptop scale the per-class floors distort exact counts, so
        // only the sign of the imbalance is asserted here; the exact
        // (m−1, m] band is checked at paper scale below and on the exact
        // proportions in the registry unit tests.
        if meta.minority_classes == 0 {
            assert_eq!(c.imbalance_degree, 0.0, "{}", meta.name);
        } else {
            assert!(
                c.imbalance_degree > 0.0,
                "{}: generated archive lost its imbalance",
                meta.name
            );
        }
        // Missingness appears only where Table III reports it.
        if meta.missing_prop > 0.0 {
            assert!(c.missing_proportion > 0.05, "{}", meta.name);
        } else {
            assert_eq!(c.missing_proportion, 0.0, "{}", meta.name);
        }
    }
}

#[test]
fn paper_scale_matches_table3_sizes_exactly() {
    // Spot-check two small datasets at full scale (the big ones would be
    // slow to generate in a unit test).
    for (id, train, test) in [
        (DatasetId::Epilepsy, 137usize, 138usize),
        (DatasetId::RacketSports, 151, 152),
    ] {
        let meta = DatasetMeta::get(id);
        let data = generate(meta, &GenOptions::paper(3));
        assert_eq!(data.train.len(), train, "{}", meta.name);
        assert_eq!(data.test.len(), test, "{}", meta.name);
        assert_eq!(data.train.n_dims(), meta.dims);
        assert_eq!(data.train.series_len(), meta.length);
        // At paper scale the apportionment is fine-grained enough for
        // the Hellinger ID to land in the declared (m−1, m] band.
        let c = DatasetCharacteristics::compute(&data);
        let m = meta.minority_classes as f64;
        assert!(
            c.imbalance_degree > m - 1.0 && c.imbalance_degree <= m,
            "{}: ID {} not in ({}, {}]",
            meta.name,
            c.imbalance_degree,
            m - 1.0,
            m
        );
    }
}

#[test]
fn ts_format_round_trips_an_archive_dataset() {
    let meta = DatasetMeta::get(DatasetId::RacketSports);
    let data = generate(meta, &GenOptions::ci(5));
    let text = tsda_datasets::ts_format::write_ts(&data.train, meta.name, None);
    let parsed = tsda_datasets::ts_format::parse_ts(&text).expect("round trip parses");
    assert_eq!(parsed.dataset.len(), data.train.len());
    assert_eq!(parsed.dataset.n_dims(), data.train.n_dims());
    assert_eq!(parsed.dataset.labels(), data.train.labels());
    for (a, b) in parsed.dataset.series().iter().zip(data.train.series()) {
        for (x, y) in a.as_flat().iter().zip(b.as_flat()) {
            assert!(x == y || (x.is_nan() && y.is_nan()));
        }
    }
}

#[test]
fn downsampled_protocol_variant_reduces_each_class() {
    // The paper also augments *downsampled* training sets; the dataset
    // API supports that protocol.
    let meta = DatasetMeta::get(DatasetId::Epilepsy);
    let data = generate(meta, &GenOptions::ci(6));
    let mut rng = tsda_core::rng::seeded(1);
    let down = data.train.downsample(0.5, &mut rng);
    for (before, after) in data.train.class_counts().iter().zip(down.class_counts()) {
        assert!(after <= *before);
        assert!(after >= 1);
    }
}
