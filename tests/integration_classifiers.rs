//! Integration tests of the classifiers on generated archive data: both
//! paper baselines must clearly beat chance on separable datasets and
//! hover near chance on the EEG dataset designed to be hard, mirroring
//! the paper's Table IV/V regimes.

use tsda_bench::harness::{run_dataset, GridConfig, ModelKind};
use tsda_bench::scale::ScaleProfile;
use tsda_classify::inception::{InceptionTime, InceptionTimeConfig};
use tsda_classify::rocket::{Rocket, RocketConfig};
use tsda_classify::traits::Classifier;
use tsda_core::rng::seeded;
use tsda_datasets::registry::{DatasetId, DatasetMeta};
use tsda_datasets::synth::{generate, GenOptions};
use tsda_neuro::train::TrainConfig;

#[test]
fn rocket_beats_chance_on_separable_archive_datasets() {
    for id in [DatasetId::PenDigits, DatasetId::RacketSports, DatasetId::Epilepsy] {
        let meta = DatasetMeta::get(id);
        let data = generate(meta, &GenOptions::ci(31));
        let chance = 1.0 / meta.n_classes as f64;
        let mut model = Rocket::new(RocketConfig { n_kernels: 200, n_threads: 2, ..RocketConfig::default() });
        let acc = model.fit_score(&data.train, None, &data.test, &mut seeded(1));
        assert!(acc > 2.0 * chance, "{}: acc {acc} vs chance {chance}", meta.name);
    }
}

#[test]
fn rocket_stays_near_chance_on_finger_movements() {
    // The paper reports ~52% on this 2-class EEG dataset; the simulator
    // encodes the same near-chance regime. The ci test split is tiny
    // (~24 series), so a single seed is noisy — average three archives.
    let meta = DatasetMeta::get(DatasetId::FingerMovements);
    let mut total = 0.0;
    for seed in [32u64, 33, 34] {
        let data = generate(meta, &GenOptions::ci(seed));
        let mut model =
            Rocket::new(RocketConfig { n_kernels: 200, n_threads: 2, ..RocketConfig::default() });
        total += model.fit_score(&data.train, None, &data.test, &mut seeded(seed));
    }
    let acc = total / 3.0;
    assert!(acc < 0.7, "{}: mean acc {acc} should be near chance", meta.name);
}

#[test]
fn inceptiontime_learns_a_separable_archive_dataset() {
    // Epilepsy is the easiest ci dataset (near-ceiling for ROCKET), so a
    // small InceptionTime must clearly beat chance on it.
    let meta = DatasetMeta::get(DatasetId::Epilepsy);
    let data = generate(meta, &GenOptions::ci(33));
    let cfg = InceptionTimeConfig {
        filters: 4,
        depth: 3,
        kernel_sizes: [9, 5, 3],
        ensemble: 1,
        train: TrainConfig { max_epochs: 30, batch_size: 16, patience: 10, lr: 1e-2 },
        use_lr_range_test: false,
        ..InceptionTimeConfig::default()
    };
    let mut model = InceptionTime::new(cfg);
    let acc = model.fit_score(&data.train, None, &data.test, &mut seeded(3));
    let chance = 1.0 / meta.n_classes as f64;
    assert!(acc > 2.0 * chance, "acc {acc} vs chance {chance}");
}

#[test]
fn harness_grid_cell_reproduces_table_row_shape() {
    // One full Table IV cell via the harness: baseline + 5 techniques,
    // improvement consistent with the accuracies.
    let cfg = GridConfig {
        profile: ScaleProfile::Ci,
        seed: 13,
        runs: 1,
        model: ModelKind::Rocket,
        datasets: vec![],
    };
    let meta = DatasetMeta::get(DatasetId::Epilepsy);
    let mut log = |_: &str| {};
    let row = run_dataset(meta, &cfg, &mut log);
    assert_eq!(row.technique_acc.len(), 5);
    let labels: Vec<&str> = row.technique_acc.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(labels, vec!["noise_1.0", "noise_3.0", "noise_5.0", "smote", "timegan"]);
    let best = row
        .technique_acc
        .iter()
        .map(|(_, a)| *a)
        .fold(f64::NEG_INFINITY, f64::max);
    let expected = (best - row.baseline) / row.baseline * 100.0;
    assert!((row.improvement_pct - expected).abs() < 1e-9);
}
