//! Integration tests of the balancing protocol across the taxonomy:
//! every implemented technique must drive an imbalanced dataset to
//! perfect balance while keeping shapes, labels and originals intact.

use tsda_augment::balance::augment_to_balance;
use tsda_augment::basic::frequency::{AmplitudePerturb, EmdaMix, PhasePerturb, SpecAugmentMask};
use tsda_augment::basic::time::{
    GuidedWarp, Jitter, MagnitudeWarp, Masking, NoiseInjection, Permutation, Pooling, Rotation,
    Scaling, Slicing, TimeWarp, WindowWarp,
};
use tsda_augment::decompose_aug::{EmdRecombine, StlBootstrap};
use tsda_augment::generative::probabilistic::{AutoregressiveSampler, GaussianHmm};
use tsda_augment::generative::statistical::{
    ArResidualSampler, BlockBootstrap, KernelDensitySampler, MaxEntropyBootstrap,
};
use tsda_augment::oversample::{Adasyn, BorderlineSmote, NearestInterpolation, Smote, SmoteFuna};
use tsda_augment::preserve::label::RangeNoise;
use tsda_augment::preserve::structure::{Inos, Ohit};
use tsda_augment::Augmenter;
use tsda_core::rng::{normal, seeded};
use tsda_core::{Dataset, Mts};

/// 3 classes (10/6/3 members), 2 dims, length 32, distinct class shapes.
fn imbalanced_dataset() -> Dataset {
    let mut rng = seeded(100);
    let mut ds = Dataset::empty(3);
    for (class, &n) in [10usize, 6, 3].iter().enumerate() {
        for _ in 0..n {
            let dims: Vec<Vec<f64>> = (0..2)
                .map(|d| {
                    (0..32)
                        .map(|t| {
                            let x = t as f64;
                            (x * (0.2 + class as f64 * 0.25) + d as f64).sin() * 2.0
                                + class as f64
                                + normal(&mut rng, 0.0, 0.2)
                        })
                        .collect()
                })
                .collect();
            ds.push(Mts::from_dims(dims), class);
        }
    }
    ds
}

fn all_techniques() -> Vec<(&'static str, Box<dyn Augmenter>)> {
    vec![
        ("noise", Box::new(NoiseInjection::level(1.0))),
        ("scaling", Box::new(Scaling::default())),
        ("rotation", Box::new(Rotation)),
        ("jitter", Box::new(Jitter::default())),
        ("slicing", Box::new(Slicing::default())),
        ("permutation", Box::new(Permutation::default())),
        ("masking", Box::new(Masking::default())),
        ("pooling", Box::new(Pooling::default())),
        ("magnitude_warp", Box::new(MagnitudeWarp::default())),
        ("time_warp", Box::new(TimeWarp::default())),
        ("window_warp", Box::new(WindowWarp::default())),
        ("guided_warp", Box::new(GuidedWarp::default())),
        ("amplitude_perturb", Box::new(AmplitudePerturb::default())),
        ("phase_perturb", Box::new(PhasePerturb::default())),
        ("specaugment", Box::new(SpecAugmentMask::default())),
        ("emda_mix", Box::new(EmdaMix)),
        ("interpolation", Box::new(NearestInterpolation::default())),
        ("smote", Box::new(Smote::default())),
        ("borderline_smote", Box::new(BorderlineSmote::default())),
        ("adasyn", Box::new(Adasyn::default())),
        ("smotefuna", Box::new(SmoteFuna)),
        ("stl_bootstrap", Box::new(StlBootstrap::default())),
        ("emd_recombine", Box::new(EmdRecombine::default())),
        ("kde", Box::new(KernelDensitySampler::default())),
        ("ar_residual", Box::new(ArResidualSampler::default())),
        ("meboot", Box::new(MaxEntropyBootstrap)),
        ("block_bootstrap", Box::new(BlockBootstrap::default())),
        ("gaussian_hmm", Box::new(GaussianHmm { states: 3, iterations: 5 })),
        ("autoregressive", Box::new(AutoregressiveSampler::default())),
        ("range_noise", Box::new(RangeNoise::default())),
        ("ohit", Box::new(Ohit::default())),
        ("inos", Box::new(Inos::default())),
    ]
}

#[test]
fn every_technique_balances_the_dataset() {
    let ds = imbalanced_dataset();
    for (name, aug) in all_techniques() {
        let out = augment_to_balance(&ds, aug.as_ref(), &mut seeded(7))
            .unwrap_or_else(|e| panic!("{name} failed to balance: {e}"));
        assert_eq!(out.class_counts(), vec![10, 10, 10], "{name}");
        assert_eq!(out.n_dims(), 2, "{name}");
        assert_eq!(out.series_len(), 32, "{name}");
        // Every synthetic value is finite.
        for s in out.series() {
            assert!(
                s.as_flat().iter().all(|v| v.is_finite()),
                "{name} produced non-finite values"
            );
        }
        // Originals untouched.
        for i in 0..ds.len() {
            assert_eq!(out.series()[i], ds.series()[i], "{name} modified original {i}");
        }
    }
}

#[test]
fn every_technique_is_deterministic_given_a_seed() {
    let ds = imbalanced_dataset();
    for (name, aug) in all_techniques() {
        let a = augment_to_balance(&ds, aug.as_ref(), &mut seeded(9)).unwrap();
        let b = augment_to_balance(&ds, aug.as_ref(), &mut seeded(9)).unwrap();
        assert_eq!(a.len(), b.len(), "{name}");
        for (x, y) in a.series().iter().zip(b.series()) {
            assert_eq!(x, y, "{name} is not deterministic");
        }
    }
}

#[test]
fn synthetic_series_stay_label_plausible_for_preserving_branch() {
    // For the preserving techniques specifically, a 1-NN check over the
    // original data must recover the intended label.
    let ds = imbalanced_dataset();
    let preserving: Vec<(&str, Box<dyn Augmenter>)> = vec![
        ("range_noise", Box::new(RangeNoise::default())),
        ("ohit", Box::new(Ohit::default())),
    ];
    for (name, aug) in preserving {
        let samples = aug.synthesize(&ds, 2, 10, &mut seeded(11)).unwrap();
        let mut kept = 0;
        for s in &samples {
            let (label, _) = ds
                .iter()
                .map(|(m, l)| (l, m.euclidean_distance(s)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            if label == 2 {
                kept += 1;
            }
        }
        assert!(kept >= 9, "{name}: only {kept}/10 kept their label");
    }
}
