//! Golden-regression suite: the paper tables this repo exists to
//! reproduce must be byte-stable across commits AND across thread
//! counts. Each test renders a table at the ci profile with seed 7,
//! once under a 1-worker pool and once under 4 workers, asserts the two
//! renderings are bit-identical, and then diffs against the committed
//! golden under `tests/goldens/`.
//!
//! When a change *intentionally* moves the numbers (new RNG stream, new
//! technique, different kernel count), regenerate with
//! `TSDA_REGEN_GOLDENS=1 cargo test -p tsda-bench --test golden_regression`
//! and commit the diff — the point is that table drift always shows up
//! in review as a golden-file change, never silently.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use tsda_bench::harness::{run_dataset, GridConfig, ModelKind};
use tsda_bench::scale::ScaleProfile;
use tsda_bench::tables::{accuracy_table, table3};
use tsda_core::characteristics::DatasetCharacteristics;
use tsda_core::parallel::ThreadLimit;
use tsda_datasets::registry::ALL_DATASETS;
use tsda_datasets::synth::generate;

/// The goldens are pinned to one (profile, seed) cell so they stay
/// cheap enough for every `cargo test` run.
const SEED: u64 = 7;

/// `ThreadLimit` is process-global; serialize the tests that toggle it.
static LIMIT_LOCK: Mutex<()> = Mutex::new(());

fn goldens_dir() -> PathBuf {
    // Registered from crates/bench/Cargo.toml, so the manifest dir is
    // two levels below the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

/// First differing line of two renderings, for a readable failure.
fn first_diff(got: &str, want: &str) -> String {
    for (n, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        if g != w {
            return format!("first diff at line {}:\n  got:  {g}\n  want: {w}", n + 1);
        }
    }
    format!(
        "line counts differ: got {} lines, want {} lines",
        got.lines().count(),
        want.lines().count()
    )
}

/// Render `compute()` under 1 and 4 pool workers, require the outputs
/// bit-identical, then diff against (or regenerate) the golden file.
fn check_golden(name: &str, compute: impl Fn() -> String) {
    let _guard = LIMIT_LOCK.lock().unwrap();
    ThreadLimit::set(1);
    let single = compute();
    ThreadLimit::set(4);
    let multi = compute();
    ThreadLimit::clear();
    assert_eq!(
        single, multi,
        "{name}: output depends on thread count — {}",
        first_diff(&multi, &single)
    );

    let path = goldens_dir().join(name);
    if std::env::var("TSDA_REGEN_GOLDENS").is_ok() {
        std::fs::write(&path, &single)
            .unwrap_or_else(|e| panic!("writing golden {}: {e}", path.display()));
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with TSDA_REGEN_GOLDENS=1",
            path.display()
        )
    });
    assert_eq!(
        single,
        want,
        "{name} drifted from the committed golden ({}). If the change is \
         intentional, regenerate with TSDA_REGEN_GOLDENS=1 and commit the diff.",
        first_diff(&single, &want)
    );
}

/// Table III over the full 13-dataset archive: pure generation +
/// characteristic computation, fast even at 1 worker.
#[test]
fn table3_ci_seed7_matches_golden_at_1_and_4_threads() {
    check_golden("table3_ci_seed7.txt", || {
        let rows: Vec<(String, DatasetCharacteristics)> = ALL_DATASETS
            .iter()
            .map(|meta| {
                let data = generate(meta, &ScaleProfile::Ci.gen_options(SEED));
                (meta.name.to_string(), DatasetCharacteristics::compute(&data))
            })
            .collect();
        table3(&rows)
    });
}

/// One Table IV row (RacketSports, ROCKET): the full train → augment →
/// evaluate pipeline, pinned to one dataset so the golden run stays in
/// test-suite budget.
#[test]
fn table4_racketsports_ci_seed7_matches_golden_at_1_and_4_threads() {
    check_golden("table4_RacketSports_ci_seed7.txt", || {
        let cfg = GridConfig {
            profile: ScaleProfile::Ci,
            seed: SEED,
            runs: 2,
            model: ModelKind::Rocket,
            datasets: vec!["RacketSports".into()],
        };
        let meta = ALL_DATASETS
            .iter()
            .find(|m| m.name == "RacketSports")
            .expect("RacketSports is in the registry");
        let row = run_dataset(meta, &cfg, &mut |_| {});
        accuracy_table("Table IV (golden row: ci profile, seed 7)", cfg.model.label(), &[row])
    });
}
