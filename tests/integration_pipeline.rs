//! End-to-end integration: archive generation → augmentation → ROCKET
//! classification → relative gain, spanning every crate in the
//! workspace (the quickstart path, asserted).

use tsda_augment::balance::augment_to_balance;
use tsda_augment::oversample::Smote;
use tsda_augment::taxonomy::PaperTechnique;
use tsda_classify::rocket::{Rocket, RocketConfig};
use tsda_classify::traits::Classifier;
use tsda_core::metrics::relative_gain;
use tsda_core::rng::seeded;
use tsda_datasets::registry::{DatasetId, DatasetMeta};
use tsda_datasets::synth::{generate, GenOptions};

#[test]
fn archive_to_accuracy_pipeline_runs() {
    let meta = DatasetMeta::get(DatasetId::RacketSports);
    let data = generate(meta, &GenOptions::ci(21));

    let balanced = augment_to_balance(&data.train, &Smote::default(), &mut seeded(1))
        .expect("SMOTE balances the imbalanced archive dataset");
    let counts = balanced.class_counts();
    assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");

    let mut model = Rocket::new(RocketConfig { n_kernels: 150, n_threads: 2, ..RocketConfig::default() });
    let baseline = model.fit_score(&data.train, None, &data.test, &mut seeded(2));
    let mut model_aug = Rocket::new(RocketConfig { n_kernels: 150, n_threads: 2, ..RocketConfig::default() });
    let augmented = model_aug.fit_score(&balanced, None, &data.test, &mut seeded(2));

    // Both models must clearly beat 4-class chance on this separable set.
    assert!(baseline > 0.4, "baseline {baseline}");
    assert!(augmented > 0.4, "augmented {augmented}");
    let gain = relative_gain(baseline, augmented);
    assert!(gain.abs() < 1.0, "gain out of plausible range: {gain}");
}

#[test]
fn all_five_paper_techniques_balance_every_ci_dataset_class() {
    // The exact protocol of §IV-C on a small dataset: every technique
    // must produce a perfectly balanced training set (or fall back
    // gracefully inside the driver).
    let meta = DatasetMeta::get(DatasetId::Epilepsy);
    let data = generate(meta, &GenOptions::ci(22));
    for technique in PaperTechnique::ALL {
        let aug = technique.build(false);
        let out = augment_to_balance(&data.train, aug.as_ref(), &mut seeded(3))
            .unwrap_or_else(|e| panic!("{} failed: {e}", technique.label()));
        let counts = out.class_counts();
        let max = counts.iter().max().copied().unwrap();
        assert!(
            counts.iter().all(|&c| c == max),
            "{} left counts {counts:?}",
            technique.label()
        );
        // Originals are preserved verbatim at the front.
        assert_eq!(out.series()[0], data.train.series()[0]);
    }
}

#[test]
fn augmentation_never_touches_the_test_set() {
    let meta = DatasetMeta::get(DatasetId::RacketSports);
    let data = generate(meta, &GenOptions::ci(23));
    let before = data.test.clone();
    let _ = augment_to_balance(&data.train, &Smote::default(), &mut seeded(4)).unwrap();
    assert_eq!(before.len(), data.test.len());
    for (a, b) in before.series().iter().zip(data.test.series()) {
        assert_eq!(a, b);
    }
}
