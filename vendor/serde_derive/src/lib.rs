//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled token parsing (the real crate's `syn` dependency is not
//! available offline) covering exactly the shapes this workspace
//! derives on: structs with named fields and enums with unit variants.
//! The generated impls target the vendored `serde` stub's value-tree
//! traits, not the real serde data model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input parsed into.
enum Input {
    /// Struct name + named field idents.
    Struct(String, Vec<String>),
    /// Enum name + unit variant idents.
    Enum(String, Vec<String>),
}

/// Skip `#[...]` attribute groups (doc comments included).
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, …).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Field idents of a named-field struct body.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_vis(body, skip_attrs(body, i));
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("unexpected token in struct body: {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(t) = body.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(name);
    }
    Ok(fields)
}

/// Variant idents of a unit-variant enum body.
fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("unexpected token in enum body: {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{name}` carries data; the vendored serde derive only supports unit variants"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => return Err(format!("unexpected token after variant `{name}`: {other:?}")),
        }
        variants.push(name);
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&toks, skip_attrs(&toks, 0));
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected a name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!("`{name}` is generic; the vendored serde derive supports only plain types"));
        }
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!("`{name}` is a tuple struct; only named fields are supported"));
        }
        _ => Vec::new(), // unit struct
    };
    match kind.as_str() {
        "struct" => Ok(Input::Struct(name, parse_named_fields(&body)?)),
        "enum" => Ok(Input::Enum(name, parse_unit_variants(&body)?)),
        other => Err(format!("cannot derive on `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive the vendored `serde::Serialize` (value-tree construction).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let out = match parsed {
        Input::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n                    fn to_value(&self) -> ::serde::Value {{\n                        ::serde::Value::Object(::std::vec![{entries}])\n                    }}\n                }}"
            )
        }
        Input::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n                    fn to_value(&self) -> ::serde::Value {{\n                        match self {{ {arms} }}\n                    }}\n                }}"
            )
        }
    };
    out.parse().unwrap()
}

/// Derive the vendored `serde::Deserialize` (value-tree readback).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let out = match parsed {
        Input::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.get({f:?})?)?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n                    fn from_value(v: &::serde::Value) -> ::std::option::Option<Self> {{\n                        ::std::option::Option::Some(Self {{ {inits} }})\n                    }}\n                }}"
            )
        }
        Input::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::option::Option::Some(Self::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n                    fn from_value(v: &::serde::Value) -> ::std::option::Option<Self> {{\n                        match v.as_str()? {{ {arms} _ => ::std::option::Option::None }}\n                    }}\n                }}"
            )
        }
    };
    out.parse().unwrap()
}
