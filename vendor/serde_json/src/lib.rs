//! Offline stand-in for `serde_json`: JSON text encoding for the
//! vendored `serde` stub's [`Value`] tree.

pub use serde::Value;
use std::fmt;

/// Serialisation / parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON text for any serialisable value.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Compact JSON text appended to a caller-owned buffer — same bytes as
/// [`to_string`], but the caller controls (and can reuse) the
/// allocation.
pub fn append_to_string<T: serde::Serialize + ?Sized>(value: &T, out: &mut String) {
    write_value(&value.to_value(), None, 0, out);
}

/// Pretty-printed (2-space indented) JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into any deserialisable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).ok_or_else(|| Error("value shape mismatch".into()))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; emit null like serde_json does for
        // non-finite f64 via its arbitrary-precision fallback.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * level),
            " ".repeat(w * (level + 1)),
        ),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| Error(format!("bad number at byte {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v: Vec<(String, f64)> = vec![("a b".into(), 1.25), ("c\"d".into(), -3.0)];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse_value(" { \"k\\n\" : [ 1 , 2.5e1 , null , true ] } ").unwrap();
        assert_eq!(
            v.get("k\n"),
            Some(&Value::Array(vec![
                Value::Num(1.0),
                Value::Num(25.0),
                Value::Null,
                Value::Bool(true)
            ]))
        );
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
        assert!(from_str::<f64>("[]").is_err());
    }
}
