//! Offline stand-in for `proptest`.
//!
//! Covers the workspace's usage: the `proptest!` macro over functions
//! with `arg in strategy` bindings, range and `collection::vec`
//! strategies, `prop_map`, and the `prop_assert!`/`prop_assert_eq!`
//! macros. Inputs are drawn from a deterministic per-(test, case) seed
//! so failures reproduce exactly; there is no shrinking — the failure
//! report names the case index instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// A failed test case (produced by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

/// Per-case result type the `proptest!` body is wrapped into.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A random-input generator.
///
/// Unlike real proptest there is no shrink tree; a strategy is just a
/// seeded sampler.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                // Elements draw left to right, like real proptest.
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Element-count specification for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi: *r.end() }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy from an element strategy and a size (a fixed
    /// `usize` or a range).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Drive one property: `cases` runs with per-case deterministic seeds.
/// Panics (failing the enclosing `#[test]`) on the first `Err`.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut f: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    for case in 0..config.cases {
        // Stable per-(test name, case) seed: failures reproduce without
        // any persisted state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ u64::from(case);
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(h);
        if let Err(TestCaseError(msg)) = f(&mut rng) {
            panic!("proptest {name} failed at case {case}/{}: {msg}", config.cases);
        }
    }
}

/// Define seeded property tests; supports the real crate's
/// `#![proptest_config(...)]` header and `arg in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __out: $crate::TestCaseResult = (|| { $body ::std::result::Result::Ok(()) })();
                    __out
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                concat!("assertion failed: ", stringify!($cond), ": {}"),
                format!($($fmt)+),
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        // Bind through a match (like `std::assert_eq!`) so operands
        // containing comparison operators never re-parse as a chained
        // comparison.
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                        "assertion failed: ",
                        stringify!($left),
                        " == ",
                        stringify!($right),
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        concat!(
                            "assertion failed: ",
                            stringify!($left),
                            " == ",
                            stringify!($right),
                            ": {}"
                        ),
                        format!($($fmt)+),
                    )));
                }
            }
        }
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_sizes_and_maps_compose(
            v in crate::collection::vec(0u8..2, 6),
            w in crate::collection::vec(0.0f64..1.0, 2..5),
        ) {
            prop_assert_eq!(v.len(), 6);
            prop_assert!(w.len() >= 2 && w.len() < 5);
        }

        #[test]
        fn prop_map_applies(n in (1usize..4).prop_map(|v| v * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::run_cases(&ProptestConfig::with_cases(3), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
