//! Offline stand-in for `rand` 0.8.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small API subset it actually uses: [`Rng`]/[`RngCore`]/
//! [`SeedableRng`], [`rngs::StdRng`], slice shuffling, and uniform range
//! sampling. Streams are deterministic per seed (xoshiro256++ expanded
//! from the seed with SplitMix64) but intentionally make no attempt to
//! reproduce upstream `rand`'s byte-for-byte output.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by SplitMix64 expansion (the `rand_core`
    /// convention, so distinct small seeds give unrelated streams).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their full domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply map of a u64 onto the span.
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on an empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the type's natural domain (`[0,1)` for
    /// floats, the full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A generator seeded from the system clock; unseeded convenience entry
/// point mirroring `rand::thread_rng`.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    SeedableRng::seed_from_u64(nanos)
}

pub mod prelude {
    //! Glob-import surface matching `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..300 {
            let v: usize = r.gen_range(0..6);
            seen[v] = true;
            let f = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
    }

    #[test]
    fn mean_of_unit_samples_is_centred() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
