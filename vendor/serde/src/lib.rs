//! Offline stand-in for `serde`.
//!
//! The real serde's visitor-based data model is far more than this
//! workspace needs; with no crates.io access we vendor a simple
//! value-tree model instead: [`Serialize`] renders into a [`Value`],
//! [`Deserialize`] reads one back, and the vendored `serde_json`
//! crate handles the text encoding. The `#[derive(Serialize,
//! Deserialize)]` macros (re-exported from the vendored
//! `serde_derive`) generate impls of these traits.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers are exact to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Render into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from a value tree; `None` on any shape mismatch.
    fn from_value(v: &Value) -> Option<Self>;
}

impl Serialize for Value {
    /// Identity: a value tree is already its own serialised form.
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Option<Self> {
        Some(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Option<Self> {
                v.as_f64().map(|n| n as $t)
            }
        }
    )*};
}
impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Option<Self> {
        v.as_str().map(str::to_string)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string; only static registry tables round-trip
    /// through this and they are few and long-lived.
    fn from_value(v: &Value) -> Option<Self> {
        v.as_str().map(|s| &*Box::leak(s.to_string().into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => None,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Null => Some(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Some((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => None,
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Array(items) if items.len() == 3 => Some((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::from_value(&42usize.to_value()), Some(42));
        assert_eq!(f64::from_value(&(-1.5f64).to_value()), Some(-1.5));
        assert_eq!(String::from_value(&"hi".to_value()), Some("hi".to_string()));
        assert_eq!(bool::from_value(&true.to_value()), Some(true));
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.0), ("b".into(), 2.0)];
        assert_eq!(Vec::<(String, f64)>::from_value(&v.to_value()), Some(v));
        let o: Option<usize> = None;
        assert_eq!(Option::<usize>::from_value(&o.to_value()), Some(None));
    }

    #[test]
    fn object_lookup_finds_keys() {
        let v = Value::Object(vec![("x".into(), Value::Num(1.0))]);
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(1.0));
        assert!(v.get("y").is_none());
    }
}
