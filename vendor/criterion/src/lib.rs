//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock harness with criterion's call shape —
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `Bencher::iter` — so the workspace's `cargo
//! bench` targets compile and produce usable ns/iter numbers without
//! the real crate's statistics machinery.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque-to-the-optimiser identity, re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group {}", name.into());
        BenchmarkGroup { _parent: self, sample_size: 20 }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name.as_ref(), 20, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name.as_ref(), self.sample_size, f);
        self
    }

    /// End the group (parity with the real API; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; measures the timed routine.
pub struct Bencher {
    samples: usize,
    /// Mean ns/iter of the best sample, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`, storing the fastest observed mean ns/iter.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm up and pick an iteration count targeting ~5 ms per sample.
        let t0 = Instant::now();
        std_black_box(f());
        let once = t0.elapsed().as_nanos().max(1) as f64;
        let iters = ((5.0e6 / once) as usize).clamp(1, 1_000_000);
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let per = t.elapsed().as_nanos() as f64 / iters as f64;
            if per < best {
                best = per;
            }
        }
        self.ns_per_iter = best;
    }
}

fn run_bench(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, ns_per_iter: f64::NAN };
    f(&mut b);
    println!("  {name:<40} {:>14.1} ns/iter", b.ns_per_iter);
}

/// Define a benchmark group function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
