//! TimeGAN end to end: train the five-network model on one class of a
//! synthetic dataset and inspect how well the generated series match the
//! real class statistics (mean curve, per-step variance, lag-1
//! autocorrelation) — the qualitative checks of Yoon et al. 2019.
//!
//! Run: `cargo run --release --example timegan_generation`

use tsda_augment::generative::timegan::{TimeGan, TimeGanConfig};
use tsda_augment::Augmenter;
use tsda_core::rng::{normal, seeded};
use tsda_core::{Dataset, Mts};

fn stat_summary(series: &[&Mts]) -> (Vec<f64>, f64, f64) {
    let len = series[0].len();
    let mut mean = vec![0.0; len];
    for s in series {
        for (t, &v) in s.dim(0).iter().enumerate() {
            mean[t] += v / series.len() as f64;
        }
    }
    let mut var = 0.0;
    let mut lag1_num = 0.0;
    let mut lag1_den = 0.0;
    for s in series {
        let d = s.dim(0);
        let m: f64 = d.iter().sum::<f64>() / len as f64;
        for t in 0..len {
            var += (d[t] - m) * (d[t] - m);
            if t + 1 < len {
                lag1_num += (d[t] - m) * (d[t + 1] - m);
            }
            lag1_den += (d[t] - m) * (d[t] - m);
        }
    }
    var /= (series.len() * len) as f64;
    (mean, var, lag1_num / lag1_den.max(1e-12))
}

fn main() {
    // One class of damped oscillations with random phase.
    let mut rng = seeded(3);
    let mut ds = Dataset::empty(1);
    let len = 24;
    for _ in 0..24 {
        use rand::Rng;
        let phase: f64 = rng.gen_range(0.0..1.5);
        ds.push(
            Mts::from_dims(vec![(0..len)
                .map(|t| {
                    let x = t as f64;
                    (x * 0.5 + phase).sin() * (-x / 40.0).exp() + normal(&mut rng, 0.0, 0.05)
                })
                .collect()]),
            0,
        );
    }

    let cfg = TimeGanConfig {
        hidden: 12,
        latent: 8,
        iters_embedding: 250,
        iters_supervised: 200,
        iters_joint: 120,
        ..TimeGanConfig::default()
    };
    println!(
        "training TimeGAN (hidden {}, latent {}, iterations {}/{}/{})…",
        cfg.hidden, cfg.latent, cfg.iters_embedding, cfg.iters_supervised, cfg.iters_joint
    );
    let gan = TimeGan::new(cfg);
    let generated = gan
        .synthesize(&ds, 0, 24, &mut seeded(4))
        .expect("class has enough members");

    let real_refs: Vec<&Mts> = ds.series().iter().collect();
    let gen_refs: Vec<&Mts> = generated.iter().collect();
    let (real_mean, real_var, real_lag1) = stat_summary(&real_refs);
    let (gen_mean, gen_var, gen_lag1) = stat_summary(&gen_refs);

    let mean_err: f64 = real_mean
        .iter()
        .zip(&gen_mean)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / len as f64;
    println!("mean-curve L1 error:      {mean_err:.3}");
    println!("variance   real {real_var:.3}  generated {gen_var:.3}");
    println!("lag-1 corr real {real_lag1:.3}  generated {gen_lag1:.3}");
    println!("\nfirst real series:      {:?}", &ds.series()[0].dim(0)[..8]);
    println!("first generated series: {:?}", &generated[0].dim(0)[..8]);
    println!(
        "\nA faithful generator keeps the lag-1 correlation high — the\n\
         temporal dynamics TimeGAN's supervisor network exists to preserve."
    );
}
