//! A realistic imbalanced-sensor scenario: fault detection where the
//! fault class is rare (the paper's introduction motivates exactly this
//! setting — sensor data, costly minority events, labels sensitive to
//! perturbation).
//!
//! We build a 3-axis vibration dataset with a 12:1 healthy/fault
//! imbalance, then compare balancing strategies from three taxonomy
//! branches on macro-F1 (accuracy is misleading under imbalance):
//! plain noise, SMOTE, and the label-preserving range technique.
//!
//! Run: `cargo run --release --example imbalanced_sensor`

use tsda_augment::balance::augment_to_balance;
use tsda_augment::basic::time::NoiseInjection;
use tsda_augment::oversample::Smote;
use tsda_augment::preserve::label::RangeNoise;
use tsda_augment::Augmenter;
use tsda_classify::rocket::{Rocket, RocketConfig};
use tsda_classify::traits::Classifier;
use tsda_core::metrics::macro_f1;
use tsda_core::rng::{normal, seeded};
use tsda_core::{Dataset, Mts};

/// Healthy machines hum at low frequency; faulty bearings add a
/// high-frequency rattle burst whose amplitude barely exceeds the noise.
fn vibration_dataset(n_healthy: usize, n_faulty: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let mut ds = Dataset::empty(2);
    let len = 64;
    for class in 0..2 {
        let n = if class == 0 { n_healthy } else { n_faulty };
        for _ in 0..n {
            let dims: Vec<Vec<f64>> = (0..3)
                .map(|axis| {
                    (0..len)
                        .map(|t| {
                            let x = t as f64;
                            let hum = (x * 0.25 + axis as f64).sin();
                            let rattle = if class == 1 && (20..36).contains(&t) {
                                0.9 * (x * 2.1).sin()
                            } else {
                                0.0
                            };
                            hum + rattle + normal(&mut rng, 0.0, 0.35)
                        })
                        .collect()
                })
                .collect();
            ds.push(Mts::from_dims(dims), class);
        }
    }
    ds
}

fn main() {
    let train = vibration_dataset(60, 5, 1);
    let test = vibration_dataset(30, 30, 2); // balanced test: F1 is honest
    println!(
        "train: {:?} (12:1 imbalance), test: {:?}",
        train.class_counts(),
        test.class_counts()
    );

    let strategies: Vec<(&str, Option<Box<dyn Augmenter>>)> = vec![
        ("no augmentation", None),
        ("noise level 1 (basic)", Some(Box::new(NoiseInjection::level(1.0)))),
        ("SMOTE (oversampling)", Some(Box::new(Smote::default()))),
        ("range noise (label-preserving)", Some(Box::new(RangeNoise::default()))),
    ];

    for (name, strategy) in strategies {
        let train_set = match &strategy {
            Some(aug) => augment_to_balance(&train, aug.as_ref(), &mut seeded(3))
                .expect("balancing succeeds on this dataset"),
            None => train.clone(),
        };
        let mut model = Rocket::new(RocketConfig { n_kernels: 300, ..RocketConfig::default() });
        model.fit(&train_set, None, &mut seeded(4));
        let pred = model.predict(&test);
        let f1 = macro_f1(&pred, test.labels(), 2);
        let fault_recall = {
            let hits = pred
                .iter()
                .zip(test.labels())
                .filter(|&(p, &a)| a == 1 && *p == 1)
                .count();
            hits as f64 / test.class_counts()[1] as f64
        };
        println!(
            "{name:<32} macro-F1 {:.3}   fault recall {:.3}   (train size {})",
            f1,
            fault_recall,
            train_set.len()
        );
    }
    println!(
        "\nBalanced training catches more faults; the label-preserving\n\
         variant bounds its perturbations by the class margin (Fig. 5)."
    );
}
