//! Accuracy ablations for the design choices DESIGN.md calls out
//! (runtime ablations live in `benches/ablations.rs`):
//!
//! * noise level sweep l ∈ {0.5, 1, 2, 3, 5} (extends the paper's
//!   three levels);
//! * SMOTE k ∈ {1, 3, 5, 10};
//! * ROCKET kernel count (the accuracy/cost trade the paper's "10 000
//!   kernels" buys);
//! * augment-to-balance vs 2× overshoot (is more synthetic data better?).
//!
//! Run: `cargo run --release --example ablation_accuracy`

use tsda_augment::balance::{augment_to_balance, augment_to_target};
use tsda_augment::basic::time::NoiseInjection;
use tsda_augment::oversample::Smote;
use tsda_classify::rocket::{Rocket, RocketConfig};
use tsda_classify::traits::Classifier;
use tsda_core::rng::seeded;
use tsda_core::Dataset;
use tsda_datasets::registry::{DatasetId, DatasetMeta};
use tsda_datasets::synth::{generate, GenOptions};

fn score(train: &Dataset, test: &Dataset, kernels: usize, seed: u64) -> f64 {
    let mut model = Rocket::new(RocketConfig { n_kernels: kernels, ..RocketConfig::default() });
    model.fit_score(train, None, test, &mut seeded(seed)) * 100.0
}

fn main() {
    let meta = DatasetMeta::get(DatasetId::Epilepsy);
    let data = generate(meta, &GenOptions::ci(55));
    println!("dataset: {} (counts {:?})\n", meta.name, data.train.class_counts());

    let baseline = score(&data.train, &data.test, 300, 1);
    println!("baseline accuracy: {baseline:.2}%\n");

    println!("— noise level sweep (Eq. 6) —");
    for level in [0.5, 1.0, 2.0, 3.0, 5.0] {
        let aug = NoiseInjection::level(level);
        let balanced = augment_to_balance(&data.train, &aug, &mut seeded(2)).unwrap();
        let acc = score(&balanced, &data.test, 300, 1);
        println!("noise_{level:<4}: {acc:.2}%  (Δ {:+.2})", acc - baseline);
    }

    println!("\n— SMOTE k sweep —");
    for k in [1usize, 3, 5, 10] {
        let aug = Smote { k };
        let balanced = augment_to_balance(&data.train, &aug, &mut seeded(3)).unwrap();
        let acc = score(&balanced, &data.test, 300, 1);
        println!("k={k:<2}: {acc:.2}%  (Δ {:+.2})", acc - baseline);
    }

    println!("\n— ROCKET kernel count (baseline, no augmentation) —");
    for kernels in [50usize, 100, 300, 1000] {
        let acc = score(&data.train, &data.test, kernels, 1);
        println!("{kernels:>5} kernels: {acc:.2}%");
    }

    println!("\n— balance vs overshoot (SMOTE) —");
    let balanced = augment_to_balance(&data.train, &Smote::default(), &mut seeded(4)).unwrap();
    let max_class = *data.train.class_counts().iter().max().unwrap();
    let overshoot =
        augment_to_target(&data.train, &Smote::default(), 2 * max_class, &mut seeded(4)).unwrap();
    println!(
        "balanced ({} series):  {:.2}%",
        balanced.len(),
        score(&balanced, &data.test, 300, 1)
    );
    println!(
        "2x overshoot ({} series): {:.2}%",
        overshoot.len(),
        score(&overshoot, &data.test, 300, 1)
    );
}
