//! Quickstart: generate an imbalanced multivariate dataset, balance it
//! with SMOTE, train ROCKET on both versions, and compare accuracy —
//! the paper's core experiment in ~40 lines.
//!
//! Run: `cargo run --release --example quickstart`

use tsda_augment::balance::augment_to_balance;
use tsda_augment::oversample::Smote;
use tsda_bench::scale::ScaleProfile;
use tsda_classify::rocket::Rocket;
use tsda_classify::traits::Classifier;
use tsda_core::metrics::relative_gain;
use tsda_core::rng::seeded;
use tsda_datasets::registry::{DatasetId, DatasetMeta};
use tsda_datasets::synth::generate;

fn main() {
    // 1. A laptop-scale stand-in for the UCR/UEA RacketSports dataset.
    let meta = DatasetMeta::get(DatasetId::RacketSports);
    let data = generate(meta, &ScaleProfile::Ci.gen_options(7));
    println!(
        "{}: {} train / {} test series, {} classes, counts {:?}",
        meta.name,
        data.train.len(),
        data.test.len(),
        data.train.n_classes(),
        data.train.class_counts()
    );

    // 2. Balance the training set with SMOTE (k = min(5, class−1)).
    let balanced =
        augment_to_balance(&data.train, &Smote::default(), &mut seeded(1)).expect("balancing");
    println!("after SMOTE: counts {:?}", balanced.class_counts());

    // 3. Train ROCKET + ridge on both training sets.
    let mut baseline = Rocket::new(ScaleProfile::Ci.rocket());
    let acc_base = baseline.fit_score(&data.train, None, &data.test, &mut seeded(2));

    let mut augmented = Rocket::new(ScaleProfile::Ci.rocket());
    let acc_aug = augmented.fit_score(&balanced, None, &data.test, &mut seeded(2));

    // 4. The paper's relative gain, Eq. 3.
    println!("baseline accuracy:  {:.2}%", acc_base * 100.0);
    println!("augmented accuracy: {:.2}%", acc_aug * 100.0);
    println!("relative gain G_r:  {:+.2}%", relative_gain(acc_base, acc_aug) * 100.0);
}
