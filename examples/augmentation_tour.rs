//! A tour of the full taxonomy (the paper's Figure 1): runs one
//! representative of every branch on the same minority class and prints
//! how far the synthetic series stray from the class (mean distance to
//! the nearest original member) and whether a 1-NN check keeps their
//! label — the two axes the paper's "preserving" branch is about.
//!
//! Run: `cargo run --release --example augmentation_tour`

use tsda_augment::basic::frequency::{AmplitudePerturb, PhasePerturb, SpecAugmentMask};
use tsda_augment::basic::time::{
    GuidedWarp, Jitter, MagnitudeWarp, Masking, NoiseInjection, Permutation, Pooling, Rotation,
    Scaling, Slicing, TimeWarp, WindowWarp,
};
use tsda_augment::decompose_aug::{EmdRecombine, StlBootstrap};
use tsda_augment::generative::probabilistic::{AutoregressiveSampler, GaussianHmm};
use tsda_augment::generative::statistical::{
    ArResidualSampler, BlockBootstrap, KernelDensitySampler, MaxEntropyBootstrap,
};
use tsda_augment::generative::timegan::{TimeGan, TimeGanConfig};
use tsda_augment::oversample::{Adasyn, BorderlineSmote, NearestInterpolation, Smote, SmoteFuna};
use tsda_augment::preserve::label::RangeNoise;
use tsda_augment::preserve::structure::{Inos, Ohit};
use tsda_augment::taxonomy::taxonomy;
use tsda_augment::Augmenter;
use tsda_core::rng::seeded;
use tsda_datasets::registry::{DatasetId, DatasetMeta};
use tsda_datasets::synth::{generate, GenOptions};

fn main() {
    println!("{}", taxonomy().render());

    let data = generate(DatasetMeta::get(DatasetId::Epilepsy), &GenOptions::ci(11));
    let train = &data.train;
    let minority = train
        .class_counts()
        .iter()
        .enumerate()
        .min_by_key(|&(_, &c)| c)
        .map(|(c, _)| c)
        .expect("non-empty dataset");
    println!(
        "augmenting class {minority} of Epilepsy ({} members) with every technique:\n",
        train.class_counts()[minority]
    );

    let techniques: Vec<(&str, Box<dyn Augmenter>)> = vec![
        ("noise_1 (time)", Box::new(NoiseInjection::level(1.0))),
        ("scaling (time)", Box::new(Scaling::default())),
        ("rotation (time)", Box::new(Rotation)),
        ("jitter (time)", Box::new(Jitter::default())),
        ("slicing (time)", Box::new(Slicing::default())),
        ("permutation (time)", Box::new(Permutation::default())),
        ("masking (time)", Box::new(Masking::default())),
        ("pooling (time)", Box::new(Pooling::default())),
        ("magnitude_warp (time)", Box::new(MagnitudeWarp::default())),
        ("time_warp (time)", Box::new(TimeWarp::default())),
        ("window_warp (time)", Box::new(WindowWarp::default())),
        ("guided_warp (time)", Box::new(GuidedWarp::default())),
        ("amplitude_perturb (freq)", Box::new(AmplitudePerturb::default())),
        ("phase_perturb (freq)", Box::new(PhasePerturb::default())),
        ("specaugment (freq)", Box::new(SpecAugmentMask::default())),
        ("interpolation (oversample)", Box::new(NearestInterpolation::default())),
        ("smote (oversample)", Box::new(Smote::default())),
        ("borderline_smote (oversample)", Box::new(BorderlineSmote::default())),
        ("adasyn (oversample)", Box::new(Adasyn::default())),
        ("smotefuna (oversample)", Box::new(SmoteFuna)),
        ("stl_bootstrap (decomposition)", Box::new(StlBootstrap::default())),
        ("emd_recombine (decomposition)", Box::new(EmdRecombine::default())),
        ("kde (statistical)", Box::new(KernelDensitySampler::default())),
        ("ar_residual (statistical)", Box::new(ArResidualSampler::default())),
        ("meboot (statistical)", Box::new(MaxEntropyBootstrap)),
        ("block_bootstrap (statistical)", Box::new(BlockBootstrap::default())),
        ("gaussian_hmm (probabilistic)", Box::new(GaussianHmm::default())),
        ("autoregressive (probabilistic)", Box::new(AutoregressiveSampler::default())),
        (
            "timegan (neural)",
            Box::new(TimeGan::new(TimeGanConfig {
                iters_embedding: 60,
                iters_supervised: 40,
                iters_joint: 30,
                ..TimeGanConfig::default()
            })),
        ),
        ("range_noise (label-preserving)", Box::new(RangeNoise::default())),
        ("ohit (structure-preserving)", Box::new(Ohit::default())),
        ("inos (structure-preserving)", Box::new(Inos::default())),
    ];

    println!(
        "{:<32} {:>14} {:>12}",
        "technique", "mean NN dist", "label kept"
    );
    for (name, aug) in techniques {
        let mut rng = seeded(5);
        match aug.synthesize(train, minority, 8, &mut rng) {
            Ok(samples) => {
                let mut dist_sum = 0.0;
                let mut kept = 0;
                for s in &samples {
                    let (nn_label, nn_dist) = train
                        .iter()
                        .map(|(m, l)| (l, m.euclidean_distance(s)))
                        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                        .expect("non-empty training set");
                    dist_sum += nn_dist;
                    if nn_label == minority {
                        kept += 1;
                    }
                }
                println!(
                    "{:<32} {:>14.2} {:>9}/{}",
                    name,
                    dist_sum / samples.len() as f64,
                    kept,
                    samples.len()
                );
            }
            Err(e) => println!("{name:<32} skipped: {e}"),
        }
    }
}
